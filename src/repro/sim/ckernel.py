"""Optional compiled water-filling kernel for the batched data plane.

The batched fair-share engine's round loop runs over *tiny* arrays — at
e26 full scale a round touches ~100 loaded links and ~200 incidences —
so its cost is pure interpreter/dispatch overhead, not arithmetic.
This module compiles a ~40-line C translation of the loop at first use
(``gcc``/``cc`` + ``ctypes``; no build step, no new dependency) and
caches the shared object under the user cache directory keyed by a
source hash.

**The parity contract.**  The kernel performs exactly the numpy path's
IEEE-754 double operations in exactly its order:

* per-round ratios are one ``remaining / load`` divide per loaded link
  (links with zero load are ``+inf``, never divided);
* the bottleneck is the *first* index attaining the minimum ratio
  (a strict ``<`` scan — ``np.argmin``'s first-occurrence rule);
* every member class's flows subtract the share once per crossing
  link, sequentially per position (all subtrahends in a round are the
  same share, so cross-position interleaving is immaterial — the same
  argument that makes the numpy engine bit-identical to the dict one);
* one deferred clamp per round, with ``!(x > 0.0) -> +0.0``
  normalizing ``-0.0`` exactly like ``np.maximum(x, 0.0)``.

The suite asserts bitwise kernel/numpy equality on randomized
instances whenever a compiler is present; environments without one
(or with ``ALVC_NO_CKERNEL=1``) silently use the numpy loop.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

__all__ = ["kernel_available", "waterfill_kernel", "KERNEL_SOURCE"]

#: Environment variable that disables compilation and the kernel path
#: entirely (the parity suite uses it to pin the numpy loop).
DISABLE_ENV = "ALVC_NO_CKERNEL"

KERNEL_SOURCE = r"""
/* Class-aggregated max-min fair water-filling round loop.
 *
 * Bit-for-bit contract with the numpy engine:
 *  - ratio = remaining/load for load > 0, +inf otherwise;
 *  - bottleneck = first index of the minimum ratio (strict < scan);
 *  - member classes subtract the share once per crossing link,
 *    sequentially per position;
 *  - one deferred clamp per round; !(x > 0) -> +0.0 normalizes -0.0
 *    like np.maximum(x, 0.0).
 *
 * Returns rounds executed, or -1 when a loaded bottleneck has no
 * unfrozen member class (water-filling invariant violation).
 */
#include <stdint.h>
#include <math.h>

int64_t alvc_waterfill(
    int64_t n_loaded,
    double *remaining,          /* [n_loaded] in/out */
    double *load,               /* [n_loaded] in/out */
    const int64_t *loaded,      /* [n_loaded] original link indices */
    int64_t unfrozen,           /* total carrier flows */
    int64_t *m,                 /* [C] class multiplicities, in/out */
    double *class_rate,         /* [C] out */
    const int64_t *cstarts,     /* [C] pool starts into cpools */
    const int64_t *clens,       /* [C] pool lengths */
    const int64_t *cpools,      /* flat compressed link positions */
    const int64_t *t_classes,   /* transpose: class ids grouped by link */
    const int64_t *t_bounds)    /* [n_links + 1] segment bounds */
{
    int64_t rounds = 0;
    while (unfrozen > 0) {
        rounds++;
        double best = INFINITY;
        int64_t b = 0;
        for (int64_t i = 0; i < n_loaded; i++) {
            if (load[i] > 0.0) {
                double r = remaining[i] / load[i];
                if (r < best) { best = r; b = i; }
            }
        }
        double share = best;
        int64_t ob = loaded[b];
        int64_t members = 0;
        for (int64_t k = t_bounds[ob]; k < t_bounds[ob + 1]; k++) {
            int64_t c = t_classes[k];
            int64_t mc = m[c];
            if (mc <= 0) continue;
            members++;
            class_rate[c] = share;
            m[c] = 0;
            unfrozen -= mc;
            int64_t e = cstarts[c] + clens[c];
            for (int64_t j = cstarts[c]; j < e; j++) {
                int64_t p = cpools[j];
                for (int64_t q = 0; q < mc; q++) remaining[p] -= share;
                load[p] -= (double)mc;
            }
        }
        if (members == 0) return -1;
        for (int64_t i = 0; i < n_loaded; i++)
            if (!(remaining[i] > 0.0)) remaining[i] = 0.0;
    }
    return rounds;
}
"""

#: Tri-state compile cache: unset / a ctypes function / None (failed).
_UNSET = object()
_kernel = _UNSET


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    try:
        path = os.path.join(base, "alvc")
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        return tempfile.gettempdir()


def _compile() -> "ctypes.CDLL | None":
    digest = hashlib.sha256(KERNEL_SOURCE.encode()).hexdigest()[:16]
    directory = _cache_dir()
    library = os.path.join(directory, f"waterfill-{digest}.so")
    if not os.path.exists(library):
        source = os.path.join(directory, f"waterfill-{digest}.c")
        scratch = library + f".tmp{os.getpid()}"
        try:
            with open(source, "w") as handle:
                handle.write(KERNEL_SOURCE)
            for compiler in ("cc", "gcc", "clang"):
                # -O2 without any fast-math flag: the contract is exact
                # IEEE doubles in source order.
                result = subprocess.run(
                    [compiler, "-O2", "-fPIC", "-shared", source,
                     "-o", scratch],
                    capture_output=True,
                    timeout=60,
                )
                if result.returncode == 0:
                    os.replace(scratch, library)
                    break
            else:
                return None
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            if os.path.exists(scratch):
                try:
                    os.remove(scratch)
                except OSError:
                    pass
    try:
        return ctypes.CDLL(library)
    except OSError:
        return None


def waterfill_kernel():
    """The compiled round-loop entry point, or ``None``.

    Compiles on first call (cached across processes via the on-disk
    shared object, across calls via a module global).  Returns ``None``
    when no C compiler is available, compilation fails, or
    ``ALVC_NO_CKERNEL`` is set.
    """
    global _kernel
    if _kernel is not _UNSET:
        return _kernel
    if os.environ.get(DISABLE_ENV):
        _kernel = None
        return None
    library = _compile()
    if library is None:
        _kernel = None
        return None
    function = library.alvc_waterfill
    function.restype = ctypes.c_int64
    function.argtypes = [
        ctypes.c_int64,          # n_loaded
        ctypes.c_void_p,         # remaining
        ctypes.c_void_p,         # load
        ctypes.c_void_p,         # loaded
        ctypes.c_int64,          # unfrozen
        ctypes.c_void_p,         # m
        ctypes.c_void_p,         # class_rate
        ctypes.c_void_p,         # cstarts
        ctypes.c_void_p,         # clens
        ctypes.c_void_p,         # cpools
        ctypes.c_void_p,         # t_classes
        ctypes.c_void_p,         # t_bounds
    ]
    _kernel = function
    return function


def kernel_available() -> bool:
    """Whether the compiled kernel is usable in this environment."""
    return waterfill_kernel() is not None
