"""Struct-of-arrays data plane: vectorized max-min fair sharing.

The dict-based :class:`~repro.sim.fairshare.FairShareEngine` touches one
python object per flow-link incidence on every recompute, which caps the
event simulator at a few thousand concurrent flows.  This module moves
all per-flow state into numpy arrays so a water-filling recompute is a
handful of whole-array operations:

* :class:`FlowTable` — the struct-of-arrays flow ledger.  Rates,
  remaining demand, projected completion times and last-materialization
  stamps are ``float64`` arrays indexed by *slot*; each flow's link
  incidence lives in a shared ``int32`` pool addressed CSR-style by
  ``link_start``/``link_len`` (the same layout PR 5's
  :class:`~repro.sdn.path_engine.PathEngine` uses for adjacency).
  Slots are append-only, so ascending slot order *is* activation order
  — the invariant every bit-parity argument below leans on — and the
  table compacts itself when completed flows dominate.
* :class:`VectorFairShareEngine` — water-filling over the table.  One
  round is: a masked ``remaining / load`` ratio over the loaded links, a
  single ``min``/``argmin`` for the bottleneck (ties broken by a
  precomputed lexicographic link rank, replicating the dict engine's
  ``sorted(link)`` tie-break), a batch freeze of the bottleneck's
  unfrozen members from a per-recompute link→flows transpose, and an
  unbuffered ``np.subtract.at`` over the frozen members' incidences.
  ``np.subtract.at`` performs the duplicate-index subtractions
  *sequentially*, so a link crossed by ``k`` freezing flows sees exactly
  the ``k`` IEEE subtractions the dict engine performs — and because
  every subtraction in a round removes the *same* share, deferring the
  zero-clamp to one ``np.maximum`` per round is bit-identical to the
  dict engine's per-subtraction clamp (once a value goes negative,
  further subtractions keep it negative and both paths clamp to
  ``+0.0``).  The result is **bit-for-bit** the rates of
  :class:`~repro.sim.fairshare.FairShareEngine` /
  :func:`~repro.sim.fairshare.max_min_fair_rates`, which the seeded
  parity suite asserts on randomized instances.
* :class:`LinkBusyView` — a lazy mapping over the simulator's per-link
  busy accumulator array, so a million-flow report never materializes a
  per-link python dict just to compute utilization.

Telemetry: each recompute observes its round count in the
``alvc_fairshare_vector_rounds`` histogram (the vectorized sibling of
``alvc_fairshare_rounds``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.sim.fairshare import ROUNDS_BUCKETS, LinkId

__all__ = [
    "BatchedFairShareEngine",
    "FlowTable",
    "LinkBusyView",
    "VectorFairShareEngine",
]

_EMPTY_I32 = np.empty(0, dtype=np.int32)
_EMPTY_I64 = np.empty(0, dtype=np.int64)


class FlowTable:
    """Struct-of-arrays ledger of active (and recently dead) flows.

    Every per-flow scalar the event loop touches is a ``float64`` array
    indexed by slot; link incidences live in one shared ``int32`` pool
    addressed by ``link_start[slot] : link_start[slot] + link_len[slot]``.
    Slots are handed out append-only — ascending slot order is exactly
    flow-activation order, matching the insertion order of the dict
    engine's ``active`` mapping — and reclaimed in bulk by
    :meth:`compact` (which preserves relative order) once dead slots
    outnumber live ones.
    """

    __slots__ = (
        "remaining",
        "rate",
        "eta",
        "last_update",
        "alive",
        "link_start",
        "link_len",
        "has_dup",
        "pool",
        "pool_len",
        "size",
        "active_count",
        "slot_of",
        "flow_ids",
        "meta",
        "on_compact",
        "_compact_slack",
        "_compact_pending",
    )

    def __init__(self, capacity: int = 64, *, compact_slack: int = 256) -> None:
        n = max(16, int(capacity))
        self.remaining = np.zeros(n)
        self.rate = np.zeros(n)
        self.eta = np.full(n, np.inf)
        self.last_update = np.zeros(n)
        self.alive = np.zeros(n, dtype=bool)
        self.link_start = np.zeros(n, dtype=np.int64)
        self.link_len = np.zeros(n, dtype=np.int64)
        #: Slots whose path crosses some link more than once (rare;
        #: lets recompute skip member dedup when no carrier cycles).
        self.has_dup = np.zeros(n, dtype=bool)
        self.pool = np.zeros(4 * n, dtype=np.int32)
        self.pool_len = 0
        #: High-water slot count: slots ``[0, size)`` are allocated.
        self.size = 0
        self.active_count = 0
        #: flow id -> live slot.
        self.slot_of: dict[Hashable, int] = {}
        #: Per-slot flow id (stale for dead slots until compaction).
        self.flow_ids: list = []
        #: Per-slot caller payload (the simulator stores flow metadata).
        self.meta: list = []
        #: Called with the old live-slot array after every compaction,
        #: so owners of parallel per-slot arrays (the batched engine's
        #: class map) can renumber alongside the table.
        self.on_compact = None
        self._compact_slack = max(1, int(compact_slack))
        # Tombstones only appear in remove(), so the compaction
        # predicate is evaluated there (once per death) and the add hot
        # path checks a single pre-computed flag instead of re-deriving
        # ``size - active_count > max(slack, active_count)`` per call.
        self._compact_pending = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.active_count

    def __contains__(self, flow: Hashable) -> bool:
        return flow in self.slot_of

    def active_slots(self) -> np.ndarray:
        """Live slots in ascending (= activation) order."""
        return np.flatnonzero(self.alive[: self.size])

    # ------------------------------------------------------------------
    def add(
        self, flow: Hashable, links: np.ndarray, has_dup: bool | None = None
    ) -> int:
        """Allocate a slot for ``flow`` over link indices ``links``.

        The new slot starts with zero rate, infinite eta and zero
        remaining demand; the caller seeds ``remaining``/``last_update``.
        ``has_dup`` lets a caller that already knows whether ``links``
        repeats an index skip the membership probe.

        Raises:
            SimulationError: when the flow already holds a slot.
        """
        if flow in self.slot_of:
            raise SimulationError(f"flow {flow!r} is already active")
        if self._compact_pending:
            self.compact()
        slot = self.size
        if slot == self.remaining.shape[0]:
            self._grow_slots()
        count = len(links)
        if self.pool_len + count > self.pool.shape[0]:
            self._grow_pool(self.pool_len + count)
        self.pool[self.pool_len : self.pool_len + count] = links
        self.link_start[slot] = self.pool_len
        self.link_len[slot] = count
        if has_dup is None:
            has_dup = count > len({int(link) for link in links})
        self.has_dup[slot] = has_dup
        self.pool_len += count
        self.remaining[slot] = 0.0
        self.rate[slot] = 0.0
        self.eta[slot] = np.inf
        self.last_update[slot] = 0.0
        self.alive[slot] = True
        self.size = slot + 1
        self.active_count += 1
        self.slot_of[flow] = slot
        self.flow_ids.append(flow)
        self.meta.append(None)
        return slot

    def remove(self, flow: Hashable) -> int:
        """Release a flow's slot (kept inert until compaction).

        Raises:
            SimulationError: when the flow holds no slot.
        """
        try:
            slot = self.slot_of.pop(flow)
        except KeyError:
            raise SimulationError(f"flow {flow!r} is not active") from None
        self.alive[slot] = False
        self.eta[slot] = np.inf
        self.rate[slot] = 0.0
        self.meta[slot] = None
        self.active_count -= 1
        # Deaths are the only way the tombstone count grows, so this is
        # the only place the compaction predicate can flip to true (an
        # add leaves ``size - active_count`` unchanged and only weakens
        # the ``max(slack, live)`` bound) — the next add() compacts.
        if self.size - self.active_count > max(
            self._compact_slack, self.active_count
        ):
            self._compact_pending = True
        return slot

    def add_many(
        self,
        flows: Sequence[Hashable],
        pools: Sequence[np.ndarray],
        has_dup: Sequence[bool],
    ) -> np.ndarray:
        """Bulk twin of :meth:`add`: one grow, one pool write, one fill.

        ``pools[i]`` is flow ``i``'s link-index array (``int32``,
        path order preserved); ``has_dup[i]`` its duplicate-link flag.
        New slots start like :meth:`add`'s (zero rate/remaining,
        infinite eta); the caller seeds ``remaining``/``last_update``.
        Returns the allocated slots in ``flows`` order — consecutive,
        so activation order still matches admission order.

        Raises:
            SimulationError: when any flow already holds a slot (no
                slots are allocated then).
        """
        count = len(flows)
        if count == 0:
            return _EMPTY_I64
        for flow in flows:
            if flow in self.slot_of:
                raise SimulationError(f"flow {flow!r} is already active")
        if self._compact_pending:
            self.compact()
        while self.size + count > self.remaining.shape[0]:
            self._grow_slots()
        lens = np.array([pool.shape[0] for pool in pools], dtype=np.int64)
        total = int(lens.sum())
        if self.pool_len + total > self.pool.shape[0]:
            self._grow_pool(self.pool_len + total)
        if total:
            self.pool[self.pool_len : self.pool_len + total] = (
                np.concatenate(pools)
            )
        first = self.size
        slots = np.arange(first, first + count, dtype=np.int64)
        ends = np.cumsum(lens)
        self.link_start[slots] = self.pool_len + ends - lens
        self.link_len[slots] = lens
        self.has_dup[slots] = np.asarray(has_dup, dtype=bool)
        self.pool_len += total
        self.remaining[slots] = 0.0
        self.rate[slots] = 0.0
        self.eta[slots] = np.inf
        self.last_update[slots] = 0.0
        self.alive[slots] = True
        self.size = first + count
        self.active_count += count
        for offset, flow in enumerate(flows):
            self.slot_of[flow] = first + offset
            self.flow_ids.append(flow)
            self.meta.append(None)
        return slots

    def gather_links(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated link indices of ``slots`` plus per-slot lengths.

        The concatenation preserves ``slots`` order and, within a slot,
        path order — the iteration order the dict engine charges links
        in.
        """
        if len(slots) == 0:
            return _EMPTY_I32, _EMPTY_I64
        starts = self.link_start[slots]
        lens = self.link_len[slots]
        total = int(lens.sum())
        if total == 0:
            return _EMPTY_I32, lens
        ends = np.cumsum(lens)
        flat = np.repeat(starts - (ends - lens), lens) + np.arange(total)
        return self.pool[flat], lens

    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop dead slots, renumbering live ones in relative order."""
        live = self.active_slots()
        n = live.shape[0]
        lens = self.link_len[live]
        flat, _ = self.gather_links(live)
        self.remaining[:n] = self.remaining[live]
        self.rate[:n] = self.rate[live]
        self.eta[:n] = self.eta[live]
        self.eta[n : self.size] = np.inf
        self.last_update[:n] = self.last_update[live]
        self.alive[: self.size] = False
        self.alive[:n] = True
        ends = np.cumsum(lens)
        self.link_start[:n] = ends - lens
        self.link_len[:n] = lens
        self.has_dup[:n] = self.has_dup[live]
        self.has_dup[n : self.size] = False
        self.pool[: flat.shape[0]] = flat
        self.pool_len = int(flat.shape[0])
        self.flow_ids = [self.flow_ids[slot] for slot in live.tolist()]
        self.meta = [self.meta[slot] for slot in live.tolist()]
        self.slot_of = {
            flow: slot for slot, flow in enumerate(self.flow_ids)
        }
        self.size = n
        self._compact_pending = False
        if self.on_compact is not None:
            self.on_compact(live)

    def _grow_slots(self) -> None:
        n = self.remaining.shape[0] * 2
        for name in ("remaining", "rate", "last_update"):
            grown = np.zeros(n)
            grown[: self.size] = getattr(self, name)[: self.size]
            setattr(self, name, grown)
        eta = np.full(n, np.inf)
        eta[: self.size] = self.eta[: self.size]
        self.eta = eta
        alive = np.zeros(n, dtype=bool)
        alive[: self.size] = self.alive[: self.size]
        self.alive = alive
        dup = np.zeros(n, dtype=bool)
        dup[: self.size] = self.has_dup[: self.size]
        self.has_dup = dup
        start = np.zeros(n, dtype=np.int64)
        start[: self.size] = self.link_start[: self.size]
        self.link_start = start
        length = np.zeros(n, dtype=np.int64)
        length[: self.size] = self.link_len[: self.size]
        self.link_len = length

    def _grow_pool(self, needed: int) -> None:
        n = self.pool.shape[0]
        while n < needed:
            n *= 2
        pool = np.zeros(n, dtype=np.int32)
        pool[: self.pool_len] = self.pool[: self.pool_len]
        self.pool = pool


class LinkBusyView(Mapping):
    """Read-only ``link -> busy byte-seconds`` view over a numpy array.

    Exposes the simulator's per-link busy accumulator without building a
    python dict per run (the memory guard for million-flow soaks: the
    array is one ``float64`` per *link*, never per flow).  Only links
    that carried traffic are visible, matching the dict the report
    historically exposed.  Compares equal to an equivalent plain dict
    and pickles as one (cross-process shard merges see plain dicts).
    """

    __slots__ = ("_link_ids", "_busy", "_nonzero")

    def __init__(self, link_ids: tuple, busy: np.ndarray) -> None:
        self._link_ids = link_ids
        self._busy = busy
        self._nonzero = None

    def _carried(self) -> np.ndarray:
        if self._nonzero is None:
            self._nonzero = np.flatnonzero(self._busy > 0.0)
        return self._nonzero

    def __getitem__(self, link: LinkId) -> float:
        try:
            index = self._link_ids.index(link)
        except ValueError:
            raise KeyError(link) from None
        value = self._busy[index]
        if not value > 0.0:
            raise KeyError(link)
        return float(value)

    def __iter__(self) -> Iterator[LinkId]:
        for index in self._carried().tolist():
            yield self._link_ids[index]

    def __len__(self) -> int:
        return int(self._carried().shape[0])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (LinkBusyView, Mapping, dict)):
            if len(self) != len(other):
                return False
            try:
                return all(other[link] == value for link, value in self.items())
            except KeyError:
                return False
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable mapping semantics

    def __repr__(self) -> str:
        return f"LinkBusyView({dict(self)!r})"

    def __reduce__(self):
        return (dict, (dict(self.items()),))

    def to_dict(self) -> dict[LinkId, float]:
        """Materialize as a plain dict (small: one entry per busy link)."""
        return dict(self.items())

    def mean_utilization(
        self, capacities: Mapping[LinkId, float], makespan: float
    ) -> float:
        """Array-path twin of ``EventSimulationReport.mean_link_utilization``.

        Validation (missing entries, negative capacities, zero-capacity
        links that carried traffic) matches the dict path exactly.
        """
        carried = self._carried()
        if carried.shape[0] == 0 or makespan <= 0:
            return 0.0
        caps = np.empty(carried.shape[0])
        for position, index in enumerate(carried.tolist()):
            link = self._link_ids[index]
            try:
                capacity = capacities[link]
            except KeyError:
                raise SimulationError(
                    f"busy link {sorted(link)} has no capacity entry"
                ) from None
            if capacity < 0:
                raise SimulationError(
                    f"link {sorted(link)} has negative capacity {capacity}"
                )
            if capacity == 0:
                raise SimulationError(
                    f"zero-capacity link {sorted(link)} carried "
                    f"{self._busy[index]} byte-seconds"
                )
            caps[position] = capacity
        utilization = self._busy[carried] / (caps * makespan)
        return float(utilization.sum() / utilization.shape[0])


class VectorFairShareEngine:
    """Vectorized max-min water-filling over a :class:`FlowTable`.

    Drop-in sibling of :class:`~repro.sim.fairshare.FairShareEngine`
    with the same incremental API (``add_flow`` / ``remove_flow`` /
    ``remove_link`` / ``set_capacity``) and **bit-identical** rates —
    see the module docstring for why the whole-array round replicates
    the dict engine's arithmetic exactly.  :meth:`recompute` returns a
    dense ``float64`` array indexed by table slot (``0.0`` for dead
    slots, ``inf`` for live flows with no links); :meth:`rates_by_flow`
    offers the dict-shaped spelling for parity tests.

    Links are registered up front from the capacity map (insertion
    order fixes their array indices); links removed by faults stay
    indexed but inactive so repairs restore them in place.
    """

    __slots__ = (
        "_table",
        "_index",
        "_link_ids",
        "_cap",
        "_link_alive",
        "_count",
        "_sort_keys",
        "_rank",
        "_rounds_histogram",
    )

    def __init__(
        self,
        capacities: Mapping[LinkId, float],
        *,
        table: FlowTable | None = None,
        telemetry=None,
    ) -> None:
        """Create an engine over a capacity map (validated up front).

        Raises:
            SimulationError: on a non-positive capacity.
        """
        for link, capacity in capacities.items():
            if capacity <= 0:
                raise SimulationError(
                    f"link {sorted(link)} has non-positive capacity {capacity}"
                )
        from repro.observability.runtime import current_telemetry

        sink = telemetry if telemetry is not None else current_telemetry()
        self._table = table if table is not None else FlowTable()
        self._link_ids: list[LinkId] = list(capacities)
        self._index: dict[LinkId, int] = {
            link: position for position, link in enumerate(self._link_ids)
        }
        self._cap = np.array(
            [capacities[link] for link in self._link_ids], dtype=np.float64
        )
        self._link_alive = np.ones(len(self._link_ids), dtype=bool)
        # Active-flow counts per link, kept as float64 so recompute can
        # divide without a conversion pass (integers stay exact).
        self._count = np.zeros(len(self._link_ids))
        self._sort_keys: list[tuple] = [
            tuple(sorted(link)) for link in self._link_ids
        ]
        self._rank: np.ndarray | None = None
        self._rounds_histogram = sink.histogram(
            "alvc_fairshare_vector_rounds",
            "water-filling rounds per vectorized fair-share recompute",
            ROUNDS_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table(self) -> FlowTable:
        """The struct-of-arrays flow ledger this engine allocates over."""
        return self._table

    @property
    def n_links(self) -> int:
        """Number of registered link indices (including inactive ones)."""
        return len(self._link_ids)

    @property
    def active_flows(self) -> int:
        """Number of flows currently tracked."""
        return self._table.active_count

    @property
    def loaded_links(self) -> int:
        """Number of links with at least one active flow."""
        return int(np.count_nonzero(self._count))

    def link_ids(self) -> tuple:
        """Registered links in index order."""
        return tuple(self._link_ids)

    @property
    def link_index(self) -> dict:
        """``LinkId`` -> array position (the live mapping, not a copy;
        the admission planner interns routes against it)."""
        return self._index

    def link_counts(self) -> dict[LinkId, int]:
        """Per-link active-flow counts (loaded links only, a copy)."""
        return {
            self._link_ids[index]: int(self._count[index])
            for index in np.flatnonzero(self._count > 0.0).tolist()
        }

    def capacities(self) -> dict[LinkId, float]:
        """The engine's live capacity map (a copy)."""
        return {
            self._link_ids[index]: float(self._cap[index])
            for index in np.flatnonzero(self._link_alive).tolist()
        }

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def add_flow(self, flow: Hashable, links: Iterable[LinkId]) -> int:
        """Track a new flow; returns its table slot.

        Raises:
            SimulationError: when the flow is already tracked or uses a
                link without a capacity entry.
        """
        if flow in self._table.slot_of:
            raise SimulationError(f"flow {flow!r} is already active")
        index = self._index
        alive = self._link_alive
        indices = []
        for link in links:
            position = index.get(link)
            if position is None or not alive[position]:
                raise SimulationError(
                    f"flow {flow!r} uses unknown link {sorted(link)}"
                )
            indices.append(position)
        array = np.asarray(indices, dtype=np.int32)
        slot = self._table.add(
            flow, array, has_dup=len(indices) > len(set(indices))
        )
        if array.shape[0]:
            np.add.at(self._count, array, 1.0)
        return slot

    def remove_flow(self, flow: Hashable) -> int:
        """Stop tracking a flow; returns the slot it held.

        Raises:
            SimulationError: when the flow is not tracked.
        """
        table = self._table
        slot = table.slot_of.get(flow)
        if slot is None:
            raise SimulationError(f"flow {flow!r} is not active")
        start = int(table.link_start[slot])
        count = int(table.link_len[slot])
        if count:
            np.subtract.at(
                self._count, table.pool[start : start + count], 1.0
            )
        return table.remove(flow)

    def remove_link(self, link: LinkId) -> None:
        """Deactivate a link (e.g. after a node failure).

        The index is retained so a later repair restores it in place.

        Raises:
            SimulationError: when active flows still cross the link.
        """
        position = self._index.get(link)
        if position is None:
            return
        crossing = int(self._count[position])
        if crossing:
            raise SimulationError(
                f"cannot remove link {sorted(link)}: "
                f"{crossing} active flows still cross it"
            )
        self._link_alive[position] = False

    def set_capacity(self, link: LinkId, capacity: float) -> None:
        """Set (or restore) a link's capacity — the revocation hook.

        Unknown links are appended to the registry (the caller is
        responsible for sizing any parallel per-link arrays).

        Raises:
            SimulationError: on a non-positive capacity.
        """
        if capacity <= 0:
            raise SimulationError(
                f"link {sorted(link)} capacity must be positive, "
                f"got {capacity}"
            )
        position = self._index.get(link)
        if position is None:
            position = len(self._link_ids)
            self._link_ids.append(link)
            self._index[link] = position
            self._cap = np.append(self._cap, capacity)
            self._link_alive = np.append(self._link_alive, True)
            self._count = np.append(self._count, 0.0)
            self._sort_keys.append(tuple(sorted(link)))
            self._rank = None
        else:
            self._cap[position] = capacity
            self._link_alive[position] = True

    # ------------------------------------------------------------------
    # Water-filling
    # ------------------------------------------------------------------
    def _rank_order(self) -> np.ndarray:
        """Link indices in lexicographic ``sorted(link)`` order — the
        dict engine's tie-break order, cached until a link is added."""
        if self._rank is None or self._rank.shape[0] != len(self._link_ids):
            self._rank = np.array(
                sorted(
                    range(len(self._link_ids)),
                    key=self._sort_keys.__getitem__,
                ),
                dtype=np.int64,
            )
        return self._rank

    def recompute(self) -> np.ndarray:
        """Max-min fair rate per table slot.

        Bit-for-bit identical to
        :meth:`repro.sim.fairshare.FairShareEngine.recompute` on the
        same flows and capacities.
        """
        table = self._table
        size = table.size
        rates = np.zeros(size)
        observe = self._rounds_histogram.observe
        active = table.active_slots()
        if active.shape[0] == 0:
            observe(0.0)
            return rates
        lens = table.link_len[active]
        zero_hop = active[lens == 0]
        if zero_hop.shape[0]:
            rates[zero_hop] = np.inf
        carriers = active[lens > 0]
        if carriers.shape[0] == 0:
            observe(0.0)
            return rates
        flat_links, carrier_lens = table.gather_links(carriers)
        # Compress to the loaded links so a round costs O(loaded), not
        # O(all links), and order them by lexicographic rank: with the
        # compressed arrays in rank order, ``np.argmin``'s
        # first-occurrence rule IS the dict engine's exact-tie
        # tie-break (lowest sort key among equal ratios) — one call
        # replaces the min/candidates/rank-argmin cascade.
        perm = self._rank_order()
        loaded = perm[self._count[perm] > 0.0]
        n_loaded = loaded.shape[0]
        position = np.full(len(self._link_ids), -1, dtype=np.int64)
        position[loaded] = np.arange(n_loaded)
        remaining = self._cap[loaded].copy()
        load = self._count[loaded].copy()
        # Entries in flow (CSR) order, in compressed link space; the
        # per-carrier segment table makes the per-round incidence
        # gather pure arithmetic on small arrays.
        compressed = position[flat_links]
        entry_ends = np.cumsum(carrier_lens)
        entry_starts = entry_ends - carrier_lens
        carrier_pos = np.full(size, -1, dtype=np.int64)
        carrier_pos[carriers] = np.arange(carriers.shape[0])
        # link -> member flows transpose with precomputed segment
        # bounds (replaces two binary searches per round).
        order = np.argsort(compressed, kind="stable")
        transpose_flows = np.repeat(carriers, carrier_lens)[order]
        bounds = np.zeros(n_loaded + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(compressed, minlength=n_loaded), out=bounds[1:]
        )
        frozen = np.zeros(size, dtype=bool)
        unfrozen = carriers.shape[0]
        ratio = np.empty(n_loaded)
        # A flow that crosses some link twice (a cycle in its path)
        # appears twice in that link's transpose segment but must
        # freeze exactly once, like the dict engine's member *dict*.
        # Dedup inside the round is safe — every member gets the same
        # share and per-link subtraction counts don't depend on member
        # order — but it costs an ``np.unique`` per round, so it is
        # gated on the table's per-slot flag (cyclic paths are rare).
        dedup = bool(table.has_dup[carriers].any())
        rounds = 0
        while unfrozen:
            rounds += 1
            ratio.fill(np.inf)
            np.divide(remaining, load, out=ratio, where=load > 0.0)
            bottleneck = int(np.argmin(ratio))
            share = ratio[bottleneck]
            members = transpose_flows[
                bounds[bottleneck] : bounds[bottleneck + 1]
            ]
            members = members[~frozen[members]]
            if dedup and members.shape[0] > 1:
                members = np.unique(members)
            if members.shape[0] == 0:
                raise SimulationError(
                    "water-filling invariant violated: loaded bottleneck "
                    "without unfrozen members"
                )
            rates[members] = share
            frozen[members] = True
            unfrozen -= members.shape[0]
            pos = carrier_pos[members]
            starts = entry_starts[pos]
            counts = carrier_lens[pos]
            total = int(counts.sum())
            ends = np.cumsum(counts)
            flat = (
                np.repeat(starts - (ends - counts), counts)
                + np.arange(total)
            )
            incidences = compressed[flat]
            # Sequential duplicate-index subtraction == the dict
            # engine's per-flow, per-link subtraction of the same share;
            # one deferred clamp per round is bit-identical to clamping
            # after every subtraction (see module docstring).
            np.subtract.at(remaining, incidences, share)
            np.maximum(remaining, 0.0, out=remaining)
            np.subtract.at(load, incidences, 1.0)
        observe(float(rounds))
        return rates

    def rates_by_flow(self) -> dict[Hashable, float]:
        """Recompute and return ``flow id -> rate`` (parity spelling)."""
        rates = self.recompute()
        return {
            flow: float(rates[slot])
            for flow, slot in self._table.slot_of.items()
        }


class BatchedFairShareEngine(VectorFairShareEngine):
    """Route-class-aggregated water-filling — the batched data plane.

    Flows admitted from interned routes repeat a small set of paths, so
    instead of transposing ``active flows x links`` on every recompute
    (the vector engine's dominant cost at full scale), this engine
    interns each distinct link-index pool as a *route class* and keeps
    a persistent link -> class transpose in full link space, rebuilt
    only when a new class appears or a link is registered.  A recompute
    then reduces every per-flow structure to per-class ones: the
    multiplicity vector is one ``bincount`` over the active slots'
    class ids, and a round freezes classes (each standing for ``m``
    identical flows) instead of flows.

    **Bit parity.**  The round sequence is unchanged — same loaded
    links, same ``remaining / load`` ratios, same first-occurrence
    rank-ordered argmin — and all subtractions in a round remove the
    *same* share, so regrouping a bottleneck's member flows by class
    only permutes same-valued subtractions across positions; each link
    position still sees exactly the dict engine's subtraction sequence.
    The per-class rate gathered back through the class map is the same
    assignment the per-flow freeze performs.  Slots carrying duplicate
    links (cyclic paths) or missing a class (flows added behind the
    engine's back) fall back to the vector recompute, which is itself
    bit-identical.

    The round loop runs in a compiled kernel when a C compiler is
    available (:mod:`repro.sim.ckernel` — same IEEE operations in the
    same order) and in a fused numpy loop otherwise; both are asserted
    bitwise-equal in the suite.
    """

    __slots__ = (
        "_class_index",
        "_class_pools",
        "_n_classes",
        "_class_flat",
        "_class_starts",
        "_class_lens",
        "_dup_class_ids",
        "_class_of",
        "_t_classes",
        "_t_bounds",
        "_t_stale",
        "_kernel",
    )

    def __init__(
        self,
        capacities: Mapping[LinkId, float],
        *,
        table: FlowTable | None = None,
        telemetry=None,
    ) -> None:
        super().__init__(capacities, table=table, telemetry=telemetry)
        from repro.sim.ckernel import waterfill_kernel

        #: pool bytes -> class id (the interning table).
        self._class_index: dict[bytes, int] = {}
        self._class_pools: list[np.ndarray] = []
        self._n_classes = 0
        self._class_flat = _EMPTY_I32
        self._class_starts = _EMPTY_I64
        self._class_lens = _EMPTY_I64
        #: Classes whose pool repeats a link (cyclic paths) — their
        #: presence among active flows forces the vector fallback.
        self._dup_class_ids: list[int] = []
        #: Per-slot class id (-1 = unclassified), renumbered alongside
        #: the table by the compaction hook.
        self._class_of = np.full(
            self._table.remaining.shape[0], -1, dtype=np.int32
        )
        self._t_classes: np.ndarray | None = None
        self._t_bounds: np.ndarray | None = None
        self._t_stale = True
        self._kernel = waterfill_kernel()
        self._table.on_compact = self._renumber_classes

    # ------------------------------------------------------------------
    @property
    def kernel_active(self) -> bool:
        """Whether recomputes run the compiled round loop."""
        return self._kernel is not None

    @property
    def n_classes(self) -> int:
        """Number of distinct route classes interned so far."""
        return self._n_classes

    def class_for(self, pool: np.ndarray) -> int:
        """Intern a link-index pool, returning its class id."""
        key = pool.tobytes()
        cid = self._class_index.get(key)
        if cid is None:
            cid = self._n_classes
            self._class_index[key] = cid
            self._class_pools.append(pool.copy())
            if len(set(pool.tolist())) < pool.shape[0]:
                self._dup_class_ids.append(cid)
            self._n_classes += 1
            self._t_stale = True
        return cid

    def _set_class(self, slot: int, cid: int) -> None:
        if slot >= self._class_of.shape[0]:
            grown = np.full(
                max(self._class_of.shape[0] * 2, slot + 1),
                -1,
                dtype=np.int32,
            )
            grown[: self._class_of.shape[0]] = self._class_of
            self._class_of = grown
        self._class_of[slot] = cid

    def _renumber_classes(self, live: np.ndarray) -> None:
        n = live.shape[0]
        self._class_of[:n] = self._class_of[live]
        self._class_of[n:] = -1

    # ------------------------------------------------------------------
    def add_flow(self, flow: Hashable, links: Iterable[LinkId]) -> int:
        slot = super().add_flow(flow, links)
        table = self._table
        start = int(table.link_start[slot])
        count = int(table.link_len[slot])
        self._set_class(
            slot, self.class_for(table.pool[start : start + count])
        )
        return slot

    def add_interned(self, flows: Sequence, routes: Sequence) -> np.ndarray:
        """Bulk-admit flows over pre-interned routes.

        ``routes[i]`` is flow ``i``'s
        :class:`~repro.sim.admission.InternedRoute`; its ``indices``
        array goes straight into the table (no per-link python loop)
        and its class id is interned once and cached on the route.
        Returns the allocated slots in ``flows`` order.
        """
        table = self._table
        pools = [route.indices for route in routes]
        slots = table.add_many(
            flows, pools, [route.has_dup for route in routes]
        )
        if pools:
            np.add.at(self._count, np.concatenate(pools), 1.0)
        for slot, route in zip(slots.tolist(), routes):
            cid = route.cid
            if cid is None:
                cid = self.class_for(route.indices)
                route.cid = cid
            self._set_class(slot, cid)
        return slots

    # ------------------------------------------------------------------
    def _rebuild_transpose(self) -> None:
        C = self._n_classes
        lens = np.array(
            [pool.shape[0] for pool in self._class_pools], dtype=np.int64
        )
        flat = (
            np.concatenate(self._class_pools).astype(np.int64)
            if C
            else _EMPTY_I64
        )
        ends = np.cumsum(lens)
        self._class_flat = flat
        self._class_lens = lens
        self._class_starts = ends - lens
        n_links = len(self._link_ids)
        order = np.argsort(flat, kind="stable")
        self._t_classes = np.repeat(np.arange(C, dtype=np.int64), lens)[
            order
        ]
        bounds = np.zeros(n_links + 1, dtype=np.int64)
        np.cumsum(np.bincount(flat, minlength=n_links), out=bounds[1:])
        self._t_bounds = bounds
        self._t_stale = False

    def recompute(self) -> np.ndarray:
        """Max-min fair rate per slot — bit-identical to the vector
        (and therefore dict) engines; see the class docstring."""
        table = self._table
        size = table.size
        rates = np.zeros(size)
        observe = self._rounds_histogram.observe
        active = table.active_slots()
        if active.shape[0] == 0:
            observe(0.0)
            return rates
        lens = table.link_len[active]
        zero_hop = active[lens == 0]
        if zero_hop.shape[0]:
            rates[zero_hop] = np.inf
        carriers = active[lens > 0]
        if carriers.shape[0] == 0:
            observe(0.0)
            return rates
        cls = self._class_of[carriers].astype(np.int64)
        if cls.min(initial=0) < 0:
            return super().recompute()
        C = self._n_classes
        m = np.bincount(cls, minlength=C)
        if self._dup_class_ids and m[self._dup_class_ids].any():
            return super().recompute()
        if (
            self._t_stale
            or self._t_bounds.shape[0] != len(self._link_ids) + 1
        ):
            self._rebuild_transpose()
        perm = self._rank_order()
        loaded = perm[self._count[perm] > 0.0]
        n_loaded = loaded.shape[0]
        position = np.full(len(self._link_ids), -1, dtype=np.int64)
        position[loaded] = np.arange(n_loaded)
        remaining = self._cap[loaded].copy()
        load = self._count[loaded].copy()
        cpools = position[self._class_flat]
        class_rate = np.zeros(C)
        if self._kernel is not None:
            loaded = np.ascontiguousarray(loaded)
            rounds = self._kernel(
                n_loaded,
                remaining.ctypes.data,
                load.ctypes.data,
                loaded.ctypes.data,
                int(carriers.shape[0]),
                m.ctypes.data,
                class_rate.ctypes.data,
                self._class_starts.ctypes.data,
                self._class_lens.ctypes.data,
                cpools.ctypes.data,
                self._t_classes.ctypes.data,
                self._t_bounds.ctypes.data,
            )
            if rounds < 0:
                raise SimulationError(
                    "water-filling invariant violated: loaded bottleneck "
                    "without unfrozen members"
                )
        else:
            rounds = self._waterfill_numpy(
                n_loaded,
                remaining,
                load,
                loaded,
                int(carriers.shape[0]),
                m,
                class_rate,
                cpools,
            )
        rates[carriers] = class_rate[cls]
        observe(float(rounds))
        return rates

    def _waterfill_numpy(
        self,
        n_loaded: int,
        remaining: np.ndarray,
        load: np.ndarray,
        loaded: np.ndarray,
        unfrozen: int,
        m: np.ndarray,
        class_rate: np.ndarray,
        cpools: np.ndarray,
    ) -> int:
        """Fused-array round loop, bitwise-equal to the compiled kernel.

        Works over *multiplicity-expanded* pools built once per
        recompute — class ``c``'s compressed links each repeated
        ``m[c]`` times — so one round is a single flat gather plus two
        scalar-operand ``np.subtract.at`` calls (sequential equal-share
        subtraction, exactly the expansion the kernel's inner loops
        perform).
        """
        reps = np.repeat(m, self._class_lens)
        epool = np.repeat(cpools, reps)
        elens = self._class_lens * m
        eends = np.cumsum(elens)
        estarts = eends - elens
        ratio = np.empty(n_loaded)
        loaded_list = loaded.tolist()
        t_bounds = self._t_bounds
        t_classes = self._t_classes
        rounds = 0
        while unfrozen:
            rounds += 1
            ratio.fill(np.inf)
            np.divide(remaining, load, out=ratio, where=load > 0.0)
            bottleneck = int(np.argmin(ratio))
            share = ratio[bottleneck]
            original = loaded_list[bottleneck]
            segment = t_classes[
                t_bounds[original] : t_bounds[original + 1]
            ]
            members = segment[m[segment] > 0]
            if members.shape[0] == 0:
                raise SimulationError(
                    "water-filling invariant violated: loaded bottleneck "
                    "without unfrozen members"
                )
            class_rate[members] = share
            unfrozen -= int(m[members].sum())
            m[members] = 0
            if members.shape[0] == 1:
                cid = members[0]
                incidences = epool[estarts[cid] : eends[cid]]
            else:
                counts = elens[members]
                total = int(counts.sum())
                ends = np.cumsum(counts)
                flat = (
                    np.repeat(estarts[members] - (ends - counts), counts)
                    + np.arange(total)
                )
                incidences = epool[flat]
            np.subtract.at(remaining, incidences, share)
            np.maximum(remaining, 0.0, out=remaining)
            np.subtract.at(load, incidences, 1.0)
        return rounds
