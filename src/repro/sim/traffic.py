"""Service-correlated traffic generation.

Section III.A: "two machines (physical or virtual) providing similar
service have high data correlation in comparison with servers providing
different service … two machines offering identical services are likely to
interact with each other more often than machines hosting different
services."  The generator parameterizes that skew with
``intra_service_probability`` and draws flow sizes from a lognormal
distribution (the usual heavy-tailed DCN flow-size model).
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Iterator

from repro.exceptions import SimulationError
from repro.ids import IdAllocator, flow_id
from repro.sim.flows import Flow
from repro.virtualization.machines import MachineInventory


@dataclasses.dataclass(frozen=True, slots=True)
class TrafficConfig:
    """Parameters of the synthetic workload.

    Attributes:
        intra_service_probability: probability a flow's destination offers
            the same service as its source (the paper's data-correlation
            skew; 1.0 = perfectly clustered traffic).
        mean_flow_gb: mean flow size in gigabytes.
        sigma: lognormal shape parameter (0 = constant-size flows).
        arrival_rate: flows per unit virtual time (Poisson process).
    """

    intra_service_probability: float = 0.8
    mean_flow_gb: float = 1.0
    sigma: float = 1.0
    arrival_rate: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.intra_service_probability <= 1.0:
            raise SimulationError(
                "intra_service_probability must be in [0, 1], got "
                f"{self.intra_service_probability}"
            )
        if self.mean_flow_gb <= 0 or self.arrival_rate <= 0:
            raise SimulationError(
                "mean_flow_gb and arrival_rate must be positive"
            )
        if self.sigma < 0:
            raise SimulationError(f"sigma must be non-negative, got {self.sigma}")


class TrafficGenerator:
    """Draws service-correlated flows between placed VMs."""

    def __init__(
        self,
        inventory: MachineInventory,
        config: TrafficConfig | None = None,
        seed: int = 0,
    ) -> None:
        self._inventory = inventory
        self._config = config if config is not None else TrafficConfig()
        self._rng = random.Random(seed)
        self._ids = IdAllocator()
        self._by_service: dict[str, list[str]] = {}
        for vm in inventory.placed_vms():
            self._by_service.setdefault(vm.service, []).append(vm.vm_id)
        if sum(len(vms) for vms in self._by_service.values()) < 2:
            raise SimulationError(
                "traffic generation needs at least two placed VMs"
            )

    @property
    def config(self) -> TrafficConfig:
        """The workload parameters."""
        return self._config

    # ------------------------------------------------------------------
    def _draw_size_bytes(self) -> float:
        mean_bytes = self._config.mean_flow_gb * 1e9
        if self._config.sigma == 0:
            return mean_bytes
        # Parameterize the lognormal so its mean equals mean_bytes.
        sigma = self._config.sigma
        mu = math.log(mean_bytes) - sigma * sigma / 2
        return self._rng.lognormvariate(mu, sigma)

    def _draw_pair(self) -> tuple[str, str, bool]:
        services = sorted(self._by_service)
        weights = [len(self._by_service[name]) for name in services]
        source_service = self._rng.choices(services, weights=weights)[0]
        source = self._rng.choice(self._by_service[source_service])
        intra_pool = [
            vm for vm in self._by_service[source_service] if vm != source
        ]
        other_services = [
            name
            for name in services
            if name != source_service and self._by_service[name]
        ]
        want_intra = (
            self._rng.random() < self._config.intra_service_probability
        )
        if want_intra and intra_pool:
            return source, self._rng.choice(intra_pool), True
        if other_services:
            dest_service = self._rng.choice(other_services)
            return source, self._rng.choice(self._by_service[dest_service]), False
        if intra_pool:
            return source, self._rng.choice(intra_pool), True
        raise SimulationError(f"no destination candidates for {source}")

    # ------------------------------------------------------------------
    def next_flow(self, arrival_time: float = 0.0) -> Flow:
        """Draw one flow arriving at the given time."""
        source, destination, intra = self._draw_pair()
        return Flow(
            flow_id=self._ids.allocate(flow_id),
            source=source,
            destination=destination,
            size_bytes=self._draw_size_bytes(),
            arrival_time=arrival_time,
            intra_service=intra,
        )

    def flows(self, count: int) -> list[Flow]:
        """Draw ``count`` flows with Poisson arrival times."""
        if count <= 0:
            raise SimulationError(f"flow count must be positive, got {count}")
        now = 0.0
        generated = []
        for _ in range(count):
            now += self._rng.expovariate(self._config.arrival_rate)
            generated.append(self.next_flow(now))
        return generated

    def stream(self) -> Iterator[Flow]:
        """Endless flow stream with Poisson arrivals."""
        now = 0.0
        while True:
            now += self._rng.expovariate(self._config.arrival_rate)
            yield self.next_flow(now)
