"""Fault events the event-driven simulator understands natively.

The chaos subsystem (:mod:`repro.chaos`) schedules failures against a
:class:`~repro.topology.datacenter.DataCenterNetwork`; the simulator
plays them out as first-class events alongside arrivals and completions.
The model lives here (in the sim layer) so the simulator never imports
the chaos package — :mod:`repro.chaos` re-exports these names.

Supported fault actions:

* **node crash** (:attr:`FaultKind.OPS_CRASH` / :attr:`FaultKind.TOR_CRASH`
  / :attr:`FaultKind.SERVER_CRASH`) — the node and every link touching it
  leave the fabric; active flows crossing it reroute or drop;
* **node repair** (:attr:`FaultKind.NODE_REPAIR`) — the node returns and
  its links regain their pre-failure capacity (unless individually cut);
* **link cut** (:attr:`FaultKind.LINK_CUT`) / **link repair**
  (:attr:`FaultKind.LINK_REPAIR`) — one trunk leaves / rejoins the
  capacity map;
* **link degrade** (:attr:`FaultKind.LINK_DEGRADE`) — a trunk member
  dies but the trunk survives: capacity shrinks by ``severity`` while
  connectivity is preserved (capacity revocation in the fair-share
  engine, route-cache entries crossing the trunk are invalidated).

The legacy ``(time, node_id)`` tuples accepted by
:meth:`~repro.sim.event_simulator.EventDrivenFlowSimulator.run` keep
working; :func:`normalize_failures` maps both forms onto one internal
record stream with a deterministic total order.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Sequence

from repro.exceptions import ValidationError

#: Internal action names the simulator's event loop switches on.
NODE_DOWN = "node_down"
NODE_UP = "node_up"
LINK_DOWN = "link_down"
LINK_UP = "link_up"
LINK_DEGRADE = "link_degrade"


class FaultKind(enum.Enum):
    """Kinds of faults the chaos layer can inject."""

    OPS_CRASH = "ops_crash"
    TOR_CRASH = "tor_crash"
    SERVER_CRASH = "server_crash"
    NODE_REPAIR = "node_repair"
    LINK_CUT = "link_cut"
    LINK_REPAIR = "link_repair"
    LINK_DEGRADE = "link_degrade"


#: Kinds whose target is a single node id.
NODE_KINDS = frozenset(
    {
        FaultKind.OPS_CRASH,
        FaultKind.TOR_CRASH,
        FaultKind.SERVER_CRASH,
        FaultKind.NODE_REPAIR,
    }
)

#: Kinds whose target is an ``(a, b)`` link endpoint pair.
LINK_KINDS = frozenset(
    {FaultKind.LINK_CUT, FaultKind.LINK_REPAIR, FaultKind.LINK_DEGRADE}
)

_ACTION_OF: dict[FaultKind, str] = {
    FaultKind.OPS_CRASH: NODE_DOWN,
    FaultKind.TOR_CRASH: NODE_DOWN,
    FaultKind.SERVER_CRASH: NODE_DOWN,
    FaultKind.NODE_REPAIR: NODE_UP,
    FaultKind.LINK_CUT: LINK_DOWN,
    FaultKind.LINK_REPAIR: LINK_UP,
    FaultKind.LINK_DEGRADE: LINK_DEGRADE,
}


@dataclasses.dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault against the fabric.

    Attributes:
        time: virtual time the fault fires (>= 0).
        kind: what happens (see :class:`FaultKind`).
        target: a node id for node kinds, an ``(a, b)`` endpoint pair
            for link kinds.
        severity: for :attr:`FaultKind.LINK_DEGRADE`, the fraction of
            trunk capacity lost, in the open interval (0, 1); ``1.0``
            (the default) for every other kind.
    """

    time: float
    kind: FaultKind
    target: str | tuple[str, str]
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValidationError(
                f"fault time must be >= 0, got {self.time}"
            )
        if self.kind in NODE_KINDS:
            if not isinstance(self.target, str):
                raise ValidationError(
                    f"{self.kind.value} target must be a node id, "
                    f"got {self.target!r}"
                )
        else:
            if (
                not isinstance(self.target, tuple)
                or len(self.target) != 2
                or self.target[0] == self.target[1]
            ):
                raise ValidationError(
                    f"{self.kind.value} target must be an (a, b) pair of "
                    f"distinct endpoints, got {self.target!r}"
                )
            # Canonicalize the undirected pair so schedule equality and
            # ordering never depend on how the caller spelled it.
            a, b = self.target
            if b < a:
                object.__setattr__(self, "target", (b, a))
        if self.kind is FaultKind.LINK_DEGRADE:
            if not 0.0 < self.severity < 1.0:
                raise ValidationError(
                    "link_degrade severity must be in (0, 1), got "
                    f"{self.severity}"
                )
        elif self.severity != 1.0:
            raise ValidationError(
                f"severity applies only to link_degrade faults, "
                f"got {self.severity} for {self.kind.value}"
            )

    @property
    def is_node_event(self) -> bool:
        """True when the target is a single node."""
        return self.kind in NODE_KINDS

    @property
    def link(self) -> frozenset:
        """The canonical :data:`~repro.sim.fairshare.LinkId` of a link
        fault's target.

        Raises:
            ValidationError: for node-targeted kinds.
        """
        if self.is_node_event:
            raise ValidationError(
                f"{self.kind.value} fault has no link target"
            )
        return frozenset(self.target)


@dataclasses.dataclass(frozen=True, slots=True)
class _FaultRecord:
    """Normalized internal form: one action at one instant."""

    time: float
    action: str
    payload: object  # node id (str) or LinkId (frozenset)
    severity: float
    sort_key: tuple

    def __lt__(self, other: "_FaultRecord") -> bool:
        return self.sort_key < other.sort_key


def _record(event: FaultEvent) -> _FaultRecord:
    action = _ACTION_OF[event.kind]
    if event.is_node_event:
        payload: object = event.target
        label = event.target
    else:
        payload = event.link
        label = "|".join(sorted(event.target))
    return _FaultRecord(
        time=event.time,
        action=action,
        payload=payload,
        severity=event.severity,
        sort_key=(event.time, label, action, event.severity),
    )


def normalize_failures(
    failures: Sequence["FaultEvent | tuple[float, str]"],
) -> list[_FaultRecord]:
    """Turn a mixed failure schedule into sorted internal records.

    Accepts :class:`FaultEvent` instances and the legacy ``(time,
    node_id)`` crash tuples interchangeably.  Records are sorted by
    ``(time, target, action, severity)`` — the same ``(time, node)``
    order the legacy tuple path always used — so replays are
    deterministic regardless of input order.

    Raises:
        ValidationError: on an entry that is neither form.
    """
    records: list[_FaultRecord] = []
    for item in failures:
        if isinstance(item, FaultEvent):
            records.append(_record(item))
            continue
        try:
            when, node = item
        except (TypeError, ValueError):
            raise ValidationError(
                f"failure entry must be a FaultEvent or (time, node) "
                f"tuple, got {item!r}"
            ) from None
        if not isinstance(node, str):
            raise ValidationError(
                f"failure node must be a node id, got {node!r}"
            )
        records.append(
            _FaultRecord(
                time=float(when),
                action=NODE_DOWN,
                payload=node,
                severity=1.0,
                sort_key=(float(when), node, NODE_DOWN, 1.0),
            )
        )
    return sorted(records)
