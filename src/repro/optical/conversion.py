"""O/E/O conversion counting and cost/energy accounting (Section IV.D).

The flow model of the paper: a flow entering the data center is steered
through the optical core; every VNF hosted in the electronic domain forces
the flow off the core — an optical→electronic→optical *excursion* — and
each excursion costs one O/E/O conversion whose cost is proportional to the
flow's length (size in bytes).

Two counting semantics are provided:

* **per-visit** (default): every electronic VNF costs its own conversion —
  the paper's Fig. 8 semantics, where a 3-VNF chain with two electronic
  VNFs "consumes two O/E/O conversions" because the flow returns to the
  optical core between function visits;
* **excursion** (``merge_consecutive=True``): consecutive electronic VNFs
  served in one excursion (co-located on one electronic host) share a
  single conversion — a chain ``[E, E, O]`` costs one.  This is the
  co-location ablation of DESIGN.md §6.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.exceptions import ValidationError
from repro.topology.elements import Domain


def count_excursions(
    domains: Sequence[Domain], *, merge_consecutive: bool = False
) -> int:
    """Number of O/E/O conversions needed to visit VNFs in these domains.

    Args:
        domains: hosting domain of each VNF, in chain order.
        merge_consecutive: if False (default, the paper's per-visit
            semantics) every electronic VNF costs one conversion; if True
            (excursion semantics) a maximal run of electronic VNFs costs
            one conversion.
    """
    if not merge_consecutive:
        return sum(1 for domain in domains if domain is Domain.ELECTRONIC)
    conversions = 0
    previous = Domain.OPTICAL  # the flow rides the optical core between VNFs
    for domain in domains:
        if domain is Domain.ELECTRONIC and previous is Domain.OPTICAL:
            conversions += 1
        previous = domain
    return conversions


def domain_sequence(dcn, path: Sequence[str]) -> list[Domain]:
    """Domains a flow occupies along a physical node path."""
    from repro.optical.domain import domain_of_node

    return [domain_of_node(dcn, node) for node in path]


def boundary_crossings(domains: Sequence[Domain]) -> int:
    """Number of electronic↔optical boundary crossings along a path."""
    return sum(
        1 for before, after in zip(domains, domains[1:]) if before is not after
    )


@dataclasses.dataclass(frozen=True, slots=True)
class ConversionModel:
    """Cost and energy of one O/E/O conversion, as a function of flow size.

    "Cost of this conversion corresponds to the length of the flow.  The
    larger the flow is, higher will be the cost" (Section IV.D): both the
    abstract cost and the energy are linear in the flow's bit count.

    Attributes:
        cost_per_gb: abstract cost units charged per gigabyte converted.
        pj_per_bit: energy of one O/E/O conversion per bit.  The default,
            20 pJ/bit, models an E/O and an O/E transceiver stage of
            ~10 pJ/bit each — representative of the optical packet switch
            hardware in the paper's reference [29].
    """

    cost_per_gb: float = 1.0
    pj_per_bit: float = 20.0

    def __post_init__(self) -> None:
        if self.cost_per_gb < 0 or self.pj_per_bit < 0:
            raise ValidationError("conversion cost parameters must be non-negative")

    def conversion_cost(self, flow_bytes: float, conversions: int) -> float:
        """Abstract cost of pushing a flow through N conversions."""
        if flow_bytes < 0 or conversions < 0:
            raise ValidationError("flow size and conversion count must be non-negative")
        gigabytes = flow_bytes / 1e9
        return self.cost_per_gb * gigabytes * conversions

    def conversion_energy_joules(
        self, flow_bytes: float, conversions: int
    ) -> float:
        """Energy in joules of pushing a flow through N conversions."""
        if flow_bytes < 0 or conversions < 0:
            raise ValidationError("flow size and conversion count must be non-negative")
        bits = flow_bytes * 8
        return bits * self.pj_per_bit * 1e-12 * conversions


@dataclasses.dataclass(frozen=True, slots=True)
class TransportEnergyModel:
    """Per-hop transmission energy, by domain.

    Models the Section III.B motivation for an optical core: "in order to
    achieve higher bandwidth with small energy consumption, we use OPS".
    Defaults put optical forwarding an order of magnitude below
    electronic switching per bit-hop (representative of OPS vs.
    store-and-forward electronic fabrics, ref [29]).
    """

    optical_pj_per_bit_hop: float = 1.0
    electronic_pj_per_bit_hop: float = 10.0

    def __post_init__(self) -> None:
        if self.optical_pj_per_bit_hop < 0 or self.electronic_pj_per_bit_hop < 0:
            raise ValidationError("per-hop energies must be non-negative")

    def hop_energy_joules(self, flow_bytes: float, domain: Domain) -> float:
        """Energy to push a flow across one hop in the given domain."""
        if flow_bytes < 0:
            raise ValidationError("flow size must be non-negative")
        per_bit = (
            self.optical_pj_per_bit_hop
            if domain is Domain.OPTICAL
            else self.electronic_pj_per_bit_hop
        )
        return flow_bytes * 8 * per_bit * 1e-12

    def path_energy_joules(
        self, flow_bytes: float, domains: Sequence[Domain]
    ) -> float:
        """Transport energy of a flow over a path's domain sequence.

        A hop's domain is the domain of the link, approximated here by
        the domain of the *downstream* node (a hop into an OPS is
        optical, a hop into a server/ToR is electronic).
        """
        return sum(
            self.hop_energy_joules(flow_bytes, domain)
            for domain in domains[1:]
        )


@dataclasses.dataclass
class ConversionAccounting:
    """Accumulator of conversion counts/costs over many flows."""

    model: ConversionModel = dataclasses.field(default_factory=ConversionModel)
    flows: int = 0
    total_conversions: int = 0
    total_bytes_converted: float = 0.0
    total_cost: float = 0.0
    total_energy_joules: float = 0.0

    def record(self, flow_bytes: float, conversions: int) -> None:
        """Account one flow passing through ``conversions`` O/E/O stages."""
        self.flows += 1
        self.total_conversions += conversions
        self.total_bytes_converted += flow_bytes * conversions
        self.total_cost += self.model.conversion_cost(flow_bytes, conversions)
        self.total_energy_joules += self.model.conversion_energy_joules(
            flow_bytes, conversions
        )

    def record_many(self, records: Iterable[tuple[float, int]]) -> None:
        """Account ``(flow_bytes, conversions)`` pairs in bulk."""
        for flow_bytes, conversions in records:
            self.record(flow_bytes, conversions)

    @property
    def mean_conversions_per_flow(self) -> float:
        """Average number of conversions per recorded flow."""
        return self.total_conversions / self.flows if self.flows else 0.0

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all counters (for reports)."""
        return {
            "flows": self.flows,
            "total_conversions": self.total_conversions,
            "total_bytes_converted": self.total_bytes_converted,
            "total_cost": self.total_cost,
            "total_energy_joules": self.total_energy_joules,
            "mean_conversions_per_flow": self.mean_conversions_per_flow,
        }
