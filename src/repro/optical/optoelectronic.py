"""Capacity ledgers for optoelectronic routers hosting VNFs.

"Optoelectronic routers are a special kind of optical routers that have a
limited buffer, storage, and processing capability.  Therefore, they are
capable to host VNFs" (Section IV.D).  :class:`OptoelectronicHost` tracks
one router's remaining compute; :class:`OptoelectronicPool` tracks all the
routers of an abstraction layer and answers fit queries for the placement
optimizer.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import PlacementError, UnknownEntityError
from repro.ids import OpsId, VnfId
from repro.topology.datacenter import DataCenterNetwork
from repro.topology.elements import ResourceVector


class OptoelectronicHost:
    """Mutable compute ledger of a single optoelectronic router."""

    def __init__(self, ops_id: OpsId, capacity: ResourceVector) -> None:
        self.ops_id = ops_id
        self.capacity = capacity
        self._used = ResourceVector.zero()
        self._hosted: dict[VnfId, ResourceVector] = {}

    @property
    def used(self) -> ResourceVector:
        """Resources currently reserved on this router."""
        return self._used

    @property
    def free(self) -> ResourceVector:
        """Resources still available on this router."""
        return self.capacity - self._used

    def fits(self, demand: ResourceVector) -> bool:
        """True if this demand fits in the free capacity."""
        return demand.fits_within(self.free)

    def host(self, vnf: VnfId, demand: ResourceVector) -> None:
        """Reserve capacity for a VNF.

        Raises:
            PlacementError: if the VNF is already hosted here or does not
                fit — "some VNFs' resource demand, e.g., CPU is quite large
                and that cannot be met by optoelectronic routers".
        """
        if vnf in self._hosted:
            raise PlacementError(f"{vnf} is already hosted on {self.ops_id}")
        if not self.fits(demand):
            raise PlacementError(
                f"{vnf} (demand {demand}) does not fit on {self.ops_id} "
                f"(free {self.free})"
            )
        self._hosted[vnf] = demand
        self._used = self._used + demand

    def evict(self, vnf: VnfId) -> ResourceVector:
        """Release a VNF's reservation; returns the freed demand."""
        try:
            demand = self._hosted.pop(vnf)
        except KeyError:
            raise UnknownEntityError("hosted vnf", vnf) from None
        self._used = self._used - demand
        return demand

    def hosted_vnfs(self) -> list[VnfId]:
        """Ids of VNFs currently hosted, sorted."""
        return sorted(self._hosted)

    def __contains__(self, vnf: VnfId) -> bool:
        return vnf in self._hosted


class OptoelectronicPool:
    """The optoelectronic routers available to one abstraction layer."""

    def __init__(self, hosts: Iterable[OptoelectronicHost]) -> None:
        self._hosts: dict[OpsId, OptoelectronicHost] = {}
        for host in hosts:
            if host.ops_id in self._hosts:
                raise PlacementError(f"duplicate host {host.ops_id} in pool")
            self._hosts[host.ops_id] = host

    @classmethod
    def from_network(
        cls, dcn: DataCenterNetwork, ops_ids: Iterable[OpsId]
    ) -> "OptoelectronicPool":
        """Pool over the *optoelectronic* members of the given OPS set.

        Plain OPSs (zero compute) are silently excluded: they participate
        in the AL's connectivity but cannot host VNFs.
        """
        hosts = []
        for ops in sorted(set(ops_ids)):
            spec = dcn.spec_of(ops)
            if spec.is_optoelectronic:
                hosts.append(OptoelectronicHost(ops, spec.compute))
        return cls(hosts)

    def __len__(self) -> int:
        return len(self._hosts)

    def __contains__(self, ops: OpsId) -> bool:
        return ops in self._hosts

    def host_ids(self) -> list[OpsId]:
        """Router ids in the pool, sorted."""
        return sorted(self._hosts)

    def get(self, ops: OpsId) -> OptoelectronicHost:
        """The ledger of one router."""
        try:
            return self._hosts[ops]
        except KeyError:
            raise UnknownEntityError("optoelectronic router", ops) from None

    def first_fit(self, demand: ResourceVector) -> OpsId | None:
        """Id of the first router (sorted order) that fits the demand."""
        for ops in self.host_ids():
            if self._hosts[ops].fits(demand):
                return ops
        return None

    def best_fit(self, demand: ResourceVector) -> OpsId | None:
        """Id of the fitting router with the least free CPU (tightest fit)."""
        candidates = [
            (self._hosts[ops].free.cpu_cores, ops)
            for ops in self.host_ids()
            if self._hosts[ops].fits(demand)
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    def place(self, vnf: VnfId, demand: ResourceVector) -> OpsId:
        """First-fit placement of a VNF; raises PlacementError if none fits."""
        ops = self.first_fit(demand)
        if ops is None:
            raise PlacementError(
                f"no optoelectronic router in the pool fits {vnf} "
                f"(demand {demand})"
            )
        self._hosts[ops].host(vnf, demand)
        return ops

    def total_free(self) -> ResourceVector:
        """Aggregate free capacity across the pool."""
        return ResourceVector.total(host.free for host in self._hosts.values())

    def snapshot(self) -> dict[OpsId, dict[str, ResourceVector]]:
        """Per-router used/free capacities (for reports)."""
        return {
            ops: {"used": host.used, "free": host.free}
            for ops, host in sorted(self._hosts.items())
        }
