"""Optical substrate: domains, O/E/O conversion accounting, wavelengths.

Models the hybrid optical/electronic fabric of Section III.B and the
conversion-cost semantics of Section IV.D: "Each time the flow is traversed
from optical to electronic and back to optical, it consumes O/E/O
conversion.  Cost of this conversion corresponds to the length of the
flow."
"""

from repro.optical.conversion import (
    ConversionAccounting,
    ConversionModel,
    count_excursions,
    domain_sequence,
)
from repro.optical.domain import domain_of_node, is_optical_node
from repro.optical.optoelectronic import OptoelectronicHost, OptoelectronicPool
from repro.optical.packet_switch import PortAllocator
from repro.optical.wavelengths import WavelengthAssigner, WavelengthAssignment

__all__ = [
    "ConversionAccounting",
    "ConversionModel",
    "OptoelectronicHost",
    "OptoelectronicPool",
    "PortAllocator",
    "WavelengthAssigner",
    "WavelengthAssignment",
    "count_excursions",
    "domain_of_node",
    "domain_sequence",
    "is_optical_node",
]
