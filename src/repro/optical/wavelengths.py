"""Wavelength assignment for optical slices.

When the orchestrator "logically divide[s] the optical network into virtual
slices" (Section IV.B), slices sharing an optical link must use distinct
wavelengths.  The assigner gives each slice one wavelength index per OPS it
uses, reusing indices across disjoint slices — a first-fit colouring over
the slice-conflict graph.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

from repro.exceptions import SlicingError
from repro.ids import OpsId, SliceId


@dataclasses.dataclass(frozen=True, slots=True)
class WavelengthAssignment:
    """The wavelength index granted to one slice on each of its switches."""

    slice_id: SliceId
    wavelength: int
    switches: frozenset


class WavelengthAssigner:
    """Assigns wavelengths to slices with per-switch capacity limits.

    Two slices may share a wavelength index only if their switch sets are
    disjoint.  Since AL-VC slices are OPS-disjoint by construction (one OPS
    cannot be part of two ALs), the common case assigns wavelength 0 to
    every slice; overlap support exists for non-AL uses of the assigner.
    """

    def __init__(self, wavelengths_per_switch: Mapping[OpsId, int]) -> None:
        for ops, count in wavelengths_per_switch.items():
            if count <= 0:
                raise SlicingError(
                    f"{ops} must offer at least 1 wavelength, got {count}"
                )
        self._capacity = dict(wavelengths_per_switch)
        self._assignments: dict[SliceId, WavelengthAssignment] = {}

    @classmethod
    def from_network(cls, dcn) -> "WavelengthAssigner":
        """Assigner over all OPSs of a fabric, using their spec capacity."""
        return cls(
            {
                ops: dcn.spec_of(ops).wavelengths
                for ops in dcn.optical_switches()
            }
        )

    def assign(
        self, slice_id: SliceId, switches: Iterable[OpsId]
    ) -> WavelengthAssignment:
        """Grant the slice the lowest wavelength free on all its switches.

        Raises:
            SlicingError: if the slice is already assigned, uses an unknown
                switch, or no common wavelength index is free.
        """
        if slice_id in self._assignments:
            raise SlicingError(f"slice {slice_id} already has a wavelength")
        switch_set = frozenset(switches)
        if not switch_set:
            raise SlicingError(f"slice {slice_id} uses no switches")
        unknown = switch_set - self._capacity.keys()
        if unknown:
            raise SlicingError(
                f"slice {slice_id} uses unknown switches: {sorted(unknown)}"
            )
        taken: set[int] = set()
        for assignment in self._assignments.values():
            if assignment.switches & switch_set:
                taken.add(assignment.wavelength)
        limit = min(self._capacity[ops] for ops in switch_set)
        wavelength = next(
            (index for index in range(limit) if index not in taken), None
        )
        if wavelength is None:
            raise SlicingError(
                f"no free wavelength for slice {slice_id} "
                f"(limit {limit}, taken {sorted(taken)})"
            )
        assignment = WavelengthAssignment(
            slice_id=slice_id, wavelength=wavelength, switches=switch_set
        )
        self._assignments[slice_id] = assignment
        return assignment

    def extend(
        self, slice_id: SliceId, extra_switches: Iterable[OpsId]
    ) -> WavelengthAssignment:
        """Grow a slice's switch set, keeping its wavelength.

        The existing wavelength index must be available on every added
        switch (within its capacity and unused by overlapping slices).

        Raises:
            SlicingError: when the slice is unknown, a switch is unknown,
                or the wavelength is unavailable on an added switch.
        """
        current = self.assignment_of(slice_id)
        additions = frozenset(extra_switches) - current.switches
        if not additions:
            return current
        unknown = additions - self._capacity.keys()
        if unknown:
            raise SlicingError(
                f"slice {slice_id} extension uses unknown switches: "
                f"{sorted(unknown)}"
            )
        for ops in additions:
            if current.wavelength >= self._capacity[ops]:
                raise SlicingError(
                    f"wavelength {current.wavelength} exceeds {ops}'s "
                    f"capacity {self._capacity[ops]}"
                )
        for other in self._assignments.values():
            if other.slice_id == slice_id:
                continue
            if other.switches & additions and (
                other.wavelength == current.wavelength
            ):
                raise SlicingError(
                    f"wavelength {current.wavelength} already used by "
                    f"{other.slice_id} on the added switches"
                )
        extended = WavelengthAssignment(
            slice_id=slice_id,
            wavelength=current.wavelength,
            switches=current.switches | additions,
        )
        self._assignments[slice_id] = extended
        return extended

    def shrink(
        self, slice_id: SliceId, removed_switches: Iterable[OpsId]
    ) -> WavelengthAssignment:
        """Drop switches from a slice's assignment (extension rollback).

        Raises:
            SlicingError: when the slice is unknown or the shrink would
                leave it with no switches.
        """
        current = self.assignment_of(slice_id)
        remaining = current.switches - frozenset(removed_switches)
        if not remaining:
            raise SlicingError(
                f"slice {slice_id} cannot shrink to zero switches"
            )
        shrunk = WavelengthAssignment(
            slice_id=slice_id,
            wavelength=current.wavelength,
            switches=remaining,
        )
        self._assignments[slice_id] = shrunk
        return shrunk

    def release(self, slice_id: SliceId) -> None:
        """Return a slice's wavelength to the pool."""
        if slice_id not in self._assignments:
            raise SlicingError(f"slice {slice_id} has no wavelength assignment")
        del self._assignments[slice_id]

    def assignment_of(self, slice_id: SliceId) -> WavelengthAssignment:
        """The assignment of one slice."""
        try:
            return self._assignments[slice_id]
        except KeyError:
            raise SlicingError(
                f"slice {slice_id} has no wavelength assignment"
            ) from None

    def assignments(self) -> list[WavelengthAssignment]:
        """All active assignments, sorted by slice id."""
        return [self._assignments[key] for key in sorted(self._assignments)]
