"""Domain classification of physical nodes.

Servers live in the electronic domain; OPSs (including optoelectronic
routers) live in the optical domain.  ToR switches sit exactly on the
boundary — they "produce electronic packets and they need to be converted
into optical packets before sending over the optical domain" (Section
III.B) — and are classified as electronic here because packets at a ToR
exist in electronic form.
"""

from __future__ import annotations

from repro.ids import NodeKind
from repro.topology.datacenter import DataCenterNetwork
from repro.topology.elements import Domain


def domain_of_node(dcn: DataCenterNetwork, node_id: str) -> Domain:
    """Domain in which traffic exists while at this node."""
    kind = dcn.kind_of(node_id)
    if kind is NodeKind.OPS:
        return Domain.OPTICAL
    return Domain.ELECTRONIC


def is_optical_node(dcn: DataCenterNetwork, node_id: str) -> bool:
    """True when the node operates in the optical domain."""
    return domain_of_node(dcn, node_id) is Domain.OPTICAL
