"""Port accounting for optical packet switches.

Each OPS has a finite port count (:class:`OpticalSwitchSpec.port_count`);
slices and ToR uplinks consume ports.  :class:`PortAllocator` provides the
bookkeeping the slice allocator uses to refuse over-subscription.
"""

from __future__ import annotations

from repro.exceptions import InsufficientResourcesError, UnknownEntityError, ValidationError
from repro.ids import OpsId
from repro.topology.datacenter import DataCenterNetwork


class PortAllocator:
    """Tracks port usage on every OPS of a fabric.

    Physical ToR uplinks are charged automatically at construction; the
    remaining ports are available to dynamic consumers (slices, core
    interconnects added later).
    """

    def __init__(self, dcn: DataCenterNetwork) -> None:
        self._capacity: dict[OpsId, int] = {}
        self._used: dict[OpsId, int] = {}
        self._holders: dict[OpsId, dict[str, int]] = {}
        for ops in dcn.optical_switches():
            spec = dcn.spec_of(ops)
            physical_degree = dcn.graph.degree(ops)
            if physical_degree > spec.port_count:
                raise InsufficientResourcesError(
                    f"{ops} has {physical_degree} physical links but only "
                    f"{spec.port_count} ports"
                )
            self._capacity[ops] = spec.port_count
            self._used[ops] = physical_degree
            self._holders[ops] = {"physical": physical_degree}

    def capacity(self, ops: OpsId) -> int:
        """Total ports on a switch."""
        try:
            return self._capacity[ops]
        except KeyError:
            raise UnknownEntityError("ops", ops) from None

    def used(self, ops: OpsId) -> int:
        """Ports currently in use on a switch."""
        self.capacity(ops)
        return self._used[ops]

    def free(self, ops: OpsId) -> int:
        """Ports still free on a switch."""
        return self.capacity(ops) - self.used(ops)

    def reserve(self, ops: OpsId, holder: str, count: int = 1) -> None:
        """Reserve ``count`` ports for a named holder.

        Raises:
            InsufficientResourcesError: when the switch has too few free
                ports.
        """
        if count <= 0:
            raise ValidationError(f"port count must be positive, got {count}")
        if self.free(ops) < count:
            raise InsufficientResourcesError(
                f"{ops} has {self.free(ops)} free port(s), {count} requested "
                f"by {holder!r}"
            )
        self._used[ops] += count
        holders = self._holders[ops]
        holders[holder] = holders.get(holder, 0) + count

    def release(self, ops: OpsId, holder: str) -> int:
        """Release all ports held by ``holder``; returns how many."""
        self.capacity(ops)
        holders = self._holders[ops]
        count = holders.pop(holder, 0)
        self._used[ops] -= count
        return count

    def holders_of(self, ops: OpsId) -> dict[str, int]:
        """Current holders and their port counts on a switch."""
        self.capacity(ops)
        return dict(self._holders[ops])
