"""Spans and the tracer: nested timed stages of control-plane work.

A **span** is one timed operation ("provision.placement_solve"); spans
nest, so a ``provision_chain`` root span carries one child span per
pipeline stage.  The tracer keeps a bounded buffer of finished spans
(newest win) plus per-name aggregate statistics that never grow with
traffic, so long-running orchestrators can stay instrumented.

Usage::

    with tracer.span("provision_chain", chain="chain-0") as root:
        with tracer.span("provision.placement_solve"):
            ...
        root.set(conversions=2)

The disabled path is :class:`NullTracer`, whose ``span()`` returns a
shared no-op context manager — no objects are allocated and no clock is
read.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import time
from typing import Iterator, Mapping

#: Default cap on retained finished spans (aggregates are unbounded-safe).
DEFAULT_MAX_SPANS = 10_000


@dataclasses.dataclass(frozen=True, slots=True)
class Span:
    """One finished timed operation."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attributes: Mapping[str, object]

    @property
    def duration(self) -> float:
        """Wall-clock seconds the span covered."""
        return self.end - self.start


class ActiveSpan:
    """A span in progress; use as a context manager."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "_start", "_attrs")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attributes: dict,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self._attrs = attributes
        self._start = 0.0

    def set(self, **attributes: object) -> "ActiveSpan":
        """Attach attributes to the span (returns self for chaining)."""
        self._attrs.update(attributes)
        return self

    def __enter__(self) -> "ActiveSpan":
        self._tracer._stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(
            Span(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self._start,
                end=end,
                attributes=dict(self._attrs),
            )
        )


@dataclasses.dataclass(slots=True)
class SpanStats:
    """Aggregate timing of every span sharing one name."""

    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    errors: int = 0

    @property
    def mean_seconds(self) -> float:
        """Mean duration (0.0 when the name never fired)."""
        return self.total_seconds / self.count if self.count else 0.0


class Tracer:
    """Creates nested spans and keeps finished ones for export."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._max_spans = max_spans
        self._ids = itertools.count(1)
        self._stack: list[int] = []
        # Bounded ring: appending past the cap drops the oldest span in
        # O(1), keeping the per-span cost flat on hot paths.
        self._finished: collections.deque[Span] = collections.deque(
            maxlen=max_spans
        )
        self._stats: dict[str, SpanStats] = {}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Real tracers record; the null tracer reports False."""
        return True

    def span(self, name: str, **attributes: object) -> ActiveSpan:
        """Open a span nested under the innermost active span."""
        parent = self._stack[-1] if self._stack else None
        return ActiveSpan(self, next(self._ids), parent, name, attributes)

    def _finish(self, span: Span) -> None:
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        else:  # pragma: no cover - misnested exits; drop gracefully
            try:
                self._stack.remove(span.span_id)
            except ValueError:
                pass
        self._finished.append(span)  # deque(maxlen=...) evicts oldest
        stats = self._stats.get(span.name)
        if stats is None:
            stats = self._stats[span.name] = SpanStats()
        stats.count += 1
        stats.total_seconds += span.duration
        if span.duration > stats.max_seconds:
            stats.max_seconds = span.duration
        if "error" in span.attributes:
            stats.errors += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def finished_spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        return list(self._finished)

    def spans_named(self, name: str) -> list[Span]:
        """Finished spans with one name, oldest first."""
        return [span for span in self._finished if span.name == name]

    def stats(self) -> dict[str, SpanStats]:
        """Per-name aggregates (a shallow copy)."""
        return dict(self._stats)

    def children_of(self, span: Span) -> Iterator[Span]:
        """Finished spans directly nested under ``span``."""
        for candidate in self._finished:
            if candidate.parent_id == span.span_id:
                yield candidate

    def snapshot(self) -> dict:
        """JSON-serializable spans + aggregates."""
        return {
            "spans": [
                {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "duration_seconds": span.duration,
                    "attributes": dict(span.attributes),
                }
                for span in self._finished
            ],
            "aggregates": {
                name: {
                    "count": stats.count,
                    "total_seconds": stats.total_seconds,
                    "mean_seconds": stats.mean_seconds,
                    "max_seconds": stats.max_seconds,
                    "errors": stats.errors,
                }
                for name, stats in sorted(self._stats.items())
            },
        }

    def reset(self) -> None:
        """Drop finished spans and aggregates (active spans survive)."""
        self._finished.clear()
        self._stats.clear()


class _NullActiveSpan:
    """Shared no-op span: enters, exits, records nothing."""

    __slots__ = ()

    def set(self, **attributes: object) -> "_NullActiveSpan":
        return self

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullActiveSpan()


class NullTracer(Tracer):
    """The zero-cost disabled tracer: ``span()`` is allocation-free."""

    def __init__(self) -> None:
        super().__init__(max_spans=0)

    @property
    def enabled(self) -> bool:
        """Always False: nothing is recorded."""
        return False

    def span(self, name: str, **attributes: object) -> _NullActiveSpan:  # type: ignore[override]
        """The shared no-op span."""
        return _NULL_SPAN
