"""Telemetry exporters: JSON snapshot and Prometheus text format.

Two consumers, two formats:

* :func:`json_snapshot` / ``Telemetry.to_json`` — a full point-in-time
  dump (metrics *and* spans) for the CLI's ``--telemetry json`` mode and
  offline analysis;
* :func:`prometheus_text` / ``Telemetry.to_prometheus`` — the Prometheus
  `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so a
  scraper (or ``curl``) can ingest the same numbers; span aggregates are
  flattened into ``alvc_span_*`` gauge lines.
"""

from __future__ import annotations

from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.runtime import Telemetry


def json_snapshot(telemetry: Telemetry) -> dict:
    """The combined metrics + tracing snapshot (JSON-serializable)."""
    return telemetry.snapshot()


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    inner = ",".join(f'{key}="{_escape(str(value))}"' for key, value in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_metrics_text(registry: MetricsRegistry) -> str:
    """Render one registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.series):
            instrument = family.series[key]
            labels = dict(key)
            if isinstance(instrument, Histogram):
                for bound, count in zip(
                    instrument.upper_bounds, instrument.bucket_counts
                ):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_render_labels(labels, (('le', repr(bound)),))}"
                        f" {count}"
                    )
                lines.append(
                    f"{family.name}_bucket"
                    f"{_render_labels(labels, (('le', '+Inf'),))}"
                    f" {instrument.count}"
                )
                lines.append(
                    f"{family.name}_sum{_render_labels(labels)} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(labels)} "
                    f"{instrument.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_render_labels(labels)} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_text(telemetry: Telemetry) -> str:
    """Registry metrics plus span aggregates as one scrape document."""
    parts = [prometheus_metrics_text(telemetry.registry)]
    stats = telemetry.tracer.stats()
    if stats:
        span_lines = [
            "# HELP alvc_span_seconds_total cumulative span time per name",
            "# TYPE alvc_span_seconds_total counter",
        ]
        for name in sorted(stats):
            labels = _render_labels({"span": name})
            span_lines.append(
                f"alvc_span_seconds_total{labels} "
                f"{_format_value(stats[name].total_seconds)}"
            )
        span_lines.append(
            "# HELP alvc_span_count_total finished spans per name"
        )
        span_lines.append("# TYPE alvc_span_count_total counter")
        for name in sorted(stats):
            labels = _render_labels({"span": name})
            span_lines.append(
                f"alvc_span_count_total{labels} {stats[name].count}"
            )
        parts.append("\n".join(span_lines) + "\n")
    return "".join(parts)
