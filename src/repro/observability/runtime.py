"""The :class:`Telemetry` bundle and the process-wide default.

Instrumented components resolve their telemetry in one of two ways:

* **explicit injection** — pass ``telemetry=...`` to the constructor
  (what :class:`~repro.stack.AlvcStack` does, so each stack owns an
  isolated registry);
* **ambient default** — omit it and the component binds
  :func:`current_telemetry` at construction time, which is the no-op
  :data:`NULL_TELEMETRY` unless the process opted in via
  :func:`set_telemetry`, :func:`configure`, or the ``ALVC_TELEMETRY``
  environment variable (``json``/``prom``/``on``).

The disabled default is deliberate: benchmarks and library users pay
nothing unless they ask to be measured.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Iterator

from repro.exceptions import TelemetryError
from repro.observability.metrics import MetricsRegistry, NullMetricsRegistry
from repro.observability.tracing import NullTracer, Tracer

_ENV_VAR = "ALVC_TELEMETRY"
_OFF_VALUES = frozenset({"off", "0", "false", "none", "disabled", ""})
_ON_VALUES = frozenset({"on", "1", "true", "enabled", "json", "prom"})


class Telemetry:
    """One registry + one tracer, with convenience passthroughs.

    The common call sites::

        telemetry.counter("alvc_cover_skips_total").inc()
        with telemetry.span("provision.route"):
            ...
        telemetry.to_json()        # snapshot exporter
        telemetry.to_prometheus()  # text exposition format
    """

    __slots__ = ("registry", "tracer")

    def __init__(self, registry: MetricsRegistry, tracer: Tracer) -> None:
        self.registry = registry
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def enabled_instance(cls) -> "Telemetry":
        """A fresh recording telemetry (own registry, own tracer)."""
        return cls(MetricsRegistry(), Tracer())

    @classmethod
    def disabled_instance(cls) -> "Telemetry":
        """The shared no-op telemetry."""
        return NULL_TELEMETRY

    @property
    def enabled(self) -> bool:
        """True when this telemetry records anything."""
        return self.registry.enabled

    # ------------------------------------------------------------------
    # Passthroughs (hot paths use these)
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: object):
        """See :meth:`MetricsRegistry.counter`."""
        return self.registry.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels: object):
        """See :meth:`MetricsRegistry.gauge`."""
        return self.registry.gauge(name, help, **labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ):
        """See :meth:`MetricsRegistry.histogram`."""
        return self.registry.histogram(name, help, buckets, **labels)

    def span(self, name: str, **attributes: object):
        """See :meth:`Tracer.span`."""
        return self.tracer.span(name, **attributes)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Combined JSON-serializable metrics + tracing snapshot."""
        return {
            "metrics": self.registry.snapshot(),
            "tracing": self.tracer.snapshot(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Metrics (plus span aggregates) in Prometheus text format."""
        from repro.observability.export import prometheus_text

        return prometheus_text(self)

    def reset(self) -> None:
        """Clear every metric series and finished span."""
        self.registry.reset()
        self.tracer.reset()


#: The process-wide no-op telemetry; instrumented code paths bound to it
#: allocate no metric objects and never read the clock.
NULL_TELEMETRY = Telemetry(NullMetricsRegistry(), NullTracer())


def _from_env() -> Telemetry:
    value = os.environ.get(_ENV_VAR, "").strip().lower()
    if value in _ON_VALUES:
        return Telemetry.enabled_instance()
    return NULL_TELEMETRY


_current: Telemetry = _from_env()


def current_telemetry() -> Telemetry:
    """The ambient telemetry components bind when none is injected."""
    return _current


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the ambient default; returns the old one."""
    global _current
    previous = _current
    _current = telemetry
    return previous


def configure(mode: object = True) -> Telemetry:
    """Install (and return) an ambient telemetry from a mode flag.

    Accepts ``True``/``"json"``/``"prom"``/``"on"`` (record),
    ``False``/``"off"``/``None`` (no-op), or a :class:`Telemetry`
    instance to install verbatim.
    """
    if isinstance(mode, Telemetry):
        telemetry = mode
    elif isinstance(mode, str):
        lowered = mode.strip().lower()
        if lowered in _ON_VALUES:
            telemetry = Telemetry.enabled_instance()
        elif lowered in _OFF_VALUES:
            telemetry = NULL_TELEMETRY
        else:
            raise TelemetryError(
                f"unknown telemetry mode {mode!r} "
                f"(expected json, prom, on, or off)"
            )
    elif mode:
        telemetry = Telemetry.enabled_instance()
    else:
        telemetry = NULL_TELEMETRY
    set_telemetry(telemetry)
    return telemetry


def resolve(mode: object = None) -> Telemetry:
    """Turn a mode flag into a :class:`Telemetry` *without* installing it.

    ``None`` resolves to the ambient default; other values follow
    :func:`configure`'s accepted forms.
    """
    if mode is None:
        return current_telemetry()
    if isinstance(mode, Telemetry):
        return mode
    if isinstance(mode, str):
        lowered = mode.strip().lower()
        if lowered in _ON_VALUES:
            return Telemetry.enabled_instance()
        if lowered in _OFF_VALUES:
            return NULL_TELEMETRY
        raise TelemetryError(
            f"unknown telemetry mode {mode!r} "
            f"(expected json, prom, on, or off)"
        )
    return Telemetry.enabled_instance() if mode else NULL_TELEMETRY


@contextlib.contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Temporarily install an ambient telemetry (restores on exit)."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
