"""Telemetry for the AL-VC control plane.

A dependency-free observability subsystem:

* :class:`MetricsRegistry` — counters, gauges, histograms with labeled
  series (:mod:`repro.observability.metrics`);
* :class:`Tracer` / :class:`Span` — nested timed stages
  (:mod:`repro.observability.tracing`);
* exporters — JSON snapshot and Prometheus text format
  (:mod:`repro.observability.export`);
* :class:`Telemetry` — the bundle instrumented components accept, plus
  the ambient default (:mod:`repro.observability.runtime`).

Instrumentation is **zero-cost when disabled**: the default ambient
telemetry is :data:`NULL_TELEMETRY`, whose registry and tracer hand out
preallocated no-op singletons, so hot paths bound to it allocate no
metric objects and never read the clock.  Enable per-stack with
``AlvcStack.build(..., telemetry="json")``, process-wide with
:func:`configure`, or from the environment with ``ALVC_TELEMETRY=on``.
"""

from repro.observability.export import (
    json_snapshot,
    prometheus_metrics_text,
    prometheus_text,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.observability.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    configure,
    current_telemetry,
    resolve,
    set_telemetry,
    use_telemetry,
)
from repro.observability.tracing import (
    NullTracer,
    Span,
    SpanStats,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "SpanStats",
    "Telemetry",
    "Tracer",
    "configure",
    "current_telemetry",
    "json_snapshot",
    "prometheus_metrics_text",
    "prometheus_text",
    "resolve",
    "set_telemetry",
    "use_telemetry",
]
