"""Metric instruments and their registry.

A dependency-free, Prometheus-shaped metrics model:

* a **counter** only goes up (events, items processed);
* a **gauge** tracks a current level (active slices, queue depth);
* a **histogram** accumulates observations into cumulative buckets
  (latencies, cover sizes).

Instruments are grouped into **families** (one metric name, one kind, one
help string) and keyed by their **label set**, so
``registry.counter("alvc_vnfs_deployed_total", domain="optical")`` and the
same name with ``domain="electronic"`` are two series of one family —
exactly the Prometheus data model, but in-process and allocation-light.

The registry hands back live instrument objects; hot paths fetch an
instrument once and call ``inc``/``observe`` on it, paying a single method
call per event.  For the zero-cost-when-disabled mode see
:class:`~repro.observability.metrics.NullMetricsRegistry`, whose
instruments are preallocated no-op singletons.
"""

from __future__ import annotations

import re
from typing import Iterator, Mapping

from repro.exceptions import TelemetryError

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds — tuned for sub-second control
#: plane latencies (seconds) but equally serviceable for small counts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counters only go up; got inc({amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute level."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current level."""
        return self._value


class Histogram:
    """Observations accumulated into cumulative buckets.

    ``bucket_counts[i]`` counts observations ``<= upper_bounds[i]``
    (cumulative, Prometheus-style); observations above the last bound
    only land in the implicit ``+Inf`` bucket (``count``).
    """

    __slots__ = ("upper_bounds", "bucket_counts", "_count", "_sum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram buckets must be non-empty and ascending: {buckets}"
            )
        self.upper_bounds = tuple(float(bound) for bound in buckets)
        self.bucket_counts = [0] * len(self.upper_bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        self._sum += value
        for index, bound in enumerate(self.upper_bounds):
            if value <= bound:
                for later in range(index, len(self.bucket_counts)):
                    self.bucket_counts[later] += 1
                return

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0


class _Family:
    """One metric name: its kind, help text, and labeled series."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.series: dict[LabelSet, object] = {}


class MetricsRegistry:
    """Creates, deduplicates, and snapshots metric instruments.

    Asking twice for the same (name, labels) returns the *same*
    instrument, so call sites never need to cache instruments for
    correctness — only for speed.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._instrument(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        return self._instrument(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        """The histogram series ``name{labels}`` (created on first use)."""

        def factory() -> Histogram:
            return Histogram(buckets or DEFAULT_BUCKETS)

        return self._instrument(name, "histogram", help, labels, factory)

    def _instrument(self, name, kind, help_text, labels, factory):
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise TelemetryError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        key = _label_key(labels)
        instrument = family.series.get(key)
        if instrument is None:
            instrument = factory()
            family.series[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Real registries record; the null registry reports False."""
        return True

    def series_count(self) -> int:
        """Number of labeled series across all families."""
        return sum(len(family.series) for family in self._families.values())

    def families(self) -> Iterator[_Family]:
        """All families, sorted by metric name."""
        for name in sorted(self._families):
            yield self._families[name]

    def value_of(self, name: str, **labels: object) -> float | None:
        """Value of a counter/gauge series, or None when absent.

        Histogram series return their observation count.
        """
        family = self._families.get(name)
        if family is None:
            return None
        instrument = family.series.get(_label_key(labels))
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value  # type: ignore[union-attr]

    def snapshot(self) -> dict:
        """A JSON-serializable view of every series.

        Shape::

            {name: {"kind": ..., "help": ...,
                    "series": [{"labels": {...}, ...values...}, ...]}}
        """
        out: dict = {}
        for family in self.families():
            series = []
            for key in sorted(family.series):
                instrument = family.series[key]
                entry: dict = {"labels": dict(key)}
                if isinstance(instrument, Histogram):
                    entry.update(
                        count=instrument.count,
                        sum=instrument.sum,
                        buckets=[
                            {"le": bound, "count": count}
                            for bound, count in zip(
                                instrument.upper_bounds,
                                instrument.bucket_counts,
                            )
                        ],
                    )
                else:
                    entry["value"] = instrument.value  # type: ignore[union-attr]
                series.append(entry)
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` (e.g. from a sweep worker) into this
        registry.

        Counters and gauges add their values; histograms add their
        per-bucket counts, observation counts, and sums.  Families and
        series absent here are created; merging a family whose kind (or
        a histogram whose bucket bounds) disagrees with an existing one
        raises :class:`TelemetryError`.  The parallel sweep runner uses
        this to roll per-worker telemetry up into the parent registry —
        summing is the only order-independent combination, so the rollup
        is deterministic regardless of worker count or completion order.
        """
        for name, family_data in snapshot.items():
            kind = family_data["kind"]
            help_text = family_data.get("help", "")
            for entry in family_data["series"]:
                labels = entry.get("labels", {})
                if kind == "counter":
                    self.counter(name, help_text, **labels).inc(
                        float(entry["value"])
                    )
                elif kind == "gauge":
                    self.gauge(name, help_text, **labels).inc(
                        float(entry["value"])
                    )
                elif kind == "histogram":
                    buckets = entry.get("buckets", [])
                    bounds = tuple(float(b["le"]) for b in buckets)
                    histogram = self.histogram(
                        name, help_text, buckets=bounds or None, **labels
                    )
                    if histogram.upper_bounds != bounds:
                        raise TelemetryError(
                            f"histogram {name!r} bucket bounds differ: "
                            f"{histogram.upper_bounds} vs {bounds}"
                        )
                    for index, bucket in enumerate(buckets):
                        histogram.bucket_counts[index] += int(bucket["count"])
                    histogram._count += int(entry["count"])
                    histogram._sum += float(entry["sum"])
                else:
                    raise TelemetryError(
                        f"cannot merge metric {name!r} of unknown kind "
                        f"{kind!r}"
                    )

    def reset(self) -> None:
        """Drop every family and series."""
        self._families.clear()


class NullCounter(Counter):
    """A counter that records nothing (shared singleton)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class NullGauge(Gauge):
    """A gauge that records nothing (shared singleton)."""

    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class NullHistogram(Histogram):
    """A histogram that records nothing (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(buckets=(1.0,))

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullMetricsRegistry(MetricsRegistry):
    """The zero-cost disabled registry.

    Every factory returns a preallocated no-op singleton: no families,
    no series, and no per-call allocations on instrumented paths.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    @property
    def enabled(self) -> bool:
        """Always False: nothing is recorded."""
        return False

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """No-op: the disabled registry swallows worker rollups too."""
