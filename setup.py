"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path when
no ``[build-system]`` table is present; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
