# Convenience targets for the AL-VC reproduction.

.PHONY: install test bench examples report all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

report:
	python -m repro.cli report REPORT.md

all: install test bench examples report
