"""E14 — full per-chain traffic cost (extension ablation).

Regenerates: the whole-cost view of Section IV.D — conversion cost,
NF processing cost and transport energy for the same flow population
through an O/E/O-optimized chain vs an all-electronic one.  Expected
shape: processing cost ties (same functions), conversion cost and energy
are strictly lower under the optimized placement.
"""

from repro.analysis.experiments import experiment_e14_chain_traffic
from repro.analysis.reporting import render_table


def test_bench_e14_chain_traffic(benchmark):
    rows = benchmark.pedantic(
        experiment_e14_chain_traffic,
        kwargs={"n_flows": 150, "seed": 0},
        rounds=3,
        iterations=1,
    )
    print()
    print(
        render_table(
            rows, title="E14 — per-chain flow cost by placement policy"
        )
    )

    by_placement = {row["placement"]: row for row in rows}
    optical = by_placement["greedy-optical"]
    electronic = by_placement["all-electronic"]
    assert optical["conversion_cost"] < electronic["conversion_cost"]
    assert optical["energy_joules"] < electronic["energy_joules"]
    assert optical["processing_cost"] == electronic["processing_cost"]
    assert optical["conversions_per_flow"] < (
        electronic["conversions_per_flow"]
    )
