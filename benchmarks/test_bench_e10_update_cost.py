"""E10 — network-update cost under churn (claim inherited from [14]).

Regenerates: switches touched per VM arrival/departure/migration, AL-VC
vs a flat SDN fabric.  Expected shape: AL-VC touches roughly the
affected ToRs plus a handful of AL switches; the flat fabric touches the
whole optical core — a large constant-factor reduction.
"""

from repro.analysis.experiments import experiment_e10_update_cost
from repro.analysis.reporting import render_table


def test_bench_e10_update_cost(benchmark):
    rows = benchmark.pedantic(
        experiment_e10_update_cost,
        kwargs={"n_events": 60, "seed": 0},
        rounds=3,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E10 — switches touched per churn event"))

    total = next(row for row in rows if row["event_kind"] == "ALL")
    assert total["mean_alvc_touched"] < total["mean_flat_touched"]
    # The reduction is substantial (paper claim: low update costs).
    assert total["reduction"] > 0.5
    for row in rows:
        assert row["mean_alvc_touched"] <= row["mean_flat_touched"]
