"""E22 — routing throughput (CSR path engine vs networkx traversal).

Regenerates: the engineering claim behind this repo's routing rework —
the CSR-based :class:`repro.sdn.path_engine.PathEngine` answers cold
AL-restricted shortest-path queries at least 5x faster than the
per-query ``networkx`` path on a 1024-server fabric, the RouteCache on
top of it multiplies that further, and every arm folds the exact same
CRC32 checksum over its answers (paths *and* error messages), proving
the engines are bit-identical.

The run writes a machine-readable record (``BENCH_e22.json`` in the
working directory, or ``$ALVC_BENCH_E22_OUT``) that
``benchmarks/compare_routing.py`` diffs against the committed
``benchmarks/BENCH_e22.json`` to gate routing regressions in CI.
"""

import json
import os
import time

from repro.analysis.experiments import experiment_e22_routing_throughput
from repro.analysis.reporting import render_table
from repro.sdn.routing import RouteCandidates, pick_least_loaded
from repro.topology.generators import build_alvc_fabric

#: Gate A: cold AL-restricted CSR routing at least this much faster.
MIN_CSR_SPEEDUP = 5.0

#: Gate B: RouteCache on top of the CSR engine at least this much faster.
MIN_CACHED_SPEEDUP = 8.0

#: Gate C (satellite): scoring a RouteCandidates (precomputed link keys)
#: must beat re-deriving frozenset link keys per call on plain tuples.
MIN_CANDIDATES_SPEEDUP = 1.3


def _pick_least_loaded_microbench() -> dict:
    """Time pick_least_loaded on RouteCandidates vs plain path tuples."""
    fabric = build_alvc_fabric(n_racks=8, servers_per_rack=4, n_ops=8)
    from repro.sdn.routing import k_shortest_paths

    servers = fabric.servers()
    paths = k_shortest_paths(fabric, servers[0], servers[-1], k=8)
    candidates = RouteCandidates(paths)
    plain = tuple(tuple(path) for path in paths)
    loads = {}
    for path in plain:
        for a, b in zip(path, path[1:]):
            loads[frozenset((a, b))] = float(len(a) + len(b))

    repeats = 2000

    def timed(cand) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(repeats):
                pick_least_loaded(cand, loads)
            best = min(best, time.perf_counter() - start)
        return best

    plain_wall = timed(plain)
    candidates_wall = timed(candidates)
    assert pick_least_loaded(candidates, loads) == pick_least_loaded(
        plain, loads
    )
    return {
        "plain_wall_seconds": plain_wall,
        "candidates_wall_seconds": candidates_wall,
        "speedup": plain_wall / candidates_wall,
    }


def test_bench_e22_routing(benchmark):
    rows = benchmark.pedantic(
        experiment_e22_routing_throughput,
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E22 — routing throughput by arm"))

    by_arm = {row["arm"]: row for row in rows}
    nx_row = by_arm["nx"]
    csr = by_arm["csr"]
    cached = by_arm["csr+cache"]
    batch = by_arm["csr-batch"]

    # Bit-parity: every arm folded the same answers (paths and error
    # messages alike) into its checksum as its own reference pass.
    assert all(row["parity"] for row in rows), (
        "engine parity broken: "
        + ", ".join(
            f"{row['arm']}={row['parity']}" for row in rows
        )
    )
    assert nx_row["checksum"] == csr["checksum"] == cached["checksum"]

    # Gate A: the CSR engine on cold AL-restricted queries.
    assert csr["speedup"] >= MIN_CSR_SPEEDUP, (
        f"csr arm is only {csr['speedup']:.2f}x the nx arm's "
        f"paths/sec (target {MIN_CSR_SPEEDUP}x)"
    )

    # Gate B: RouteCache over the CSR engine on the repeat-heavy pool.
    assert cached["speedup"] >= MIN_CACHED_SPEEDUP, (
        f"csr+cache arm is only {cached['speedup']:.2f}x the nx arm's "
        f"paths/sec (target {MIN_CACHED_SPEEDUP}x)"
    )
    assert cached["cache_hit_rate"] > 0.3

    # Gate C (satellite): RouteCandidates precomputed link keys.
    micro = _pick_least_loaded_microbench()
    assert micro["speedup"] >= MIN_CANDIDATES_SPEEDUP, (
        f"RouteCandidates scoring is only {micro['speedup']:.2f}x the "
        f"plain-tuple path (target {MIN_CANDIDATES_SPEEDUP}x)"
    )

    out_path = os.environ.get("ALVC_BENCH_E22_OUT", "BENCH_e22.json")
    with open(out_path, "w") as handle:
        json.dump(
            {
                "experiment": "e22_routing_throughput",
                "rows": rows,
                "paths_per_sec": {
                    row["arm"]: row["paths_per_sec"] for row in rows
                },
                "csr_speedup": csr["speedup"],
                "cached_speedup": cached["speedup"],
                "batch_speedup": batch["speedup"],
                "candidates_speedup": micro["speedup"],
                "parity": all(row["parity"] for row in rows),
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
