#!/usr/bin/env python3
"""Compare two E24 exact-baseline records and enforce the gates.

Usage::

    python benchmarks/compare_opt.py \
        benchmarks/BENCH_e24.json BENCH_e24.json \
        [--gap-slack 0.0] [--node-budget 2000] [--max-node-growth 0.5]

Both files are the JSON written by ``benchmarks/test_bench_e24_opt.py``.
Three gates, all of which must hold for a zero exit status:

* the candidate's **certification** flag — branch-and-bound closed
  every instance (a gap against an uncertified incumbent is not a
  gap);
* the candidate's **per-problem gap curves** (worst relative greedy
  gap for the AL cover and the placement MILP) have not widened past
  the committed baseline by more than ``--gap-slack`` — a widening gap
  means a greedy regression;
* the candidate's **branch-and-bound node counts** stay within the
  per-instance budget and within ``--max-node-growth`` of the
  committed total — the perf canary for the pure-python solver.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_e24.json")
    parser.add_argument("candidate", help="freshly measured BENCH_e24.json")
    parser.add_argument(
        "--gap-slack",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help=(
            "allowed widening of each problem's worst gap vs the "
            "committed baseline (default 0.0 — the sweep is seeded, so "
            "gaps are deterministic)"
        ),
    )
    parser.add_argument(
        "--node-budget",
        type=int,
        default=2000,
        metavar="N",
        help="per-instance branch-and-bound node ceiling (default 2000)",
    )
    parser.add_argument(
        "--max-node-growth",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help=(
            "allowed relative growth of the total node count vs the "
            "committed baseline (default 0.5)"
        ),
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)

    for label, record in (("baseline", baseline), ("candidate", candidate)):
        gaps = ", ".join(
            f"{problem}={gap:.3f}"
            for problem, gap in sorted(record["max_gap"].items())
        )
        print(
            f"{label}: worst gaps {gaps}, "
            f"{record['total_bnb_nodes']} B&B nodes, "
            f"certified={record['proven_optimal']}"
        )

    passed = True
    if not candidate.get("proven_optimal", False):
        print(
            "FAIL: candidate has uncertified instances — the gap curve "
            "is meaningless without a closed bound",
            file=sys.stderr,
        )
        passed = False

    for problem, before in sorted(baseline["max_gap"].items()):
        after = candidate["max_gap"].get(problem)
        if after is None:
            print(f"FAIL: candidate lost problem {problem!r}", file=sys.stderr)
            passed = False
            continue
        ok = after <= before + args.gap_slack
        status = "ok" if ok else "FAIL"
        print(
            f"{status}: {problem} worst gap {before:.3f} -> {after:.3f} "
            f"(slack {args.gap_slack:.3f})"
        )
        passed = passed and ok

    worst = max(row["bnb_nodes"] for row in candidate["rows"])
    ok = worst <= args.node_budget
    print(
        f"{'ok' if ok else 'FAIL'}: worst instance used {worst} B&B "
        f"nodes (budget {args.node_budget})"
    )
    passed = passed and ok

    before_nodes = baseline["total_bnb_nodes"]
    after_nodes = candidate["total_bnb_nodes"]
    if before_nodes > 0:
        growth = (after_nodes - before_nodes) / before_nodes
        ok = growth <= args.max_node_growth
        print(
            f"{'ok' if ok else 'FAIL'}: total nodes {before_nodes} -> "
            f"{after_nodes} ({growth:+.1%} vs limit "
            f"+{args.max_node_growth:.1%})"
        )
        passed = passed and ok

    if passed:
        print("all exact-baseline gates passed")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
