#!/usr/bin/env python3
"""Collate committed ``BENCH_*.json`` records into a perf trajectory.

Every tentpole PR that touches a committed benchmark record leaves a
point in git history.  This tool walks that history and writes
``benchmarks/TRAJECTORY.json``::

    {
      "e26_dataplane_throughput": {
        "speedups.vector_over_incremental": {
          "series": [{"commit": "...", "subject": "...", "value": 3.12}],
          "floor": 2.34
        },
        ...
      }
    }

one series per scalar metric (dotted path into the record; the bulky
``rows`` / ``config`` subtrees are skipped), oldest commit first, with
the working-tree value appended last under commit ``WORKTREE`` when it
differs from HEAD.

**Floors** are recorded for ratio metrics only (paths containing
``speedup``) — raw events/sec and ops/sec are machine-dependent, while
speedup ratios of arms measured back-to-back on the same machine are
comparable across PRs.  A floor is ``RATCHET_FRACTION`` of the best
value ever committed, and only ever ratchets upward: once a record
demonstrates a ratio, later PRs may not quietly regress it by more
than the slack.  ``check`` mode re-reads the committed trajectory,
compares the current records against those floors, and exits non-zero
on any violation — that is the CI step::

    python benchmarks/trajectory.py check     # gate (CI)
    python benchmarks/trajectory.py collect   # rewrite TRAJECTORY.json

Absolute tentpole floors (vector ≥10x legacy etc.) stay in the
``compare_*.py`` gates; this file guards the *trajectory* — no silent
erosion of any previously committed speedup.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
TRAJECTORY_PATH = BENCH_DIR / "TRAJECTORY.json"

#: Subtrees that hold raw rows / sizing, not headline metrics.
SKIP_KEYS = frozenset({"rows", "config"})

#: A gated metric keeps at least this fraction of its best-ever value.
#: Deliberately loose: the arms of a committed record run minutes apart
#: on a shared machine, so a ratio like sharded-over-legacy can swing
#: tens of percent with background load alone.  This gate exists to
#: catch silent order-of-magnitude erosion (a committed 23x quietly
#: becoming 8x), not to re-litigate run-to-run noise — the tight
#: absolute floors live in the ``compare_*.py`` gates.
RATCHET_FRACTION = 0.5


def _git(*argv: str) -> str:
    return subprocess.run(
        ["git", "-C", str(REPO_ROOT), *argv],
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def flatten_metrics(record: dict, prefix: str = "") -> dict[str, float]:
    """Scalar numeric leaves of *record* as ``dotted.path -> value``."""
    out: dict[str, float] = {}
    for key, value in record.items():
        if key in SKIP_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, dict):
            out.update(flatten_metrics(value, f"{path}."))
    return out


def is_gated(metric: str) -> bool:
    """Ratio metrics ratchet; absolute rates are machine-dependent."""
    return "speedup" in metric


def _history(path: pathlib.Path) -> list[dict]:
    """Oldest-first ``{commit, subject, record}`` for a committed file."""
    rel = path.relative_to(REPO_ROOT).as_posix()
    log = _git(
        "log", "--follow", "--reverse", "--format=%H\x1f%s", "--", rel
    )
    points = []
    for line in filter(None, log.splitlines()):
        commit, _, subject = line.partition("\x1f")
        try:
            blob = _git("show", f"{commit}:{rel}")
        except subprocess.CalledProcessError:
            continue  # renamed or absent at that commit
        try:
            record = json.loads(blob)
        except json.JSONDecodeError:
            continue
        points.append(
            {"commit": commit[:12], "subject": subject, "record": record}
        )
    return points


def collect() -> dict:
    """Build the trajectory mapping from git history + working tree."""
    previous: dict = {}
    if TRAJECTORY_PATH.exists():
        with open(TRAJECTORY_PATH) as handle:
            previous = json.load(handle)

    trajectory: dict = {}
    for path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        points = _history(path)
        with open(path) as handle:
            current = json.load(handle)
        if not points or points[-1]["record"] != current:
            points.append(
                {
                    "commit": "WORKTREE",
                    "subject": "(uncommitted)",
                    "record": current,
                }
            )
        experiment = current.get("experiment", path.stem.lower())
        series_by_metric: dict[str, list] = {}
        for point in points:
            for metric, value in flatten_metrics(point["record"]).items():
                series_by_metric.setdefault(metric, []).append(
                    {
                        "commit": point["commit"],
                        "subject": point["subject"],
                        "value": value,
                    }
                )
        entry: dict = {}
        for metric, series in sorted(series_by_metric.items()):
            record: dict = {"series": series}
            if is_gated(metric):
                best = max(item["value"] for item in series)
                floor = RATCHET_FRACTION * best
                old = (
                    previous.get(experiment, {})
                    .get(metric, {})
                    .get("floor")
                )
                if old is not None:
                    floor = max(floor, old)  # ratchet, never loosen
                record["floor"] = round(floor, 6)
            entry[metric] = record
        trajectory[experiment] = entry
    return trajectory


def check() -> list[str]:
    """Current records vs the committed trajectory floors."""
    if not TRAJECTORY_PATH.exists():
        return [f"{TRAJECTORY_PATH.name} missing — run `trajectory.py collect`"]
    with open(TRAJECTORY_PATH) as handle:
        trajectory = json.load(handle)

    failures = []
    for path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        with open(path) as handle:
            current = json.load(handle)
        experiment = current.get("experiment", path.stem.lower())
        floors = trajectory.get(experiment, {})
        metrics = flatten_metrics(current)
        for metric, entry in floors.items():
            floor = entry.get("floor")
            if floor is None:
                continue
            value = metrics.get(metric)
            if value is None:
                failures.append(
                    f"{experiment}: gated metric {metric} vanished "
                    f"from {path.name}"
                )
            elif value < floor:
                failures.append(
                    f"{experiment}: {metric} = {value:.3f} fell below "
                    f"the recorded floor {floor:.3f} "
                    f"({RATCHET_FRACTION:.0%} of best-ever)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "mode",
        choices=("collect", "check"),
        help="collect: rewrite TRAJECTORY.json; check: gate against it",
    )
    args = parser.parse_args(argv)

    if args.mode == "collect":
        trajectory = collect()
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
            handle.write("\n")
        gated = sum(
            1
            for metrics in trajectory.values()
            for entry in metrics.values()
            if "floor" in entry
        )
        print(
            f"wrote {TRAJECTORY_PATH.name}: {len(trajectory)} experiments, "
            f"{gated} gated metrics"
        )
        return 0

    failures = check()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("trajectory ok: no gated metric below its recorded floor")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
