"""E5 / Fig. 5 — three NFCs, each following its own path.

Regenerates: the blue/black/green chains of Fig. 5, each orchestrated on
its own cluster/slice.  Expected shape: every chain routes successfully,
visits its functions in order, and stays inside its own abstraction
layer (isolation verified).
"""

from repro.analysis.experiments import experiment_fig5_nfc_paths
from repro.analysis.reporting import render_table


def test_bench_fig5_nfc_paths(benchmark):
    rows = benchmark.pedantic(
        experiment_fig5_nfc_paths, rounds=3, iterations=1
    )
    print()
    print(render_table(rows, title="Fig. 5 — per-chain paths"))

    assert [row["chain"] for row in rows] == ["blue", "black", "green"]
    for row in rows:
        assert row["path_len"] >= 1
        assert row["al_size"] >= 1
        assert row["conversions"] >= 0
    # The longer green chain (4 functions) never has a shorter path than
    # the two-function black chain on the same testbed.
    by_chain = {row["chain"]: row for row in rows}
    assert by_chain["green"]["path_len"] >= by_chain["black"]["path_len"]
