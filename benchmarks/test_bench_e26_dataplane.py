"""E26 — vectorized data-plane throughput (struct-of-arrays fair share).

Regenerates: the engineering claim behind this repo's vectorized data
plane — the struct-of-arrays ``FlowTable`` + ``VectorFairShareEngine``
water-filling kernel computes **bit-identical** max-min rates to the
dict engines while scaling to concurrency regimes the per-object loop
cannot reach, and the AL-sharded fan-out
(:func:`repro.sim.sharding.simulate_sharded`) merges worker reports
bit-identically at any worker count.

The run here is CI-sized (no ``legacy`` arm — its full-scale wall time
is measured once into the committed record — and a 100k-flow soak
instead of the 1M-flow one).  The committed ``benchmarks/BENCH_e26.json``
is the **full-scale** record: 8000 flows on the 1024-server fabric with
all three single-process arms plus the sharded arm and the 1M-flow
soak; ``benchmarks/compare_dataplane.py`` gates both records — checksum
parity and worker determinism must hold everywhere, the committed
record must keep the tentpole floors (vector ≥10x legacy, ≥2.5x
incremental), and the CI record must clear a scaled speedup floor.

The run writes a machine-readable record (``BENCH_e26.json`` in the
working directory, or ``$ALVC_BENCH_E26_OUT``) for that gate.
"""

import json
import os

from repro.analysis.experiments import experiment_e26_dataplane_throughput
from repro.analysis.reporting import render_table

#: CI sizing: mid concurrency, no legacy arm, 100k-flow soak.
CI_CONFIG = dict(
    n_flows=4000,
    arrival_rate=4000.0,
    soak_flows=100_000,
    soak_epochs=12,
    seed=0,
    workers=4,
    arms=("incremental", "vector", "vector-batched"),
)

#: Vector-over-incremental floor at CI concurrency (full scale: 2.5x).
MIN_CI_VECTOR_SPEEDUP = 1.2

#: Batched-admission-over-per-event floor at CI concurrency (full
#: scale: 2.0x — see ``benchmarks/compare_dataplane.py``).
MIN_CI_BATCHED_SPEEDUP = 1.3

#: Soak memory envelope (resident set per worker process, MB).
MAX_SOAK_WORKER_RSS_MB = 4096.0


def build_record(rows: list[dict], config: dict) -> dict:
    """The BENCH_e26 JSON schema, shared by CI and full-scale runs."""
    by_arm = {row["arm"]: row for row in rows}
    rates = {
        arm: row["events_per_sec"]
        for arm, row in by_arm.items()
        if arm != "soak"
    }
    checksums = {
        arm: row["checksum"]
        for arm, row in by_arm.items()
        if arm != "soak" and row.get("checksum") is not None
    }

    def _ratio(numerator: str, denominator: str) -> float | None:
        if numerator in rates and rates.get(denominator):
            return rates[numerator] / rates[denominator]
        return None

    return {
        "experiment": "e26_dataplane_throughput",
        "config": dict(config),
        "rows": rows,
        "events_per_sec": rates,
        "speedups": {
            "vector_over_legacy": _ratio("vector", "legacy"),
            "vector_over_incremental": _ratio("vector", "incremental"),
            "sharded_over_legacy": _ratio("vector-sharded", "legacy"),
            "batched_over_vector": _ratio("vector-batched", "vector"),
        },
        "checksum_parity": len(set(checksums.values())) == 1,
        "worker_parity": bool(
            by_arm["vector-sharded"].get("deterministic", False)
        ),
        "soak": by_arm.get("soak"),
    }


def test_bench_e26_dataplane(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_e26_dataplane_throughput(**CI_CONFIG),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E26 — vectorized data-plane throughput"))

    record = build_record(rows, CI_CONFIG)
    by_arm = {row["arm"]: row for row in rows}

    # Gate A: the vector engine (and its sharded fan-out) reproduced
    # the incremental engine's rate trace bit-for-bit — identical CRC32
    # checksums over every completion time and busy-link accumulator.
    assert record["checksum_parity"], (
        f"rate-trace checksums diverged: "
        f"{[(row['arm'], row.get('checksum')) for row in rows]}"
    )

    # Gate B: the shard merge is deterministic — workers=4 and
    # workers=1 produced bit-identical reports.
    assert record["worker_parity"]

    # Gate C: the perf claim at CI concurrency (the committed
    # full-scale record carries the 10x/2.5x tentpole floors).
    speedup = record["speedups"]["vector_over_incremental"]
    assert speedup is not None and speedup >= MIN_CI_VECTOR_SPEEDUP, (
        f"vector engine is only {speedup:.2f}x the incremental engine "
        f"(CI floor {MIN_CI_VECTOR_SPEEDUP}x)"
    )

    # Gate C2: the batched admission pipeline over the per-event vector
    # arm (same engine, different admission mode; full scale holds 2x).
    batched = record["speedups"]["batched_over_vector"]
    assert batched is not None and batched >= MIN_CI_BATCHED_SPEEDUP, (
        f"batched admission is only {batched:.2f}x the per-event vector "
        f"arm (CI floor {MIN_CI_BATCHED_SPEEDUP}x)"
    )

    # Gate D: the concurrency soak completed inside the memory
    # envelope with (almost) every flow still in flight — co-located
    # VM pairs complete instantly, everything else stays concurrent.
    soak = by_arm["soak"]
    assert soak["in_flight"] >= 0.95 * soak["flows"]
    assert soak["rss_worker_mb"] <= MAX_SOAK_WORKER_RSS_MB

    out_path = os.environ.get("ALVC_BENCH_E26_OUT", "BENCH_e26.json")
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
