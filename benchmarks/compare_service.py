#!/usr/bin/env python3
"""Compare two E23 durable-service records and enforce the gates.

Usage::

    python benchmarks/compare_service.py \
        benchmarks/BENCH_e23.json BENCH_e23.json \
        [--max-regression 0.25] [--min-batched-speedup 2.0] \
        [--min-restore-speedup 2.0] [--min-restore-ops 200]

Both files are the JSON written by
``benchmarks/test_bench_e23_service.py``.  Four gates, all of which
must hold for a zero exit status:

* the candidate's **parity** flag — every arm (serial, batched, and
  both restore paths) landed in the bit-identical control-plane state;
* the candidate's **batched speedup** (batched ops/sec over the serial
  fsync-per-op arm, measured in the same run, so stable across
  machines) clears the absolute floor *and* has not regressed by more
  than ``--max-regression`` against the committed baseline;
* likewise the **restore speedup** (snapshot-restore wall clock over
  full-replay wall clock);
* the **restore throughput** (commands recovered per second by full
  journal replay) clears its absolute floor and regression bound.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _gate(
    name: str,
    before: float,
    after: float,
    floor: float,
    max_regression: float,
    unit: str = "x",
) -> bool:
    """Print one gate's verdict; returns True when it passes."""
    if before <= 0:
        print(f"FAIL: baseline {name} is not positive", file=sys.stderr)
        return False
    regression = (before - after) / before
    ok = after >= floor and regression <= max_regression
    status = "ok" if ok else "FAIL"
    print(
        f"{status}: {name} {before:.2f}{unit} -> {after:.2f}{unit} "
        f"({-regression:+.1%} vs limit -{max_regression:.1%}, "
        f"floor {floor:.2f}{unit})"
    )
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_e23.json")
    parser.add_argument("candidate", help="freshly measured BENCH_e23.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help=(
            "allowed relative drop vs baseline (default 0.25 — "
            "arm-ratio variance on shared runners is larger than a "
            "single-engine ratio; the absolute floors are the primary "
            "gate)"
        ),
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=2.0,
        metavar="X",
        help="absolute floor for batched vs serial ops/sec (default 2.0)",
    )
    parser.add_argument(
        "--min-restore-speedup",
        type=float,
        default=2.0,
        metavar="X",
        help="absolute floor for snapshot vs replay wall (default 2.0)",
    )
    parser.add_argument(
        "--min-restore-ops",
        type=float,
        default=200.0,
        metavar="N",
        help="absolute floor for replay commands/sec (default 200)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)

    for label, record in (("baseline", baseline), ("candidate", candidate)):
        rates = record.get("ops_per_sec", {})
        formatted = ", ".join(
            f"{arm}={rate:,.0f}/s" for arm, rate in sorted(rates.items())
        )
        print(
            f"{label}: batched {record['batched_speedup']:.2f}x, "
            f"restore {record['restore_speedup']:.2f}x ({formatted})"
        )

    passed = True
    if not candidate.get("parity", False):
        print(
            "FAIL: candidate arms are not bit-identical — batching or "
            "recovery changed the control-plane state",
            file=sys.stderr,
        )
        passed = False
    else:
        print("ok: all four arms landed in the bit-identical state")
    passed &= _gate(
        "batched speedup",
        float(baseline["batched_speedup"]),
        float(candidate["batched_speedup"]),
        args.min_batched_speedup,
        args.max_regression,
    )
    passed &= _gate(
        "restore speedup",
        float(baseline["restore_speedup"]),
        float(candidate["restore_speedup"]),
        args.min_restore_speedup,
        args.max_regression,
    )
    passed &= _gate(
        "restore throughput",
        float(baseline["restore_ops_per_sec"]),
        float(candidate["restore_ops_per_sec"]),
        args.min_restore_ops,
        args.max_regression,
        unit=" ops/s",
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
