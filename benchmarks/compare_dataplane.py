#!/usr/bin/env python3
"""Gate two E26 data-plane records: parity flags + speedup floors.

Usage::

    python benchmarks/compare_dataplane.py \
        benchmarks/BENCH_e26.json BENCH_e26.json \
        [--max-regression 0.10] [--min-speedup 1.2]

Both files are the JSON written by
``benchmarks/test_bench_e26_dataplane.py`` (the CI-sized run) or the
full-scale generator behind the committed record.  Three gates:

1. **Parity is non-negotiable in either record**: every arm's CRC32
   rate-trace checksum must match (``checksum_parity``) and the
   AL-sharded fan-out must be worker-count invariant
   (``worker_parity``).  A perf win that changes results is a bug.
2. **The committed baseline keeps the tentpole floors** whenever it
   carries a ``legacy`` arm: vector ≥ 10x the legacy loop and ≥ 2.5x
   the incremental engine at full scale; and whenever it carries a
   ``vector-batched`` arm, batched admission ≥ 2x the per-event vector
   arm (ISSUE 10 acceptance).
3. **The candidate clears a speedup bar**: when its config matches the
   baseline's, its vector-over-incremental speedup may regress at most
   ``--max-regression`` (relative); otherwise (CI-sized run vs the
   full-scale record) it must clear the absolute ``--min-speedup``
   floor.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Full-scale tentpole floors (ISSUE 9 acceptance).
MIN_VECTOR_OVER_LEGACY = 10.0
MIN_VECTOR_OVER_INCREMENTAL = 2.5

#: Batched-admission tentpole floor (ISSUE 10 acceptance): the batched
#: pipeline must hold ≥2x over the per-event vector arm wherever the
#: committed record carries both arms.
MIN_BATCHED_OVER_VECTOR = 2.0


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _check_parity(label: str, record: dict, failures: list[str]) -> None:
    if not record.get("checksum_parity"):
        failures.append(f"{label}: rate-trace checksums diverge across arms")
    if not record.get("worker_parity"):
        failures.append(f"{label}: sharded run is not worker-count invariant")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_e26.json")
    parser.add_argument("candidate", help="freshly measured BENCH_e26.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="allowed relative vector-speedup drop when configs match "
        "(default 0.10)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        metavar="RATIO",
        help="absolute vector-over-incremental floor when configs differ "
        "(default 1.2)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)
    failures: list[str] = []

    for label, record in (("baseline", baseline), ("candidate", candidate)):
        rates = record.get("events_per_sec", {})
        formatted = ", ".join(
            f"{arm}={rate:,.0f} ev/s" for arm, rate in sorted(rates.items())
        )
        speedups = record.get("speedups", {})
        vector = speedups.get("vector_over_incremental")
        print(
            f"{label}: vector/incremental "
            f"{'n/a' if vector is None else f'{vector:.2f}x'} ({formatted})"
        )
        _check_parity(label, record, failures)

    # Gate 2: tentpole floors on the committed full-scale record.
    base_speedups = baseline.get("speedups", {})
    over_legacy = base_speedups.get("vector_over_legacy")
    if over_legacy is not None and over_legacy < MIN_VECTOR_OVER_LEGACY:
        failures.append(
            f"baseline: vector is only {over_legacy:.2f}x the legacy loop "
            f"(floor {MIN_VECTOR_OVER_LEGACY}x)"
        )
    over_incremental = base_speedups.get("vector_over_incremental")
    if over_incremental is None:
        failures.append("baseline: missing vector_over_incremental speedup")
    elif (
        over_legacy is not None
        and over_incremental < MIN_VECTOR_OVER_INCREMENTAL
    ):
        # Full-scale record (it carries a legacy arm): hold the 2.5x bar.
        failures.append(
            f"baseline: vector is only {over_incremental:.2f}x the "
            f"incremental engine (floor {MIN_VECTOR_OVER_INCREMENTAL}x)"
        )

    over_vector = base_speedups.get("batched_over_vector")
    if over_vector is not None and over_vector < MIN_BATCHED_OVER_VECTOR:
        failures.append(
            f"baseline: batched admission is only {over_vector:.2f}x the "
            f"per-event vector arm (floor {MIN_BATCHED_OVER_VECTOR}x)"
        )

    # Gate 3: candidate speedup bar.
    after = candidate.get("speedups", {}).get("vector_over_incremental")
    if after is None:
        failures.append("candidate: missing vector_over_incremental speedup")
    elif candidate.get("config") == baseline.get("config"):
        before = over_incremental or 0.0
        if before <= 0:
            failures.append("baseline speedup is not positive")
        else:
            regression = (before - after) / before
            status = "FAIL" if regression > args.max_regression else "ok"
            print(
                f"{status}: speedup {before:.2f}x -> {after:.2f}x "
                f"({-regression:+.1%} vs limit -{args.max_regression:.1%})"
            )
            if regression > args.max_regression:
                failures.append(
                    f"candidate: speedup regressed {regression:.1%} "
                    f"(limit {args.max_regression:.1%})"
                )
    elif after < args.min_speedup:
        failures.append(
            f"candidate: vector is only {after:.2f}x the incremental "
            f"engine (floor {args.min_speedup}x at candidate sizing)"
        )
    else:
        print(
            f"ok: candidate speedup {after:.2f}x clears the "
            f"{args.min_speedup}x floor (configs differ; no regression gate)"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
