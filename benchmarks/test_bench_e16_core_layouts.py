"""E16 — optical-core layout comparison (ref [29] ablation).

Regenerates: the topology-metrics comparison of the OPS-core layouts the
paper's reference [29] proposes (isolated core vs ring vs full mesh vs
hypercube), at fixed rack/server/switch counts.  Expected shape: richer
interconnects buy a smaller diameter at the price of more links;
oversubscription at the ToR tier is layout-independent.
"""

from repro.analysis.reporting import render_table
from repro.analysis.topology_metrics import core_layout_comparison

LAYOUTS = ("none", "ring", "full_mesh", "hypercube")


def test_bench_e16_core_layouts(benchmark):
    rows = benchmark.pedantic(
        core_layout_comparison,
        kwargs={
            "layouts": LAYOUTS,
            "n_racks": 8,
            "servers_per_rack": 4,
            "n_ops": 8,
            "seed": 0,
        },
        rounds=3,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E16 — optical-core layout metrics"))

    by_layout = {row["core_layout"]: row for row in rows}
    # Richer cores never lengthen the diameter...
    assert by_layout["full_mesh"]["diameter"] <= by_layout["none"]["diameter"]
    assert by_layout["hypercube"]["diameter"] <= by_layout["none"]["diameter"]
    # ...and cost links.
    assert by_layout["full_mesh"]["links"] >= by_layout["hypercube"]["links"]
    assert by_layout["hypercube"]["links"] >= by_layout["none"]["links"]
    # ToR oversubscription is a rack property, not a core property.
    ratios = {row["mean_tor_oversubscription"] for row in rows}
    assert len(ratios) == 1
