#!/usr/bin/env python3
"""Compare two E21 control-plane records and enforce the speedup gates.

Usage::

    python benchmarks/compare_control_plane.py \
        benchmarks/BENCH_e21.json BENCH_e21.json \
        [--max-regression 0.10] [--min-kernel-speedup 2.0] \
        [--min-sweep-speedup 2.0]

Both files are the JSON written by
``benchmarks/test_bench_e21_control_plane.py``.  Three gates, all of
which must hold for a zero exit status:

* the candidate's **checksums match** across its three arms — the
  parallel sweep merge produced bit-identical abstraction layers to the
  serial arms;
* the candidate's **kernel speedup** (bitset constructions/sec over the
  serial-set arm, measured in the same run, so stable across machines)
  clears the absolute floor *and* has not regressed by more than
  ``--max-regression`` against the committed baseline;
* likewise the **sweep speedup** (parallel-arm wall clock over the
  bitset arm's).
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _gate(
    name: str,
    before: float,
    after: float,
    floor: float,
    max_regression: float,
) -> bool:
    """Print one gate's verdict; returns True when it passes."""
    if before <= 0:
        print(f"FAIL: baseline {name} is not positive", file=sys.stderr)
        return False
    regression = (before - after) / before
    ok = after >= floor and regression <= max_regression
    status = "ok" if ok else "FAIL"
    print(
        f"{status}: {name} {before:.2f}x -> {after:.2f}x "
        f"({-regression:+.1%} vs limit -{max_regression:.1%}, "
        f"floor {floor:.2f}x)"
    )
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_e21.json")
    parser.add_argument("candidate", help="freshly measured BENCH_e21.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help=(
            "allowed relative speedup drop vs baseline (default 0.25 — "
            "arm-ratio variance on shared runners is larger than E19's "
            "single-engine ratio; the absolute floors are the primary "
            "gate)"
        ),
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=2.0,
        metavar="X",
        help="absolute floor for bitset vs serial-set (default 2.0)",
    )
    parser.add_argument(
        "--min-sweep-speedup",
        type=float,
        default=2.0,
        metavar="X",
        help="absolute floor for parallel vs bitset wall (default 2.0)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)

    for label, record in (("baseline", baseline), ("candidate", candidate)):
        rates = record.get("constructions_per_sec", {})
        formatted = ", ".join(
            f"{arm}={rate:,.0f}/s" for arm, rate in sorted(rates.items())
        )
        print(
            f"{label}: kernel {record['kernel_speedup']:.2f}x, "
            f"sweep {record['sweep_speedup']:.2f}x ({formatted})"
        )

    passed = True
    if not candidate.get("checksums_match", False):
        print(
            "FAIL: candidate arm checksums differ — the parallel sweep "
            "did not reproduce the serial arms' layers",
            file=sys.stderr,
        )
        passed = False
    else:
        print("ok: all three arms produced identical layer checksums")
    passed &= _gate(
        "kernel speedup",
        float(baseline["kernel_speedup"]),
        float(candidate["kernel_speedup"]),
        args.min_kernel_speedup,
        args.max_regression,
    )
    passed &= _gate(
        "sweep speedup",
        float(baseline["sweep_speedup"]),
        float(candidate["sweep_speedup"]),
        args.min_sweep_speedup,
        args.max_regression,
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
