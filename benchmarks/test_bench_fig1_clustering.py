"""E1 / Fig. 1 — service-based virtual clustering vs a flat DCN.

Regenerates: the cluster census of Fig. 1 plus the traffic-locality
comparison that motivates it (Section III.A).  Expected shape: AL-VC
confines at least as many flows to a single slice as the flat fabric.
"""

from repro.analysis.experiments import experiment_fig1_clustering
from repro.analysis.reporting import render_table


def test_bench_fig1_clustering(benchmark):
    result = benchmark.pedantic(
        experiment_fig1_clustering,
        kwargs={"n_flows": 300, "seed": 0},
        rounds=3,
        iterations=1,
    )
    print()
    print(render_table(result["traffic"], title="Fig. 1 — traffic locality"))
    print(render_table(result["census"], title="Fig. 1 — cluster census"))

    by_arch = {row["architecture"]: row for row in result["traffic"]}
    assert (
        by_arch["al-vc"]["al_confined_flows"]
        >= by_arch["flat"]["al_confined_flows"]
    )
    assert len(result["census"]) == 3
