"""E25 — week-in-the-life churn soak (acceptance, SLA, replayability).

Regenerates: the acceptance claim behind this repo's workload layer — a
long horizon of seeded multi-tenant churn (Poisson/diurnal arrivals,
exponential lifetimes, elastic VNF scaling, OPS chaos, migration storms
and defragmenting re-embedding) drives the whole control plane through
its journaled entry points, and the run is *bit-replayable*: every arm
restores from its own journal into the digest-identical state, the
twin arm reproduces the identical row, and sharding the arms across
worker processes changes nothing.

The soak here is CI-sized (one simulated day per arm, a 128-server
fleet fabric plus the deliberately over-subscribed dense arm); the
committed ``benchmarks/BENCH_e25.json`` records the expected rows and
``benchmarks/compare_workload.py`` enforces exact equality — every
field of every arm is deterministic, so any drift is a real behaviour
change, not noise.

The run writes a machine-readable record (``BENCH_e25.json`` in the
working directory, or ``$ALVC_BENCH_E25_OUT``) for that gate.
"""

import json
import os

from repro.analysis.experiments import experiment_e25_week_in_the_life
from repro.analysis.reporting import render_table

#: CI sizing: one simulated day, a 16-rack fleet, one dense day.
CI_SOAK = dict(
    days=1.0,
    n_racks=16,
    servers_per_rack=8,
    n_ops=16,
    slots=8,
    dense_days=1.0,
    seed=0,
)

#: Worker counts whose rows must be bit-identical.
WORKER_PARITY = (1, 3)


def test_bench_e25_workload(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_e25_week_in_the_life(**CI_SOAK, workers=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E25 — week-in-the-life churn soak"))

    by_arm = {row["arm"]: row for row in rows}
    assert set(by_arm) == {"fleet-a", "fleet-b", "dense"}

    # Gate A: every arm restored from its own journal into the
    # bit-identical control plane (a whole day of churn, replayed).
    assert all(row["replay_identical"] for row in rows), (
        f"journal replay diverged: "
        f"{[(row['arm'], row['digest']) for row in rows]}"
    )

    # Gate B: the twin arm reproduced the identical row — run-to-run
    # determinism of the entire soak, digest and checksum included.
    assert all(row["twin_identical"] for row in rows)
    fleet_a = dict(by_arm["fleet-a"], arm="fleet")
    fleet_b = dict(by_arm["fleet-b"], arm="fleet")
    assert fleet_a == fleet_b

    # Gate C: the soak exercises what it claims to — churn with both
    # admissions and rejections, elastic scaling, chaos, storms, and
    # (on the dense arm) defragmenting re-embedding.
    assert by_arm["fleet-a"]["admitted"] > 0
    assert by_arm["fleet-a"]["rejected"] > 0
    assert by_arm["fleet-a"]["scale_ups"] > 0
    assert by_arm["fleet-a"]["faults"] > 0
    assert by_arm["fleet-a"]["vms_migrated"] > 0
    assert by_arm["dense"]["reembeddings"] > 0
    assert by_arm["dense"]["fragmentation_peak"] > 0

    # Gate D: sharding the arms across workers changes nothing.
    sharded = experiment_e25_week_in_the_life(
        **CI_SOAK, workers=WORKER_PARITY[1]
    )
    assert sharded == rows, (
        f"rows differ between workers={WORKER_PARITY[0]} and "
        f"workers={WORKER_PARITY[1]}"
    )

    out_path = os.environ.get("ALVC_BENCH_E25_OUT", "BENCH_e25.json")
    with open(out_path, "w") as handle:
        json.dump(
            {
                "experiment": "e25_week_in_the_life",
                "soak": CI_SOAK,
                "rows": rows,
                "digests": {row["arm"]: row["digest"] for row in rows},
                "decisions_checksums": {
                    row["arm"]: row["decisions_checksum"] for row in rows
                },
                "acceptance_ratios": {
                    row["arm"]: row["acceptance_ratio"] for row in rows
                },
                "parity": all(
                    row["replay_identical"] and row["twin_identical"]
                    for row in rows
                ),
                "worker_parity": sharded == rows,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
