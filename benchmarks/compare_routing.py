#!/usr/bin/env python3
"""Compare two E22 routing records and enforce the speedup gates.

Usage::

    python benchmarks/compare_routing.py \
        benchmarks/BENCH_e22.json BENCH_e22.json \
        [--max-regression 0.25] [--min-csr-speedup 5.0] \
        [--min-cached-speedup 8.0]

Both files are the JSON written by
``benchmarks/test_bench_e22_routing.py``.  Three gates, all of which
must hold for a zero exit status:

* the candidate's **parity flag** is set — every arm (nx, csr,
  csr+cache, csr-batch) folded a checksum that matched its reference
  pass, i.e. the CSR engine is bit-identical to networkx on paths and
  error messages alike;
* the candidate's **csr speedup** (cold AL-restricted paths/sec over
  the nx arm, measured in the same run, so stable across machines)
  clears the absolute floor *and* has not regressed by more than
  ``--max-regression`` against the committed baseline;
* likewise the **cached speedup** (RouteCache over the CSR engine on
  the repeat-heavy query pool).
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _gate(
    name: str,
    before: float,
    after: float,
    floor: float,
    max_regression: float,
) -> bool:
    """Print one gate's verdict; returns True when it passes."""
    if before <= 0:
        print(f"FAIL: baseline {name} is not positive", file=sys.stderr)
        return False
    regression = (before - after) / before
    ok = after >= floor and regression <= max_regression
    status = "ok" if ok else "FAIL"
    print(
        f"{status}: {name} {before:.2f}x -> {after:.2f}x "
        f"({-regression:+.1%} vs limit -{max_regression:.1%}, "
        f"floor {floor:.2f}x)"
    )
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_e22.json")
    parser.add_argument("candidate", help="freshly measured BENCH_e22.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help=(
            "allowed relative speedup drop vs baseline (default 0.25 — "
            "arm-ratio variance on shared runners is larger than a "
            "single-engine ratio; the absolute floors are the primary "
            "gate)"
        ),
    )
    parser.add_argument(
        "--min-csr-speedup",
        type=float,
        default=5.0,
        metavar="X",
        help="absolute floor for cold csr vs nx paths/sec (default 5.0)",
    )
    parser.add_argument(
        "--min-cached-speedup",
        type=float,
        default=8.0,
        metavar="X",
        help="absolute floor for csr+cache vs nx paths/sec (default 8.0)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)

    for label, record in (("baseline", baseline), ("candidate", candidate)):
        rates = record.get("paths_per_sec", {})
        formatted = ", ".join(
            f"{arm}={rate:,.0f}/s" for arm, rate in sorted(rates.items())
        )
        print(
            f"{label}: csr {record['csr_speedup']:.2f}x, "
            f"cached {record['cached_speedup']:.2f}x ({formatted})"
        )

    passed = True
    if not candidate.get("parity", False):
        print(
            "FAIL: candidate parity flag is unset — some arm's checksum "
            "diverged from its networkx reference pass",
            file=sys.stderr,
        )
        passed = False
    else:
        print("ok: all arms reproduced their networkx reference checksums")
    passed &= _gate(
        "csr speedup",
        float(baseline["csr_speedup"]),
        float(candidate["csr_speedup"]),
        args.min_csr_speedup,
        args.max_regression,
    )
    passed &= _gate(
        "cached speedup",
        float(baseline["cached_speedup"]),
        float(candidate["cached_speedup"]),
        args.min_cached_speedup,
        args.max_regression,
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
