"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures (or an inherited
claim) and prints the rows/series the figure would carry; run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""
