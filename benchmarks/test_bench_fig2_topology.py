"""E2 / Fig. 2 — the AL-VC fabric against a fat-tree baseline.

Regenerates: node/link censuses and path-length distributions at three
scales.  Expected shape: the OPS-core fabric needs far fewer switches and
links than a fat-tree of comparable server count, at comparable or
shorter server-to-server hop counts.
"""

from repro.analysis.experiments import experiment_fig2_topology
from repro.analysis.reporting import render_table


def test_bench_fig2_topology(benchmark):
    rows = benchmark.pedantic(
        experiment_fig2_topology, rounds=3, iterations=1
    )
    print()
    print(render_table(rows, title="Fig. 2 — fabric census and path lengths"))

    for alvc, tree in zip(rows[0::2], rows[1::2]):
        # The OPS core replaces the fat-tree's agg+core tiers: fewer
        # links per served host, at comparable or shorter paths.
        assert alvc["links"] < tree["links"]
        assert alvc["mean_path"] <= tree["mean_path"] + 1.0
