#!/usr/bin/env python3
"""Compare two E25 churn-soak records and enforce the gates.

Usage::

    python benchmarks/compare_workload.py \
        benchmarks/BENCH_e25.json BENCH_e25.json

Both files are the JSON written by
``benchmarks/test_bench_e25_workload.py``.  Unlike the throughput
benches, every field of an E25 row is deterministic — the soak runs in
virtual time from one seed — so the gate is *exact equality*, not a
regression bound:

* the candidate's **parity** flags — every arm restored from its own
  journal into the digest-identical state (``replay_identical``), the
  twin arm reproduced the identical row (``twin_identical``), and
  sharding across workers changed nothing (``worker_parity``);
* every row of the candidate equals the committed baseline row for the
  same arm, field for field (acceptance ratio, SLA counts, scaling and
  re-embedding activity, churn cost, state digest, decision checksum).

Any difference is a genuine behaviour change in the control plane or
the workload layer and must ship with a regenerated baseline.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_e25.json")
    parser.add_argument("candidate", help="freshly measured BENCH_e25.json")
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)

    passed = True
    for flag in ("parity", "worker_parity"):
        if candidate.get(flag, False):
            print(f"ok: candidate {flag} holds")
        else:
            print(f"FAIL: candidate {flag} is false", file=sys.stderr)
            passed = False

    base_rows = {row["arm"]: row for row in baseline.get("rows", [])}
    cand_rows = {row["arm"]: row for row in candidate.get("rows", [])}
    if set(base_rows) != set(cand_rows):
        print(
            f"FAIL: arm sets differ — baseline {sorted(base_rows)} vs "
            f"candidate {sorted(cand_rows)}",
            file=sys.stderr,
        )
        return 1

    for arm in sorted(base_rows):
        before, after = base_rows[arm], cand_rows[arm]
        fields = sorted(set(before) | set(after))
        diffs = [
            field
            for field in fields
            if before.get(field) != after.get(field)
        ]
        if diffs:
            passed = False
            print(f"FAIL: arm {arm!r} drifted from baseline:", file=sys.stderr)
            for field in diffs:
                print(
                    f"  {field}: {before.get(field)!r} -> "
                    f"{after.get(field)!r}",
                    file=sys.stderr,
                )
        else:
            print(
                f"ok: arm {arm!r} identical "
                f"(acceptance {after['acceptance_ratio']}, "
                f"digest {after['digest']})"
            )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
