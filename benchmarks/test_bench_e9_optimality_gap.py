"""E9 — optimality gap of the AL construction heuristics.

Regenerates: the "minimum set of switches" claim (Abstract, Section
III.C) as a measured gap against the exact optimum over random fabrics.
Expected shape: exact gap = 1, the paper's greedy close behind, random
selection clearly worse.
"""

from repro.analysis.experiments import experiment_e9_optimality_gap
from repro.analysis.reporting import render_table


def test_bench_e9_optimality_gap(benchmark):
    rows = benchmark.pedantic(
        experiment_e9_optimality_gap,
        kwargs={"instances": 8},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E9 — AL size vs exact optimum"))

    gaps = {row["strategy"]: row["gap_vs_exact"] for row in rows}
    assert gaps["exact"] == 1.0
    assert 1.0 <= gaps["vertex_cover_greedy"] <= gaps["random"] + 1e-9
    # The greedy stays within 50% of optimal on these instances.
    assert gaps["vertex_cover_greedy"] < 1.5
