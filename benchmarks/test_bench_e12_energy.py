"""E12 — O/E/O conversion energy vs optical hosting capacity.

Regenerates: the Section IV.D energy argument as a measured curve —
joules spent on conversions for a flow population as optoelectronic
capacity grows from none to abundant.  Expected shape: energy falls
monotonically, from the all-electronic ceiling to zero once the whole
chain is hosted optically.
"""

from repro.analysis.experiments import experiment_e12_energy
from repro.analysis.reporting import render_table

SCALES = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)


def test_bench_e12_energy(benchmark):
    rows = benchmark.pedantic(
        experiment_e12_energy,
        kwargs={"capacity_scales": SCALES, "n_flows": 150},
        rounds=3,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E12 — conversion energy vs capacity"))

    energies = [row["energy_joules"] for row in rows]
    assert energies == sorted(energies, reverse=True)
    assert rows[0]["energy_saving"] == 0.0
    assert rows[-1]["energy_saving"] == 1.0
    for row in rows:
        assert row["energy_joules"] <= row["baseline_energy_joules"] + 1e-9
