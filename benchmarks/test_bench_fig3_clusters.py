"""E3 / Fig. 3 — disjoint virtual clusters over the OPS core.

Regenerates: one AL per service cluster with the paper's disjointness
rule.  Expected shape: every cluster gets a non-empty AL, no OPS is
shared, and the total assigned switches never exceed the core.
"""

from repro.analysis.experiments import experiment_fig3_clusters
from repro.analysis.reporting import render_table


def test_bench_fig3_clusters(benchmark):
    rows = benchmark.pedantic(
        experiment_fig3_clusters,
        kwargs={"n_services": 4, "seed": 0},
        rounds=3,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Fig. 3 — per-cluster abstraction layers"))

    per_cluster = [
        row for row in rows if row["cluster"].startswith("cluster")
    ]
    total = next(row for row in rows if row["cluster"] == "TOTAL")
    utilization = next(
        row for row in rows if row["cluster"] == "core-utilization"
    )
    assert len(per_cluster) == 4
    assert all(row["al_size"] >= 1 for row in per_cluster)
    # Disjointness: assigned switches add up exactly.
    assert total["al_size"] == sum(row["al_size"] for row in per_cluster)
    assert 0 < utilization["al_size"] <= 1
