"""E13 — incremental AL repair vs full rebuild (extension ablation).

Regenerates: the update-cost comparison between repairing an abstraction
layer in place (arrivals graft the cheapest ToR/OPS extension, departures
prune) and reconstructing it after every churn event.  Expected shape:
incremental repair touches no more switches in total, and a large share
of arrivals are zero-cost (the new VM's rack is already covered).
"""

from repro.analysis.experiments import experiment_e13_reconfiguration
from repro.analysis.reporting import render_table


def test_bench_e13_reconfiguration(benchmark):
    rows = benchmark.pedantic(
        experiment_e13_reconfiguration,
        kwargs={"churn_events": 40, "seed": 0},
        rounds=3,
        iterations=1,
    )
    print()
    print(
        render_table(
            rows, title="E13 — incremental repair vs full rebuild"
        )
    )

    by_policy = {row["policy"]: row for row in rows}
    incremental = by_policy["incremental"]
    rebuild = by_policy["rebuild"]
    assert incremental["total_touched"] <= rebuild["total_touched"]
    assert incremental["zero_cost_events"] > 0
    assert rebuild["zero_cost_events"] == 0
