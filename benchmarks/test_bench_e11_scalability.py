"""E11 — scalability of AL construction (claim inherited from [15]).

Regenerates: AL construction time and AL size as the fabric grows from
64 to 2048 servers.  Expected shape: construction stays in the
milliseconds (near-linear growth), and the AL size stays bounded by the
optical core.
"""

from repro.analysis.experiments import experiment_e11_scalability
from repro.analysis.reporting import render_table

SCALES = ((4, 16, 4), (8, 32, 8), (16, 64, 16), (32, 64, 32))


def test_bench_e11_scalability(benchmark):
    rows = benchmark.pedantic(
        experiment_e11_scalability,
        kwargs={"scales": SCALES},
        rounds=3,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E11 — AL construction vs fabric size"))

    assert [row["servers"] for row in rows] == [64, 256, 1024, 2048]
    for row in rows:
        assert row["al_size"] <= row["ops"]
        # Laptop-scale budget: even the 2048-server fabric constructs in
        # well under a second.
        assert row["construct_ms"] < 1000
