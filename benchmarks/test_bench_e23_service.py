"""E23 — durable service throughput (group commit + restore time).

Regenerates: the engineering claim behind this repo's durable
control-plane service — admitting the same op stream through the
batched front-end path (one group-commit fsync and one shared
per-cluster context cache per wave) delivers at least 2x
provision/teardown ops/second over serial fsync-per-op submission on a
1024-server fabric, a snapshot bounds restore wall clock to at least
2x better than full journal replay, and the canonical state digest
proves every arm (and every recovery) landed in the bit-identical
control-plane state.

The run writes a machine-readable record (``BENCH_e23.json`` in the
working directory, or ``$ALVC_BENCH_E23_OUT``) that
``benchmarks/compare_service.py`` diffs against the committed
``benchmarks/BENCH_e23.json`` to gate durable-service regressions in
CI.
"""

import json
import os

from repro.analysis.experiments import experiment_e23_service_throughput
from repro.analysis.reporting import render_table

#: Gate A: batched admission at least this much faster than serial
#: fsync-per-op (ops/sec, same run, so stable across machines).
MIN_BATCHED_SPEEDUP = 2.0

#: Gate B: snapshot restore at least this much faster than full
#: genesis replay (wall clock).
MIN_RESTORE_SPEEDUP = 2.0

#: Gate C: absolute floor on replay throughput — crash recovery must
#: re-execute committed commands at a usable rate even on slow runners.
MIN_RESTORE_OPS_PER_SEC = 200.0


def test_bench_e23_service(benchmark):
    rows = benchmark.pedantic(
        experiment_e23_service_throughput,
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E23 — durable-service ops/sec by arm"))

    by_arm = {row["arm"]: row for row in rows}
    serial = by_arm["serial"]
    batched = by_arm["batched"]
    replay = by_arm["restore-replay"]
    snapshot = by_arm["restore-snapshot"]

    # Every arm — including both recovery paths — reached the
    # bit-identical control-plane state (the replay-parity proof).
    assert all(row["parity"] for row in rows), (
        f"state digests diverged across arms: "
        f"{[(row['arm'], row['digest']) for row in rows]}"
    )
    assert len({row["digest"] for row in rows}) == 1

    # Gate A: group commit + shared admission context.
    assert batched["speedup"] >= MIN_BATCHED_SPEEDUP, (
        f"batched arm is only {batched['speedup']:.2f}x the serial "
        f"arm's ops/sec (target {MIN_BATCHED_SPEEDUP}x)"
    )

    # Gate B: a snapshot bounds recovery below full replay.
    assert snapshot["speedup"] >= MIN_RESTORE_SPEEDUP, (
        f"snapshot restore is only {snapshot['speedup']:.2f}x faster "
        f"than full replay (target {MIN_RESTORE_SPEEDUP}x)"
    )
    assert snapshot["replayed"] == 0  # head snapshot: empty tail

    # Gate C: replay recovers committed commands at a usable rate.
    assert replay["ops_per_sec"] >= MIN_RESTORE_OPS_PER_SEC, (
        f"journal replay recovered only {replay['ops_per_sec']:.0f} "
        f"ops/sec (floor {MIN_RESTORE_OPS_PER_SEC:.0f})"
    )

    out_path = os.environ.get("ALVC_BENCH_E23_OUT", "BENCH_e23.json")
    with open(out_path, "w") as handle:
        json.dump(
            {
                "experiment": "e23_service_throughput",
                "rows": rows,
                "ops_per_sec": {
                    row["arm"]: row["ops_per_sec"] for row in rows
                },
                "p99_ms": {
                    row["arm"]: row["p99_ms"]
                    for row in (serial, batched)
                },
                "batched_speedup": batched["speedup"],
                "restore_speedup": snapshot["speedup"],
                "restore_ops_per_sec": replay["ops_per_sec"],
                "parity": all(row["parity"] for row in rows),
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
