"""E24 — certified optimality gaps of the greedy control-plane paths.

Regenerates: the exact-baseline claim behind :mod:`repro.opt` — on
every fabric scale point the branch-and-bound MILP closes both exact
formulations (AL cover and chain placement) with a certificate, the
greedy objectives sit within a committed gap tolerance of the
certified optimum, and the node counts stay inside an interactive
budget (the perf canary for the pure-python solver).

The run writes a machine-readable record (``BENCH_e24.json`` in the
working directory, or ``$ALVC_BENCH_E24_OUT``) that
``benchmarks/compare_opt.py`` diffs against the committed
``benchmarks/BENCH_e24.json`` to gate exact-baseline regressions in
CI.
"""

import json
import os

from repro.analysis.experiments import experiment_e24_exact_gap
from repro.analysis.reporting import render_table

#: Gate A: every instance must be *closed* — a gap curve against an
#: uncertified incumbent proves nothing.
REQUIRE_PROVEN = True

#: Gate B: largest tolerated relative gap, per problem family.  The
#: paper's greedy is near-optimal on these scales; a bigger gap means a
#: greedy regression (or an exact-solver bug making "optimal" too easy).
MAX_GAP = {"al_cover": 0.5, "placement": 0.0}

#: Gate C: branch-and-bound node budget per instance (perf canary —
#: the pure-python solver must stay interactive at bench scale).
MAX_BNB_NODES = 2000


def test_bench_e24_exact_gap(benchmark):
    rows = benchmark.pedantic(
        experiment_e24_exact_gap,
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="E24 — certified optimality gaps"))

    by_problem: dict = {}
    for row in rows:
        by_problem.setdefault(row["problem"], []).append(row)

    # Both exact formulations, each on >= 3 fabric sizes.
    assert set(by_problem) == {"al_cover", "placement"}
    for problem, group in by_problem.items():
        assert len({row["fabric_servers"] for row in group}) >= 3, (
            f"{problem}: want >= 3 fabric sizes, got {group}"
        )

    for row in rows:
        label = f"{row['problem']}@{row['fabric_servers']}"
        # Gate A: branch-and-bound closed the instance.
        assert row["proven_optimal"], f"{label}: bound not closed"
        # The certificate brackets the exact objective from below and
        # the greedy objective from above (exactness sanity).
        assert (
            row["certified_lower_bound"]
            <= row["exact_objective"]
            <= row["greedy_objective"]
        ), f"{label}: certificate ordering violated: {row}"
        # Gate B: greedy within the committed tolerance of optimal.
        assert 0.0 <= row["gap"] <= MAX_GAP[row["problem"]], (
            f"{label}: gap {row['gap']:.3f} outside "
            f"[0, {MAX_GAP[row['problem']]}]"
        )
        # Gate C: the solver stayed interactive.
        assert row["bnb_nodes"] <= MAX_BNB_NODES, (
            f"{label}: {row['bnb_nodes']} B&B nodes "
            f"(budget {MAX_BNB_NODES})"
        )

    out_path = os.environ.get("ALVC_BENCH_E24_OUT", "BENCH_e24.json")
    with open(out_path, "w") as handle:
        json.dump(
            {
                "experiment": "e24_exact_gap",
                "rows": rows,
                "max_gap": {
                    problem: max(row["gap"] for row in group)
                    for problem, group in by_problem.items()
                },
                "total_bnb_nodes": sum(row["bnb_nodes"] for row in rows),
                "proven_optimal": all(
                    row["proven_optimal"] for row in rows
                ),
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
