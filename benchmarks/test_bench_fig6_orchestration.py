"""E6 / Fig. 6 — the NFV functional blocks driven end to end.

Regenerates: the management-action census of one orchestration session:
provision x3 (one via modify), upgrade, delete — through the network
orchestrator, Cloud/NFV manager (lifecycle events) and SDN controller
(rule churn) of Fig. 6.  Expected shape: action counts match the driven
scenario exactly and the session leaves one live chain.
"""

from repro.analysis.experiments import experiment_fig6_orchestration
from repro.analysis.reporting import render_table


def test_bench_fig6_orchestration(benchmark):
    rows = benchmark.pedantic(
        experiment_fig6_orchestration, rounds=3, iterations=1
    )
    print()
    print(render_table(rows, title="Fig. 6 — orchestration action census"))

    metrics = {row["metric"]: row["value"] for row in rows}
    assert metrics["action:provision"] == 3
    assert metrics["action:modify"] == 1
    assert metrics["action:upgrade"] == 1
    assert metrics["action:delete"] == 2
    assert metrics["live_chains"] == 1
    assert metrics["lifecycle:terminated"] >= 2
    assert metrics["sdn:installs"] >= metrics["sdn:removals"]
