"""E8 / Fig. 8 — VNF placement to save O/E/O conversions.

Regenerates: (a) the exact Fig. 8 walk-through (3-VNF chain, two
conversions before, one after, two VNFs in the optical domain) and
(b) the sweep over chain length and optoelectronic capacity comparing
all-electronic / random / greedy / optimal placement.  Expected shape:
all-electronic is the ceiling, conversions fall as capacity grows, and
optimal ≤ greedy ≤ random ≤ all-electronic.
"""

from repro.analysis.experiments import (
    experiment_fig8_sweep,
    experiment_fig8_worked_example,
)
from repro.analysis.reporting import render_table


def test_bench_fig8_worked_example(benchmark):
    result = benchmark(experiment_fig8_worked_example)
    print()
    print("Fig. 8 worked example:")
    print(f"  chain:  {result['chain']}")
    print(
        f"  before: {result['before_conversions']} conversions "
        f"({result['before_optical']} VNF optical)"
    )
    print(
        f"  after:  {result['after_conversions']} conversions "
        f"({result['after_optical']} VNFs optical), "
        f"saved {result['saved']}"
    )

    assert result["before_conversions"] == 2
    assert result["after_conversions"] == 1
    assert result["saved"] == 1
    assert result["after_optical"] == 2


def test_bench_fig8_sweep(benchmark):
    rows = benchmark.pedantic(
        experiment_fig8_sweep,
        kwargs={
            "chain_lengths": (2, 4, 6),
            "capacity_scales": (0.0, 0.5, 1.0, 2.0),
            "seeds": (0, 1, 2),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            rows, title="Fig. 8 — conversions per placement algorithm"
        )
    )

    indexed = {
        (row["chain_len"], row["capacity_scale"], row["algorithm"]): row
        for row in rows
    }
    for length in (2, 4, 6):
        for scale in (0.0, 0.5, 1.0, 2.0):
            ceiling = indexed[(length, scale, "all_electronic")][
                "mean_conversions"
            ]
            greedy = indexed[(length, scale, "greedy")]["mean_conversions"]
            optimal = indexed[(length, scale, "optimal")]["mean_conversions"]
            assert optimal <= greedy + 1e-9 <= ceiling + 1e-9
        # More capacity never hurts the optimizer.
        greedy_curve = [
            indexed[(length, scale, "greedy")]["mean_conversions"]
            for scale in (0.0, 0.5, 1.0, 2.0)
        ]
        assert all(
            b <= a + 1e-9 for a, b in zip(greedy_curve, greedy_curve[1:])
        )
