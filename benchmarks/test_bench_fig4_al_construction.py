"""E4 / Fig. 4 — abstraction-layer construction (the paper's algorithm).

Regenerates: (a) the exact Fig. 4 walk-through — ToR 1 selected on weight
6, ToR 2 skipped, ToR 3 completing the cover, final AL of two switches —
and (b) the strategy sweep comparing the paper's vertex-cover greedy
against random selection (prior work [15]), marginal greedy and the exact
optimum.  Expected shape: greedy AL ≤ random AL, ≥ exact, and orders of
magnitude faster than exact at the largest scale.
"""

from repro.analysis.experiments import (
    experiment_fig4_strategy_sweep,
    experiment_fig4_worked_example,
)
from repro.analysis.reporting import render_table


def test_bench_fig4_worked_example(benchmark):
    result = benchmark(experiment_fig4_worked_example)
    print()
    print("Fig. 4 worked example:")
    print(f"  ToR weights:    {result['tor_weights']}")
    print(f"  ToRs considered: {result['tor_considered']}")
    print(f"  ToRs selected:   {result['tor_selected']}")
    print(f"  Final AL:        {result['al']}")

    assert result["tor_selected"] == ["tor-0", "tor-2"]
    assert result["tor_considered"] == ["tor-0", "tor-1", "tor-2"]
    assert result["al"] == ["ops-0", "ops-2"]


def test_bench_fig4_strategy_sweep(benchmark):
    rows = benchmark.pedantic(
        experiment_fig4_strategy_sweep,
        kwargs={
            "scales": ((4, 4), (8, 8)),
            "seeds": (0, 1, 2),
            "include_exact": True,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Fig. 4 — AL size per strategy"))

    by_key = {(row["racks"], row["strategy"]): row for row in rows}
    for racks in (4, 8):
        greedy = by_key[(racks, "vertex_cover_greedy")]["mean_al_size"]
        random_size = by_key[(racks, "random")]["mean_al_size"]
        exact = by_key[(racks, "exact")]["mean_al_size"]
        assert exact <= greedy <= random_size + 1e-9
