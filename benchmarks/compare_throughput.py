#!/usr/bin/env python3
"""Compare two E19 throughput records for events/sec regressions.

Usage::

    python benchmarks/compare_throughput.py \
        benchmarks/BENCH_e19.json BENCH_e19.json [--max-regression 0.10]

Both files are the JSON written by
``benchmarks/test_bench_e19_event_throughput.py``.  The gate compares
the **speedup** (incremental events/sec normalized by the legacy loop
measured in the same run), which is stable across machines, and exits
non-zero when the candidate's speedup regresses by more than
``--max-regression`` (default 10%) against the committed baseline.
Absolute events/sec for both engines are printed for context.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_e19.json")
    parser.add_argument("candidate", help="freshly measured BENCH_e19.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="allowed relative events/sec (speedup) drop (default 0.10)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)

    for label, record in (("baseline", baseline), ("candidate", candidate)):
        rates = record.get("events_per_sec", {})
        formatted = ", ".join(
            f"{engine}={rate:,.0f} ev/s" for engine, rate in sorted(rates.items())
        )
        print(f"{label}: speedup {record['speedup']:.2f}x ({formatted})")

    before = float(baseline["speedup"])
    after = float(candidate["speedup"])
    if before <= 0:
        print("baseline speedup is not positive", file=sys.stderr)
        return 2
    regression = (before - after) / before
    limit = args.max_regression
    status = "FAIL" if regression > limit else "ok"
    print(
        f"{status}: speedup {before:.2f}x -> {after:.2f}x "
        f"({-regression:+.1%} vs limit -{limit:.1%})"
    )
    return 1 if regression > limit else 0


if __name__ == "__main__":
    sys.exit(main())
