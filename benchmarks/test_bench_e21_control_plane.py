"""E21 — control-plane throughput (bitset kernels + sweep batching).

Regenerates: the engineering claim behind this repo's control-plane
rework — the interned bitset cover kernels plus fabric accessor
memoization deliver at least 2x AL constructions/second over the
legacy set-based path on a 1024-server fabric (~ a k=16 fat-tree),
and driving the same grid through :class:`repro.parallel.SweepRunner`
with per-seed shard tasks cuts wall clock by a further >= 2x while an
order-independent checksum proves every arm built identical layers.

Set ``ALVC_E21_WORKERS`` to shard the parallel arm across processes
(CI pins 1 so the batching win is measured honestly on one core).

The run writes a machine-readable record (``BENCH_e21.json`` in the
working directory, or ``$ALVC_BENCH_E21_OUT``) that
``benchmarks/compare_control_plane.py`` diffs against the committed
``benchmarks/BENCH_e21.json`` to gate control-plane regressions in CI.
"""

import json
import os

from repro.analysis.experiments import (
    experiment_e21_control_plane_throughput,
)
from repro.analysis.reporting import render_table

#: Gate A: optimized kernels at least this much faster (constructions/s).
MIN_KERNEL_SPEEDUP = 2.0

#: Gate B: per-seed sweep batching at least this much faster (wall clock).
MIN_SWEEP_SPEEDUP = 2.0


def test_bench_e21_control_plane(benchmark):
    workers = int(os.environ.get("ALVC_E21_WORKERS", "1"))
    rows = benchmark.pedantic(
        experiment_e21_control_plane_throughput,
        kwargs={"workers": workers},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            rows, title="E21 — control-plane throughput by arm"
        )
    )

    by_arm = {row["arm"]: row for row in rows}
    serial = by_arm["serial-set"]
    bitset = by_arm["bitset"]
    parallel = by_arm["bitset-parallel"]

    # Every arm built the same abstraction layers: same construction
    # count, same order-independent checksum (the "parallel merge is
    # bit-identical to serial" proof).
    assert (
        serial["constructions"]
        == bitset["constructions"]
        == parallel["constructions"]
    )
    assert serial["checksum"] == bitset["checksum"] == parallel["checksum"]

    # Gate A: the bitset kernels + accessor memoization.
    assert bitset["cps_speedup"] >= MIN_KERNEL_SPEEDUP, (
        f"bitset arm is only {bitset['cps_speedup']:.2f}x the serial-set "
        f"arm's constructions/sec (target {MIN_KERNEL_SPEEDUP}x)"
    )

    # Gate B: SweepRunner shard batching on top of the kernels.
    assert parallel["wall_speedup"] >= MIN_SWEEP_SPEEDUP, (
        f"parallel sweep arm is only {parallel['wall_speedup']:.2f}x the "
        f"bitset arm's wall clock (target {MIN_SWEEP_SPEEDUP}x)"
    )

    out_path = os.environ.get("ALVC_BENCH_E21_OUT", "BENCH_e21.json")
    with open(out_path, "w") as handle:
        json.dump(
            {
                "experiment": "e21_control_plane_throughput",
                "rows": rows,
                "constructions_per_sec": {
                    row["arm"]: row["constructions_per_sec"] for row in rows
                },
                "kernel_speedup": bitset["cps_speedup"],
                "sweep_speedup": parallel["wall_speedup"],
                "checksums_match": len(
                    {row["checksum"] for row in rows}
                )
                == 1,
                "workers": workers,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
