"""E18 — traffic continuity under optical-switch failures (extension).

Regenerates: the same workload replayed as 0, 1, 2 core switches die at
staggered times.  Expected shape: all traffic that stays connected
completes (drops only on genuine partitions), reroutes grow with the
failure count, and the mean-FCT penalty stays bounded.
"""

from repro.analysis.experiments import experiment_e18_failure_continuity
from repro.analysis.reporting import render_table


def test_bench_e18_failure_continuity(benchmark):
    rows = benchmark.pedantic(
        experiment_e18_failure_continuity,
        kwargs={"n_flows": 150, "n_failures_sweep": (0, 1, 2), "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(rows, title="E18 — continuity under switch failures")
    )

    by_failures = {row["failures"]: row for row in rows}
    baseline = by_failures[0]
    assert baseline["dropped"] == 0
    assert baseline["reroutes"] == 0
    for row in rows:
        # Conservation: every flow either completes or is dropped.
        assert row["completed"] + row["dropped"] == 150
        # Failures never *improve* completion time.
        assert row["fct_penalty"] >= 1.0 - 1e-9
        # Penalty stays bounded on this fabric (rich path diversity).
        assert row["fct_penalty"] < 2.0
    assert by_failures[2]["reroutes"] >= by_failures[1]["reroutes"]
