"""E17 — live VM migration through the orchestrator (extension).

Regenerates: the operational form of the low-update-cost claim — each
migration repairs the abstraction layer in place, extends the slice only
when the AL grows, and reroutes the affected chain.  Expected shape:
mean switches touched stays in low single digits (vs the whole core on a
flat fabric), a large fraction of migrations are zero-cost, and slice
isolation survives every event.
"""

from repro.analysis.experiments import experiment_e17_operational_migration
from repro.analysis.reporting import render_table


def test_bench_e17_operational_migration(benchmark):
    rows = benchmark.pedantic(
        experiment_e17_operational_migration,
        kwargs={"n_migrations": 20, "seed": 0},
        rounds=3,
        iterations=1,
    )
    print()
    print(
        render_table(rows, title="E17 — operational migration churn")
    )

    row = rows[0]
    assert row["migrations"] > 0
    assert row["isolation_violations"] == 0
    assert row["chains_rerouted"] == row["migrations"]
    # The low-update-cost property: well under the core size (10 OPSs).
    assert row["mean_switches_touched"] < 4
    assert row["zero_cost_fraction"] > 0
