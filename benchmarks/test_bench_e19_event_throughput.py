"""E19 — event-driven simulator throughput (hot-path optimization).

Regenerates: the engineering claim behind this repo's event-driven
simulator rework — the incremental water-filling engine, the LRU route
cache and the lazy-deletion completion heap together deliver at least a
3x events/second speedup over the pre-optimization loop on a 64-rack
fabric, with the same flow-completion results.

The run writes a machine-readable record (``BENCH_e19.json`` in the
working directory, or ``$ALVC_BENCH_E19_OUT``) that
``benchmarks/compare_throughput.py`` diffs against the committed
``benchmarks/BENCH_e19.json`` to gate throughput regressions in CI.
"""

import json
import os

import pytest

from repro.analysis.experiments import experiment_e19_event_throughput
from repro.analysis.reporting import render_table

#: The tentpole promise: incremental engine at least this much faster.
MIN_SPEEDUP = 3.0

#: The vector engine pays numpy dispatch overhead per recompute, so at
#: e19's low concurrency (400 flows) it only has to beat the legacy
#: loop soundly — its high-concurrency claim (>= 2.5x incremental at
#: 8000 flows) is E26's gate (``test_bench_e26_dataplane.py``).
MIN_VECTOR_SPEEDUP = 2.0


def test_bench_e19_event_throughput(benchmark):
    rows = benchmark.pedantic(
        experiment_e19_event_throughput,
        kwargs={"seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            rows, title="E19 — event-simulator throughput by engine"
        )
    )

    by_engine = {row["engine"]: row for row in rows}
    legacy = by_engine["legacy"]
    incremental = by_engine["incremental"]
    vector = by_engine["vector"]

    # Identical workload, identical outcome (to float tolerance; the
    # bit-for-bit check lives in tests/sim/test_event_simulator.py).
    for contender in (incremental, vector):
        assert contender["flows"] == legacy["flows"]
        assert contender["events"] == legacy["events"]
        assert contender["mean_fct"] == pytest.approx(
            legacy["mean_fct"], rel=1e-6
        )

    # The tentpole acceptance bar: >= 3x events/second.
    assert incremental["speedup"] >= MIN_SPEEDUP, (
        f"incremental engine is only {incremental['speedup']:.2f}x the "
        f"legacy loop (target {MIN_SPEEDUP}x)"
    )

    # The vector data plane must still beat the legacy loop here even
    # though e19's sizing is incremental's best case.
    assert vector["speedup"] >= MIN_VECTOR_SPEEDUP, (
        f"vector engine is only {vector['speedup']:.2f}x the legacy "
        f"loop (target {MIN_VECTOR_SPEEDUP}x)"
    )

    out_path = os.environ.get("ALVC_BENCH_E19_OUT", "BENCH_e19.json")
    with open(out_path, "w") as handle:
        json.dump(
            {
                "experiment": "e19_event_throughput",
                "rows": rows,
                "events_per_sec": {
                    row["engine"]: row["events_per_sec"] for row in rows
                },
                "speedup": incremental["speedup"],
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
