#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files for telemetry overhead.

Usage::

    python benchmarks/compare_overhead.py baseline.json telemetry.json \
        [--max-overhead 0.05]

Matches benchmarks by fully-qualified name and compares the median
per-call time.  Exits non-zero when any benchmark in ``telemetry.json``
is more than ``--max-overhead`` (default 5%) slower than its baseline —
the regression gate for the zero-cost-when-disabled telemetry contract.
"""

from __future__ import annotations

import argparse
import json
import sys


def _medians(path: str) -> dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["fullname"]: bench["stats"]["median"]
        for bench in data["benchmarks"]
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="benchmark JSON without telemetry")
    parser.add_argument("candidate", help="benchmark JSON with telemetry")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="allowed slowdown of candidate vs baseline (default 0.05)",
    )
    args = parser.parse_args(argv)

    baseline = _medians(args.baseline)
    candidate = _medians(args.candidate)
    shared = sorted(baseline.keys() & candidate.keys())
    if not shared:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    failed = False
    for name in shared:
        before = baseline[name]
        after = candidate[name]
        overhead = (after - before) / before if before > 0 else 0.0
        status = "ok"
        if overhead > args.max_overhead:
            status = "FAIL"
            failed = True
        print(
            f"{status:<5} {name}: {before * 1e3:.3f} ms -> "
            f"{after * 1e3:.3f} ms ({overhead:+.1%}, "
            f"limit {args.max_overhead:+.1%})"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
