"""E15 — flow completion times under load (extension ablation).

Regenerates: the delay side of Section III.B's "larger bandwidth without
delay" aspiration, measured with the event-driven fair-share simulator.
Expected shape: mean FCT grows with offered load, and confining
intra-service traffic to the cluster's abstraction layer costs nothing —
with rack-aligned clusters the AL paths are the flat shortest paths.
"""

from repro.analysis.experiments import experiment_e15_flow_completion
from repro.analysis.reporting import render_table


def test_bench_e15_flow_completion(benchmark):
    rows = benchmark.pedantic(
        experiment_e15_flow_completion,
        kwargs={"n_flows": 120, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            rows, title="E15 — flow completion time vs offered load"
        )
    )

    by_key = {
        (row["arrival_rate"], row["architecture"]): row for row in rows
    }
    rates = sorted({row["arrival_rate"] for row in rows})
    # Load monotonicity: higher arrival rate, higher mean FCT.
    alvc_curve = [by_key[(rate, "al-vc")]["mean_fct"] for rate in rates]
    assert alvc_curve == sorted(alvc_curve)
    # AL confinement never costs more than 5% FCT on this testbed.
    for rate in rates:
        alvc = by_key[(rate, "al-vc")]["mean_fct"]
        flat = by_key[(rate, "flat")]["mean_fct"]
        assert alvc <= flat * 1.05 + 1e-9
    for row in rows:
        assert 0.0 <= row["mean_utilization"] <= 1.0 + 1e-9
