"""E7 / Fig. 7 — one optical slice per NFC until the core is exhausted.

Regenerates: slice allocation for a growing number of per-application
clusters over a fixed optical core.  Expected shape: requests are
accepted while unassigned OPSs remain, then rejected (the disjointness
rule: "one OPS cannot be part of two ALs"), with isolation holding
throughout.
"""

from repro.analysis.experiments import experiment_fig7_slicing
from repro.analysis.reporting import render_table


def test_bench_fig7_slicing(benchmark):
    rows = benchmark.pedantic(
        experiment_fig7_slicing,
        kwargs={"n_services": 7, "n_ops": 6, "seed": 0},
        rounds=3,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Fig. 7 — slice allocation and rejection"))

    outcomes = [row["outcome"] for row in rows]
    assert outcomes[0] == "accepted"
    assert any(outcome.startswith("rejected") for outcome in outcomes)
    # free_ops never increases as slices are handed out.
    free = [row["free_ops"] for row in rows]
    assert all(b <= a for a, b in zip(free, free[1:]))
