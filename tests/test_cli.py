"""Tests for the CLI experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for exp_id in ("fig1", "fig4", "fig8", "e9", "e10", "e11", "e12"):
            assert exp_id in output


class TestRun:
    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 4 — worked example" in output
        assert "ops-0,ops-2" in output

    def test_run_fig8(self, capsys):
        assert main(["run", "fig8"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 8 — worked example" in output
        assert "nat->firewall->dpi" in output

    def test_export_dir(self, capsys, tmp_path):
        target = tmp_path / "results"
        assert main(["run", "e11", "--export-dir", str(target)]) == 0
        exports = list(target.glob("e11-*.csv"))
        assert len(exports) == 1
        content = exports[0].read_text()
        assert content.startswith("servers,")

    def test_run_multiple(self, capsys):
        assert main(["run", "fig3", "e10"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 3" in output
        assert "E10" in output

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_mixed_known_unknown_rejected_before_running(self, capsys):
        assert main(["run", "fig4", "bogus"]) == 2
        captured = capsys.readouterr()
        assert "bogus" in captured.err
        # Nothing ran.
        assert "Fig. 4" not in captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        output = capsys.readouterr().out
        assert "# AL-VC reproduction report" in output
        assert "fig4" in output
        assert "| --- |" in output

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "REPORT.md"
        assert main(["report", str(target)]) == 0
        text = target.read_text()
        assert "fig8" in text
        assert "worked example" in text.lower()
