"""Tests for the CLI experiment runner."""

import io
import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for exp_id in (
            "fig1", "fig4", "fig8", "e9", "e10", "e11", "e12", "e23", "e26",
        ):
            assert exp_id in output


class TestServe:
    BUILD = "n_racks=3,servers_per_rack=3,n_ops=4,seed=0,vms_per_service=3"

    def _serve(self, monkeypatch, argv, lines):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        return main(["serve", *argv])

    def test_serve_round_trip(self, capsys, monkeypatch, tmp_path):
        state = tmp_path / "state"
        code = self._serve(
            monkeypatch,
            ["--state", str(state), "--build", self.BUILD],
            [
                json.dumps(
                    {
                        "op": "provision",
                        "chain": ["firewall", "nat"],
                        "service": "web",
                    }
                ),
                "not json at all",
                json.dumps({"op": "teardown", "chain_id": "chain-0"}),
            ],
        )
        assert code == 0
        responses = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        # Parse errors are reported as soon as the line is read, so
        # they interleave with in-flight responses; admitted requests
        # themselves respond in submission order.
        admitted = [r for r in responses if r.get("id") is not None]
        errors = [r for r in responses if r.get("id") is None]
        assert [r["ok"] for r in admitted] == [True, True]
        assert admitted[0]["op"] == "provision"
        assert admitted[0]["detail"]["chain_id"] == "chain-0"
        assert admitted[1]["detail"] == {"chain_id": "chain-0"}
        assert len(errors) == 1 and "bad request" in errors[0]["error"]
        assert (state / "journal.alvc").exists()

    def test_serve_restores_existing_state(
        self, capsys, monkeypatch, tmp_path
    ):
        state = tmp_path / "state"
        assert (
            self._serve(
                monkeypatch,
                [
                    "--state",
                    str(state),
                    "--build",
                    self.BUILD,
                    "--snapshot-on-exit",
                ],
                [
                    json.dumps(
                        {
                            "op": "provision",
                            "chain": ["dpi"],
                            "service": "backup",
                        }
                    )
                ],
            )
            == 0
        )
        assert (state / "snapshot.alvc").exists()
        capsys.readouterr()
        # Restart against the same directory: the chain survived and
        # can be torn down through the restored service.
        code = self._serve(
            monkeypatch,
            ["--state", str(state)],
            [json.dumps({"op": "teardown", "chain_id": "chain-0"})],
        )
        assert code == 0
        response = json.loads(capsys.readouterr().out.splitlines()[0])
        assert response["ok"] is True

    def test_serve_rejects_build_args_on_existing_journal(
        self, capsys, monkeypatch, tmp_path
    ):
        state = tmp_path / "state"
        assert (
            self._serve(
                monkeypatch,
                ["--state", str(state), "--build", self.BUILD],
                [],
            )
            == 0
        )
        capsys.readouterr()
        code = self._serve(
            monkeypatch,
            ["--state", str(state), "--build", "n_racks=9"],
            [],
        )
        assert code == 2
        assert "already has a journal" in capsys.readouterr().err

    def test_serve_rejects_malformed_build_spec(
        self, capsys, monkeypatch, tmp_path
    ):
        code = self._serve(
            monkeypatch,
            ["--state", str(tmp_path / "state"), "--build", "nonsense"],
            [],
        )
        assert code == 2
        assert "bad --build entry" in capsys.readouterr().err


class TestRun:
    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 4 — worked example" in output
        assert "ops-0,ops-2" in output

    def test_run_fig8(self, capsys):
        assert main(["run", "fig8"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 8 — worked example" in output
        assert "nat->firewall->dpi" in output

    def test_export_dir(self, capsys, tmp_path):
        target = tmp_path / "results"
        assert main(["run", "e11", "--export-dir", str(target)]) == 0
        exports = list(target.glob("e11-*.csv"))
        assert len(exports) == 1
        content = exports[0].read_text()
        assert content.startswith("servers,")

    def test_run_multiple(self, capsys):
        assert main(["run", "fig3", "e10"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 3" in output
        assert "E10" in output

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_mixed_known_unknown_rejected_before_running(self, capsys):
        assert main(["run", "fig4", "bogus"]) == 2
        captured = capsys.readouterr()
        assert "bogus" in captured.err
        # Nothing ran.
        assert "Fig. 4" not in captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        output = capsys.readouterr().out
        assert "# AL-VC reproduction report" in output
        assert "fig4" in output
        assert "| --- |" in output

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "REPORT.md"
        assert main(["report", str(target)]) == 0
        text = target.read_text()
        assert "fig8" in text
        assert "worked example" in text.lower()
