"""Stateful property test: random orchestration never breaks invariants.

A hypothesis rule-based state machine drives the orchestrator through
random provision / upgrade / modify / delete sequences and asserts, after
every step:

* slice isolation (no OPS in two slices);
* optical-capacity conservation (pool free + live reservations = total);
* SDN hygiene (rules exist only for live chains);
* cluster exclusivity in the default mode (≤ 1 chain per cluster).
"""

import dataclasses

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.orchestrator import NetworkOrchestrator
from repro.exceptions import ALVCError
from repro.nfv.functions import FunctionCatalog
from repro.topology.elements import ResourceVector
from repro.topology.generators import build_alvc_fabric
from repro.virtualization.machines import MachineInventory
from repro.virtualization.services import ServiceCatalog
from repro.virtualization.vm_placement import VmPlacementEngine

_SERVICES = ("web", "map-reduce", "sns")
_CHAIN_MENU = (
    ("firewall",),
    ("firewall", "nat"),
    ("nat", "dpi"),
    ("security-gateway", "firewall", "load-balancer"),
)


class OrchestratorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        dcn = build_alvc_fabric(
            n_racks=9, servers_per_rack=4, n_ops=9, seed=13
        )
        self.inventory = MachineInventory(dcn)
        services = ServiceCatalog.standard()
        engine = VmPlacementEngine(self.inventory, seed=13)
        for name in _SERVICES:
            for _ in range(4):
                engine.place(self.inventory.create_vm(services.get(name)))
        self.orchestrator = NetworkOrchestrator(self.inventory)
        for name in _SERVICES:
            self.orchestrator.cluster_manager.create_cluster(name)
        self.functions = FunctionCatalog.standard()
        self.pool_total = self._pool_total()
        self.next_id = 0

    def _pool_total(self) -> ResourceVector:
        pool = self.orchestrator.nfv_manager.pool
        free = pool.total_free()
        reserved = ResourceVector.zero()
        for instance in self.orchestrator.nfv_manager.live_instances():
            if instance.host in pool:
                reserved = reserved + instance.function.demand
        return free + reserved

    # ------------------------------------------------------------------
    @rule(
        service=st.sampled_from(_SERVICES),
        menu_index=st.integers(min_value=0, max_value=len(_CHAIN_MENU) - 1),
    )
    def provision(self, service, menu_index):
        chain = NetworkFunctionChain.from_names(
            f"chain-{self.next_id}", _CHAIN_MENU[menu_index], self.functions
        )
        self.next_id += 1
        request = ChainRequest(tenant="t", chain=chain, service=service)
        try:
            self.orchestrator.provision_chain(request)
        except ALVCError:
            pass  # occupied cluster / exhausted resources: legal refusals

    @precondition(lambda self: self.orchestrator.chains())
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete(self, pick):
        live = self.orchestrator.chains()
        target = live[pick % len(live)]
        self.orchestrator.delete_chain(target.chain_id)

    @precondition(lambda self: self.orchestrator.chains())
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def upgrade(self, pick):
        live = self.orchestrator.chains()
        target = live[pick % len(live)]
        self.orchestrator.upgrade_chain(target.chain_id)

    @precondition(lambda self: self.orchestrator.chains())
    @rule(
        pick=st.integers(min_value=0, max_value=10**6),
        menu_index=st.integers(min_value=0, max_value=len(_CHAIN_MENU) - 1),
    )
    def modify(self, pick, menu_index):
        live = self.orchestrator.chains()
        target = live[pick % len(live)]
        replacement = NetworkFunctionChain.from_names(
            f"chain-{self.next_id}", _CHAIN_MENU[menu_index], self.functions
        )
        self.next_id += 1
        try:
            self.orchestrator.modify_chain(target.chain_id, replacement)
        except ALVCError:
            pass

    # ------------------------------------------------------------------
    @invariant()
    def slices_isolated(self):
        self.orchestrator.slice_allocator.verify_isolation()

    @invariant()
    def one_chain_per_cluster(self):
        owners = [
            live.cluster.cluster_id for live in self.orchestrator.chains()
        ]
        assert len(owners) == len(set(owners))

    @invariant()
    def optical_capacity_conserved(self):
        assert self._pool_total() == self.pool_total

    @invariant()
    def sdn_rules_only_for_live_chains(self):
        live_ids = {c.chain_id for c in self.orchestrator.chains()}
        for flow in self.orchestrator.sdn.installed_flows():
            assert flow in live_ids
        if not live_ids:
            assert self.orchestrator.sdn.total_rules() == 0

    @invariant()
    def slice_per_live_cluster_only(self):
        clusters_with_chains = {
            live.cluster.cluster_id for live in self.orchestrator.chains()
        }
        slice_clusters = {
            s.cluster for s in self.orchestrator.slice_allocator.slices()
        }
        assert slice_clusters == clusters_with_chains


OrchestratorMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestOrchestratorStateMachine = OrchestratorMachine.TestCase
