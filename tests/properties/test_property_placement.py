"""Property-based tests for VNF placement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chaining import NetworkFunctionChain
from repro.core.placement import PlacementAlgorithm, PlacementSolver
from repro.nfv.functions import FunctionCatalog
from repro.optical.conversion import count_excursions
from repro.topology.elements import Domain, ResourceVector

CATALOG = FunctionCatalog.standard()
LIGHT = ("nat", "firewall", "load-balancer", "proxy", "security-gateway")
ALL_NAMES = LIGHT + ("dpi", "ids", "cache")


@st.composite
def placement_instances(draw):
    """A chain plus a pool of router capacities."""
    length = draw(st.integers(min_value=1, max_value=8))
    names = tuple(draw(st.sampled_from(ALL_NAMES)) for _ in range(length))
    chain = NetworkFunctionChain.from_names("chain-h", names, CATALOG)
    n_routers = draw(st.integers(min_value=0, max_value=3))
    pool = {
        f"ops-{index}": ResourceVector(
            cpu_cores=draw(st.sampled_from([0.5, 1, 2, 4, 8])),
            memory_gb=64,
            storage_gb=512,
        )
        for index in range(n_routers)
    }
    return chain, pool


@given(placement_instances(), st.sampled_from(list(PlacementAlgorithm)))
@settings(max_examples=80, deadline=None)
def test_capacity_never_exceeded(instance, algorithm):
    chain, pool = instance
    placement = PlacementSolver(dict(pool), seed=1).solve(chain, algorithm)
    used: dict[str, ResourceVector] = {}
    for placed in placement.assignments:
        if placed.domain is Domain.OPTICAL:
            used[placed.host] = (
                used.get(placed.host, ResourceVector.zero())
                + placed.function.demand
            )
    for host, total in used.items():
        assert total.fits_within(pool[host])


@given(placement_instances(), st.sampled_from(list(PlacementAlgorithm)))
@settings(max_examples=80, deadline=None)
def test_every_position_assigned_exactly_once(instance, algorithm):
    chain, pool = instance
    placement = PlacementSolver(dict(pool), seed=2).solve(chain, algorithm)
    positions = [placed.position for placed in placement.assignments]
    assert positions == list(range(len(chain)))


@given(placement_instances(), st.sampled_from(list(PlacementAlgorithm)))
@settings(max_examples=80, deadline=None)
def test_conversions_bounded_by_all_electronic(instance, algorithm):
    chain, pool = instance
    placement = PlacementSolver(dict(pool), seed=3).solve(chain, algorithm)
    ceiling = count_excursions([Domain.ELECTRONIC] * len(chain))
    assert 0 <= placement.conversions <= ceiling


@given(placement_instances())
@settings(max_examples=50, deadline=None)
def test_optimal_never_worse_than_other_algorithms(instance):
    chain, pool = instance
    optimal = PlacementSolver(dict(pool), seed=4).solve(
        chain, PlacementAlgorithm.OPTIMAL
    )
    for algorithm in (
        PlacementAlgorithm.ALL_ELECTRONIC,
        PlacementAlgorithm.RANDOM,
        PlacementAlgorithm.GREEDY,
    ):
        other = PlacementSolver(dict(pool), seed=4).solve(chain, algorithm)
        assert optimal.conversions <= other.conversions


@given(placement_instances())
@settings(max_examples=50, deadline=None)
def test_greedy_saved_conversions_consistent(instance):
    chain, pool = instance
    placement = PlacementSolver(dict(pool), seed=5).solve(chain)
    assert placement.conversions_saved() == (
        len(chain) - placement.conversions
    )


@given(placement_instances())
@settings(max_examples=50, deadline=None)
def test_improve_never_increases_conversions(instance):
    chain, pool = instance
    solver = PlacementSolver(dict(pool), seed=6)
    before = solver.solve(chain, PlacementAlgorithm.RANDOM)
    # Improve against the leftover capacity after the random placement.
    leftover = dict(pool)
    for placed in before.assignments:
        if placed.domain is Domain.OPTICAL:
            leftover[placed.host] = (
                leftover[placed.host] - placed.function.demand
            )
    after = PlacementSolver(leftover, seed=6).improve(before)
    assert after.conversions <= before.conversions
    # Existing optical assignments are preserved.
    assert set(before.optical_hosts().items()) <= set(
        after.optical_hosts().items()
    )
