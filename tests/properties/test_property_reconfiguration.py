"""Property-based tests: AL coverage survives arbitrary churn traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abstraction_layer import AlConstructor
from repro.core.reconfiguration import AlReconfigurator
from repro.exceptions import CoverInfeasibleError
from repro.topology.generators import build_alvc_fabric


@st.composite
def churn_traces(draw):
    """A fabric seed plus a sequence of add/remove churn decisions."""
    seed = draw(st.integers(min_value=0, max_value=50))
    decisions = draw(
        st.lists(st.booleans(), min_size=1, max_size=30)
    )
    return seed, decisions


@given(churn_traces())
@settings(max_examples=40, deadline=None)
def test_coverage_invariant_under_churn(trace):
    """After every add/remove the layer still covers every member."""
    seed, decisions = trace
    dcn = build_alvc_fabric(
        n_racks=6,
        servers_per_rack=4,
        n_ops=6,
        dual_homing_fraction=0.4,
        seed=seed,
    )
    servers = dcn.servers()
    members = servers[: len(servers) // 2]
    outside = servers[len(servers) // 2:]
    attachments = {s: dcn.tors_of_server(s) for s in members}
    layer = AlConstructor(dcn).construct("cluster-h", attachments)
    reconfigurator = AlReconfigurator(dcn, layer, attachments)
    available = set(dcn.optical_switches()) - layer.ops_ids

    pool_in = list(members)
    pool_out = list(outside)
    for add in decisions:
        if add and pool_out:
            server = pool_out.pop()
            try:
                result = reconfigurator.add_vm(
                    server, dcn.tors_of_server(server), available
                )
            except CoverInfeasibleError:
                pool_out.append(server)
                continue
            available -= result.layer.ops_ids
            pool_in.append(server)
        elif not add and len(pool_in) > 1:
            server = pool_in.pop()
            reconfigurator.remove_vm(server)
            pool_out.append(server)
        # The invariant: every tracked machine reaches a selected ToR and
        # every selected ToR reaches a selected OPS.
        reconfigurator.verify()


@given(churn_traces())
@settings(max_examples=30, deadline=None)
def test_membership_tracks_operations(trace):
    seed, decisions = trace
    dcn = build_alvc_fabric(
        n_racks=4, servers_per_rack=4, n_ops=4, seed=seed
    )
    servers = dcn.servers()
    members = servers[:8]
    attachments = {s: dcn.tors_of_server(s) for s in members}
    layer = AlConstructor(dcn).construct("cluster-h", attachments)
    reconfigurator = AlReconfigurator(dcn, layer, attachments)
    available = set(dcn.optical_switches()) - layer.ops_ids

    expected = set(members)
    spare = [s for s in servers if s not in expected]
    for add in decisions:
        if add and spare:
            server = spare.pop()
            try:
                reconfigurator.add_vm(
                    server, dcn.tors_of_server(server), available
                )
            except CoverInfeasibleError:
                spare.append(server)
                continue
            expected.add(server)
        elif not add and len(expected) > 1:
            server = sorted(expected)[0]
            reconfigurator.remove_vm(server)
            expected.discard(server)
            spare.append(server)
        assert set(reconfigurator.machines) == expected
