"""Property-based tests for max-min fair allocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fairshare import link_of, max_min_fair_rates

_LINKS = [link_of(f"n{i}", f"n{i+1}") for i in range(6)]


@st.composite
def allocations(draw):
    """Random flows over a 6-link line with random capacities."""
    capacities = {
        link: draw(
            st.floats(min_value=0.5, max_value=100, allow_nan=False)
        )
        for link in _LINKS
    }
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flows = {}
    for index in range(n_flows):
        start = draw(st.integers(min_value=0, max_value=len(_LINKS) - 1))
        end = draw(st.integers(min_value=start, max_value=len(_LINKS) - 1))
        flows[f"f{index}"] = _LINKS[start : end + 1]
    return flows, capacities


@given(allocations())
@settings(max_examples=100, deadline=None)
def test_no_link_oversubscribed(allocation):
    flows, capacities = allocation
    rates = max_min_fair_rates(flows, capacities)
    for link, capacity in capacities.items():
        used = sum(
            rates[flow]
            for flow, links in flows.items()
            if link in links and rates[flow] != float("inf")
        )
        assert used <= capacity + 1e-6


@given(allocations())
@settings(max_examples=100, deadline=None)
def test_all_rates_positive(allocation):
    flows, capacities = allocation
    rates = max_min_fair_rates(flows, capacities)
    assert all(rate > 0 for rate in rates.values())


@given(allocations())
@settings(max_examples=100, deadline=None)
def test_every_flow_has_a_saturated_bottleneck(allocation):
    """Max-min optimality: each flow crosses a saturated link on which
    its rate is maximal among that link's flows."""
    flows, capacities = allocation
    rates = max_min_fair_rates(flows, capacities)
    for flow, links in flows.items():
        if not links:
            continue
        found = False
        for link in links:
            used = sum(
                rates[other]
                for other, other_links in flows.items()
                if link in other_links
            )
            saturated = used >= capacities[link] - 1e-6
            maximal = all(
                rates[flow] >= rates[other] - 1e-6
                for other, other_links in flows.items()
                if link in other_links
            )
            if saturated and maximal:
                found = True
                break
        assert found, f"{flow} lacks a bottleneck"


@given(allocations())
@settings(max_examples=60, deadline=None)
def test_deterministic(allocation):
    flows, capacities = allocation
    first = max_min_fair_rates(flows, capacities)
    second = max_min_fair_rates(flows, capacities)
    assert first == second


@given(allocations(), st.floats(min_value=1.1, max_value=5, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_scaling_capacities_scales_rates(allocation, factor):
    flows, capacities = allocation
    base = max_min_fair_rates(flows, capacities)
    scaled = max_min_fair_rates(
        flows, {link: cap * factor for link, cap in capacities.items()}
    )
    for flow in flows:
        if base[flow] == float("inf"):
            continue
        assert scaled[flow] > 0
        assert abs(scaled[flow] - base[flow] * factor) < 1e-5 * max(
            1.0, base[flow] * factor
        )
