"""Property-based tests for ResourceVector arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.elements import ResourceVector

components = st.floats(
    min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.builds(ResourceVector, components, components, components)


@given(vectors, vectors)
@settings(max_examples=100, deadline=None)
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(vectors, vectors, vectors)
@settings(max_examples=100, deadline=None)
def test_addition_associative_within_tolerance(a, b, c):
    left = (a + b) + c
    right = a + (b + c)
    assert abs(left.cpu_cores - right.cpu_cores) < 1e-6
    assert abs(left.memory_gb - right.memory_gb) < 1e-6
    assert abs(left.storage_gb - right.storage_gb) < 1e-6


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_zero_is_identity(a):
    assert a + ResourceVector.zero() == a


@given(vectors, vectors)
@settings(max_examples=100, deadline=None)
def test_add_then_subtract_roundtrip(a, b):
    result = (a + b) - b
    assert abs(result.cpu_cores - a.cpu_cores) < 1e-6
    assert abs(result.memory_gb - a.memory_gb) < 1e-6
    assert abs(result.storage_gb - a.storage_gb) < 1e-6


@given(vectors, vectors)
@settings(max_examples=100, deadline=None)
def test_fits_within_sum(a, b):
    assert a.fits_within(a + b)
    assert b.fits_within(a + b)


@given(vectors)
@settings(max_examples=100, deadline=None)
def test_fits_within_reflexive(a):
    assert a.fits_within(a)


@given(vectors, vectors, vectors)
@settings(max_examples=100, deadline=None)
def test_fits_within_transitive(a, b, c):
    if a.fits_within(b) and b.fits_within(c):
        assert a.fits_within(c)


@given(vectors, st.floats(min_value=0, max_value=100, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_scaling_preserves_fit_direction(a, factor):
    scaled = a.scaled(factor)
    if factor <= 1:
        assert scaled.fits_within(a)
    else:
        assert a.fits_within(scaled)


@given(st.lists(vectors, max_size=10))
@settings(max_examples=60, deadline=None)
def test_total_equals_fold(vector_list):
    total = ResourceVector.total(vector_list)
    folded = ResourceVector.zero()
    for vector in vector_list:
        folded = folded + vector
    assert total == folded
