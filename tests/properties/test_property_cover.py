"""Property-based tests for the covering algorithms."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import (
    exact_min_cover,
    greedy_marginal_cover,
    greedy_max_weight_cover,
    random_cover,
)


@st.composite
def cover_instances(draw, max_elements=10, max_candidates=8):
    """A feasible set-cover instance: (universe, candidates, weights)."""
    n_elements = draw(st.integers(min_value=1, max_value=max_elements))
    universe = frozenset(range(n_elements))
    n_candidates = draw(st.integers(min_value=1, max_value=max_candidates))
    candidates = {}
    for index in range(n_candidates):
        members = draw(
            st.frozensets(
                st.integers(min_value=0, max_value=n_elements - 1),
                min_size=0,
                max_size=n_elements,
            )
        )
        candidates[f"s-{index}"] = members
    # Guarantee feasibility: one candidate covering the leftovers.
    covered = frozenset().union(*candidates.values()) if candidates else frozenset()
    leftovers = universe - covered
    if leftovers:
        candidates["s-fix"] = leftovers
    weights = {
        name: draw(st.integers(min_value=0, max_value=20))
        for name in candidates
    }
    return universe, candidates, weights


@given(cover_instances())
@settings(max_examples=60, deadline=None)
def test_greedy_max_weight_always_covers(instance):
    universe, candidates, weights = instance
    result = greedy_max_weight_cover(universe, candidates, weights)
    assert result.covered() == universe


@given(cover_instances())
@settings(max_examples=60, deadline=None)
def test_greedy_max_weight_no_useless_selections(instance):
    universe, candidates, weights = instance
    result = greedy_max_weight_cover(universe, candidates, weights)
    for step in result.steps:
        if step.selected:
            assert step.newly_covered, "selected a redundant candidate"


@given(cover_instances())
@settings(max_examples=60, deadline=None)
def test_greedy_max_weight_selection_irredundant_prefixwise(instance):
    universe, candidates, weights = instance
    result = greedy_max_weight_cover(universe, candidates, weights)
    # Each selected candidate added something not covered by the ones
    # selected before it.
    covered = set()
    for candidate in result.selection_order():
        assert not candidates[candidate] <= covered
        covered |= candidates[candidate]


@given(cover_instances())
@settings(max_examples=60, deadline=None)
def test_marginal_greedy_always_covers(instance):
    universe, candidates, _ = instance
    result = greedy_marginal_cover(universe, candidates)
    assert result.covered() == universe


@given(cover_instances(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_random_cover_always_covers(instance, seed):
    universe, candidates, _ = instance
    result = random_cover(universe, candidates, random.Random(seed))
    assert result.covered() == universe


@given(cover_instances(max_elements=7, max_candidates=6))
@settings(max_examples=40, deadline=None)
def test_exact_is_lower_bound_for_all_heuristics(instance):
    universe, candidates, weights = instance
    exact = exact_min_cover(universe, candidates)
    greedy = greedy_max_weight_cover(universe, candidates, weights)
    marginal = greedy_marginal_cover(universe, candidates)
    rand = random_cover(universe, candidates, random.Random(1))
    assert exact.size <= greedy.size
    assert exact.size <= marginal.size
    assert exact.size <= rand.size


@given(cover_instances(max_elements=7, max_candidates=6))
@settings(max_examples=40, deadline=None)
def test_exact_result_is_a_cover(instance):
    universe, candidates, _ = instance
    result = exact_min_cover(universe, candidates)
    covered = frozenset().union(
        *(candidates[name] for name in result.selected)
    ) if result.selected else frozenset()
    assert universe <= covered


@given(cover_instances())
@settings(max_examples=40, deadline=None)
def test_greedy_deterministic(instance):
    universe, candidates, weights = instance
    first = greedy_max_weight_cover(universe, candidates, weights)
    second = greedy_max_weight_cover(universe, candidates, weights)
    assert first.selected == second.selected
