"""Property-based tests over generated fabrics and AL construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abstraction_layer import AlConstructionStrategy, AlConstructor
from repro.optical.conversion import count_excursions
from repro.topology.elements import Domain
from repro.topology.generators import build_alvc_fabric
from repro.topology.validation import validate_topology


fabric_params = st.fixed_dictionaries(
    {
        "n_racks": st.integers(min_value=1, max_value=10),
        "servers_per_rack": st.integers(min_value=1, max_value=6),
        "n_ops": st.integers(min_value=1, max_value=8),
        "tor_uplinks": st.integers(min_value=1, max_value=4),
        "dual_homing_fraction": st.floats(
            min_value=0, max_value=1, allow_nan=False
        ),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


@given(fabric_params)
@settings(max_examples=40, deadline=None)
def test_generated_fabrics_always_validate(params):
    dcn = build_alvc_fabric(**params)
    assert validate_topology(dcn).ok


@given(fabric_params)
@settings(max_examples=40, deadline=None)
def test_census_matches_parameters(params):
    dcn = build_alvc_fabric(**params)
    summary = dcn.summary()
    assert summary["servers"] == params["n_racks"] * params["servers_per_rack"]
    assert summary["tors"] == params["n_racks"]
    assert summary["optical_switches"] == params["n_ops"]


@given(fabric_params, st.sampled_from([
    AlConstructionStrategy.VERTEX_COVER_GREEDY,
    AlConstructionStrategy.MARGINAL_GREEDY,
    AlConstructionStrategy.RANDOM,
]))
@settings(max_examples=40, deadline=None)
def test_al_construction_covers_everything(params, strategy):
    dcn = build_alvc_fabric(**params)
    layer = AlConstructor(
        dcn, strategy=strategy, seed=params["seed"]
    ).construct_for_servers("cluster-h", dcn.servers())
    # Machine stage: every server reaches a selected ToR.
    for server in dcn.servers():
        assert set(dcn.tors_of_server(server)) & layer.tor_ids
    # OPS stage: every selected ToR reaches a selected OPS.
    for tor in layer.tor_ids:
        assert set(dcn.ops_of_tor(tor)) & layer.ops_ids
    # The AL never exceeds the core.
    assert layer.size <= params["n_ops"]


@given(fabric_params)
@settings(max_examples=30, deadline=None)
def test_greedy_al_within_core_and_deterministic(params):
    dcn = build_alvc_fabric(**params)
    first = AlConstructor(dcn).construct_for_servers(
        "cluster-h", dcn.servers()
    )
    second = AlConstructor(dcn).construct_for_servers(
        "cluster-h", dcn.servers()
    )
    assert first.ops_ids == second.ops_ids
    assert first.tor_ids == second.tor_ids


@given(
    st.lists(
        st.sampled_from([Domain.ELECTRONIC, Domain.OPTICAL]),
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_excursion_merge_is_lower_bound(domains):
    merged = count_excursions(domains, merge_consecutive=True)
    per_visit = count_excursions(domains)
    assert merged <= per_visit
    assert per_visit == sum(
        1 for domain in domains if domain is Domain.ELECTRONIC
    )
    # Merged counts the maximal electronic runs.
    runs = 0
    previous = Domain.OPTICAL
    for domain in domains:
        if domain is Domain.ELECTRONIC and previous is Domain.OPTICAL:
            runs += 1
        previous = domain
    assert merged == runs


@given(fabric_params)
@settings(max_examples=30, deadline=None)
def test_serialization_round_trip(params):
    from repro.topology.serialization import (
        topology_from_json,
        topology_to_json,
    )

    dcn = build_alvc_fabric(**params)
    restored = topology_from_json(topology_to_json(dcn))
    assert restored.summary() == dcn.summary()
    assert set(restored.graph.nodes) == set(dcn.graph.nodes)
    assert set(
        frozenset((a, b)) for a, b, _ in restored.edges()
    ) == set(frozenset((a, b)) for a, b, _ in dcn.edges())
