"""Property-based tests for branching-chain placement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.branching import (
    Branch,
    BranchingChain,
    BranchingPlacementSolver,
)
from repro.core.placement import PlacementAlgorithm
from repro.nfv.functions import FunctionCatalog
from repro.topology.elements import Domain, ResourceVector

CATALOG = FunctionCatalog.standard()
NAMES = ("nat", "firewall", "load-balancer", "proxy", "dpi")


@st.composite
def branching_instances(draw):
    common_len = draw(st.integers(min_value=0, max_value=3))
    common = tuple(
        CATALOG.get(draw(st.sampled_from(NAMES))) for _ in range(common_len)
    )
    n_branches = draw(st.integers(min_value=1, max_value=4))
    weights = [
        draw(st.integers(min_value=1, max_value=10))
        for _ in range(n_branches)
    ]
    total = sum(weights)
    branches = []
    for index in range(n_branches):
        length = draw(st.integers(min_value=1, max_value=3))
        functions = tuple(
            CATALOG.get(draw(st.sampled_from(NAMES))) for _ in range(length)
        )
        branches.append(
            Branch(f"b{index}", functions, weights[index] / total)
        )
    chain = BranchingChain(
        chain_id="chain-h", common=common, branches=tuple(branches)
    )
    n_routers = draw(st.integers(min_value=0, max_value=3))
    pool = {
        f"ops-{i}": ResourceVector(
            draw(st.sampled_from([1.0, 2.0, 4.0])), 32, 256
        )
        for i in range(n_routers)
    }
    return chain, pool


@given(branching_instances())
@settings(max_examples=50, deadline=None)
def test_expected_conversions_bounds(instance):
    chain, pool = instance
    placement = BranchingPlacementSolver(dict(pool)).solve(chain)
    ceiling = len(chain.common) + max(
        len(branch.functions) for branch in chain.branches
    )
    assert 0.0 <= placement.expected_conversions() <= ceiling + 1e-9


@given(branching_instances())
@settings(max_examples=50, deadline=None)
def test_capacity_never_exceeded_across_branches(instance):
    chain, pool = instance
    placement = BranchingPlacementSolver(dict(pool)).solve(chain)
    used: dict[str, ResourceVector] = {}
    placements = list(placement.branch_placements.values())
    if placement.common_placement is not None:
        placements.append(placement.common_placement)
    for chain_placement in placements:
        for placed in chain_placement.assignments:
            if placed.domain is Domain.OPTICAL:
                used[placed.host] = (
                    used.get(placed.host, ResourceVector.zero())
                    + placed.function.demand
                )
    for host, total in used.items():
        assert total.fits_within(pool[host])


@given(branching_instances())
@settings(max_examples=40, deadline=None)
def test_all_electronic_is_ceiling(instance):
    chain, pool = instance
    solver = BranchingPlacementSolver(dict(pool))
    greedy = solver.solve(chain, PlacementAlgorithm.GREEDY)
    electronic = BranchingPlacementSolver({}).solve(
        chain, PlacementAlgorithm.ALL_ELECTRONIC
    )
    assert greedy.expected_conversions() <= (
        electronic.expected_conversions() + 1e-9
    )


@given(branching_instances())
@settings(max_examples=40, deadline=None)
def test_every_branch_placed(instance):
    chain, pool = instance
    placement = BranchingPlacementSolver(dict(pool)).solve(chain)
    assert set(placement.branch_placements) == {
        branch.name for branch in chain.branches
    }
    for branch in chain.branches:
        branch_placement = placement.branch_placements[branch.name]
        assert len(branch_placement.assignments) == len(branch.functions)
