"""Property-based tests for the event-driven simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import ClusterManager
from repro.sim.event_simulator import EventDrivenFlowSimulator
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.virtualization.machines import MachineInventory
from repro.virtualization.services import ServiceCatalog
from repro.virtualization.vm_placement import VmPlacementEngine
from repro.topology.generators import build_alvc_fabric


def _testbed(seed: int):
    dcn = build_alvc_fabric(
        n_racks=4, servers_per_rack=3, n_ops=4, seed=seed
    )
    inventory = MachineInventory(dcn)
    services = ServiceCatalog.standard()
    engine = VmPlacementEngine(inventory, seed=seed)
    for name in ("web", "sns"):
        for _ in range(4):
            engine.place(inventory.create_vm(services.get(name)))
    clusters = ClusterManager(inventory)
    for name in ("web", "sns"):
        clusters.create_cluster(name)
    return inventory, clusters


@st.composite
def workloads(draw):
    seed = draw(st.integers(min_value=0, max_value=30))
    n_flows = draw(st.integers(min_value=1, max_value=40))
    rate = draw(st.floats(min_value=1.0, max_value=200.0, allow_nan=False))
    load_aware = draw(st.booleans())
    return seed, n_flows, rate, load_aware


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_every_flow_completes_after_arrival(workload):
    seed, n_flows, rate, load_aware = workload
    inventory, clusters = _testbed(seed)
    generator = TrafficGenerator(
        inventory, TrafficConfig(arrival_rate=rate), seed=seed
    )
    flows = generator.flows(n_flows)
    report = EventDrivenFlowSimulator(
        inventory, clusters, load_aware=load_aware
    ).run(flows)
    assert report.flows == n_flows
    by_id = {record.flow_id: record for record in report.completed}
    for flow in flows:
        record = by_id[flow.flow_id]
        assert record.completion_time >= flow.arrival_time - 1e-9
        assert record.size_bytes == flow.size_bytes


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_byte_conservation_on_links(workload):
    """Bytes moved over links equal each flow's size times its hops."""
    seed, n_flows, rate, load_aware = workload
    inventory, clusters = _testbed(seed)
    generator = TrafficGenerator(
        inventory, TrafficConfig(arrival_rate=rate), seed=seed
    )
    flows = generator.flows(n_flows)
    report = EventDrivenFlowSimulator(
        inventory, clusters, load_aware=load_aware
    ).run(flows)
    expected = sum(
        record.size_bytes * record.hops for record in report.completed
    )
    moved = sum(report.link_busy_byte_seconds.values())
    assert abs(moved - expected) <= 1e-6 * max(1.0, expected)


@given(workloads())
@settings(max_examples=20, deadline=None)
def test_makespan_bounds(workload):
    seed, n_flows, rate, load_aware = workload
    inventory, clusters = _testbed(seed)
    generator = TrafficGenerator(
        inventory, TrafficConfig(arrival_rate=rate), seed=seed
    )
    flows = generator.flows(n_flows)
    report = EventDrivenFlowSimulator(
        inventory, clusters, load_aware=load_aware
    ).run(flows)
    last_arrival = max(flow.arrival_time for flow in flows)
    last_completion = max(
        record.completion_time for record in report.completed
    )
    assert report.makespan >= last_arrival - 1e-9
    assert abs(report.makespan - last_completion) <= 1e-9
