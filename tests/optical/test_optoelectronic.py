"""Tests for optoelectronic router capacity ledgers."""

import pytest

from repro.exceptions import PlacementError, UnknownEntityError
from repro.optical.optoelectronic import OptoelectronicHost, OptoelectronicPool
from repro.topology.elements import ResourceVector


@pytest.fixture
def host():
    return OptoelectronicHost(
        "ops-0", ResourceVector(cpu_cores=4, memory_gb=8, storage_gb=64)
    )


class TestHost:
    def test_initially_free(self, host):
        assert host.used.is_zero()
        assert host.free == host.capacity

    def test_host_reserves(self, host):
        demand = ResourceVector(cpu_cores=1, memory_gb=2, storage_gb=4)
        host.host("vnf-0", demand)
        assert host.used == demand
        assert host.free == host.capacity - demand
        assert "vnf-0" in host

    def test_oversized_rejected(self, host):
        with pytest.raises(PlacementError):
            host.host("vnf-0", ResourceVector(cpu_cores=5))

    def test_duplicate_rejected(self, host):
        demand = ResourceVector(cpu_cores=1)
        host.host("vnf-0", demand)
        with pytest.raises(PlacementError):
            host.host("vnf-0", demand)

    def test_fills_to_capacity_exactly(self, host):
        host.host("vnf-0", host.capacity)
        assert host.free.is_zero()

    def test_evict_releases(self, host):
        demand = ResourceVector(cpu_cores=2)
        host.host("vnf-0", demand)
        returned = host.evict("vnf-0")
        assert returned == demand
        assert host.used.is_zero()
        assert "vnf-0" not in host

    def test_evict_unknown_raises(self, host):
        with pytest.raises(UnknownEntityError):
            host.evict("vnf-99")

    def test_hosted_vnfs_sorted(self, host):
        host.host("vnf-2", ResourceVector(cpu_cores=1))
        host.host("vnf-0", ResourceVector(cpu_cores=1))
        assert host.hosted_vnfs() == ["vnf-0", "vnf-2"]

    def test_fits_query(self, host):
        assert host.fits(ResourceVector(cpu_cores=4))
        host.host("vnf-0", ResourceVector(cpu_cores=3))
        assert not host.fits(ResourceVector(cpu_cores=2))


class TestPool:
    def _pool(self):
        return OptoelectronicPool(
            [
                OptoelectronicHost("ops-0", ResourceVector(cpu_cores=2)),
                OptoelectronicHost("ops-1", ResourceVector(cpu_cores=4)),
            ]
        )

    def test_duplicate_host_rejected(self):
        with pytest.raises(PlacementError):
            OptoelectronicPool(
                [
                    OptoelectronicHost("ops-0", ResourceVector(cpu_cores=1)),
                    OptoelectronicHost("ops-0", ResourceVector(cpu_cores=1)),
                ]
            )

    def test_from_network_excludes_plain_ops(self, paper_dcn):
        pool = OptoelectronicPool.from_network(
            paper_dcn, paper_dcn.optical_switches()
        )
        # The paper example makes all four switches optoelectronic.
        assert len(pool) == 4

    def test_from_network_subset(self, paper_dcn):
        pool = OptoelectronicPool.from_network(paper_dcn, ["ops-0", "ops-2"])
        assert pool.host_ids() == ["ops-0", "ops-2"]

    def test_first_fit_in_sorted_order(self):
        pool = self._pool()
        assert pool.first_fit(ResourceVector(cpu_cores=1)) == "ops-0"
        assert pool.first_fit(ResourceVector(cpu_cores=3)) == "ops-1"
        assert pool.first_fit(ResourceVector(cpu_cores=5)) is None

    def test_best_fit_prefers_tightest(self):
        pool = self._pool()
        # Both fit a 1-cpu demand; ops-0 (2 free) is tighter than ops-1 (4).
        assert pool.best_fit(ResourceVector(cpu_cores=1)) == "ops-0"

    def test_best_fit_none_when_nothing_fits(self):
        pool = self._pool()
        assert pool.best_fit(ResourceVector(cpu_cores=100)) is None

    def test_place_reserves(self):
        pool = self._pool()
        chosen = pool.place("vnf-0", ResourceVector(cpu_cores=2))
        assert chosen == "ops-0"
        assert pool.get("ops-0").free.cpu_cores == 0

    def test_place_raises_when_full(self):
        pool = self._pool()
        with pytest.raises(PlacementError):
            pool.place("vnf-0", ResourceVector(cpu_cores=10))

    def test_total_free(self):
        pool = self._pool()
        assert pool.total_free().cpu_cores == 6
        pool.place("vnf-0", ResourceVector(cpu_cores=2))
        assert pool.total_free().cpu_cores == 4

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownEntityError):
            self._pool().get("ops-9")

    def test_snapshot(self):
        pool = self._pool()
        pool.place("vnf-0", ResourceVector(cpu_cores=1))
        snapshot = pool.snapshot()
        assert snapshot["ops-0"]["used"].cpu_cores == 1
        assert snapshot["ops-1"]["used"].is_zero()

    def test_contains(self):
        pool = self._pool()
        assert "ops-0" in pool
        assert "ops-9" not in pool
