"""Tests for OPS port accounting."""

import pytest

from repro.exceptions import InsufficientResourcesError, UnknownEntityError
from repro.optical.packet_switch import PortAllocator


class TestInitialState:
    def test_physical_links_pre_charged(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        # ops-0 connects tor-0 and tor-3 in the Fig. 4 fabric.
        assert allocator.used("ops-0") == 2
        assert allocator.holders_of("ops-0") == {"physical": 2}

    def test_capacity_from_spec(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        spec = paper_dcn.spec_of("ops-0")
        assert allocator.capacity("ops-0") == spec.port_count

    def test_unknown_switch_raises(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        with pytest.raises(UnknownEntityError):
            allocator.capacity("ops-99")


class TestReservation:
    def test_reserve_and_free(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        before = allocator.free("ops-0")
        allocator.reserve("ops-0", "slice-0", 3)
        assert allocator.free("ops-0") == before - 3

    def test_reserve_zero_rejected(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        with pytest.raises(ValueError):
            allocator.reserve("ops-0", "slice-0", 0)

    def test_over_reservation_rejected(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        free = allocator.free("ops-0")
        with pytest.raises(InsufficientResourcesError):
            allocator.reserve("ops-0", "slice-0", free + 1)

    def test_exact_fill_allowed(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        allocator.reserve("ops-0", "slice-0", allocator.free("ops-0"))
        assert allocator.free("ops-0") == 0

    def test_release_returns_count(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        allocator.reserve("ops-0", "slice-0", 2)
        allocator.reserve("ops-0", "slice-0", 1)
        assert allocator.release("ops-0", "slice-0") == 3
        assert "slice-0" not in allocator.holders_of("ops-0")

    def test_release_unknown_holder_is_zero(self, paper_dcn):
        allocator = PortAllocator(paper_dcn)
        assert allocator.release("ops-0", "ghost") == 0
