"""Tests for O/E/O conversion counting and cost models."""

import pytest

from repro.optical.conversion import (
    ConversionAccounting,
    ConversionModel,
    boundary_crossings,
    count_excursions,
    domain_sequence,
)
from repro.topology.elements import Domain

E = Domain.ELECTRONIC
O = Domain.OPTICAL


class TestCountExcursionsPerVisit:
    """Default semantics: every electronic VNF costs a conversion."""

    def test_empty_chain(self):
        assert count_excursions([]) == 0

    def test_all_optical_is_free(self):
        assert count_excursions([O, O, O]) == 0

    def test_fig8_two_electronic(self):
        # Fig. 8: two electronic VNFs => two conversions.
        assert count_excursions([E, O, E]) == 2

    def test_all_electronic_counts_each(self):
        assert count_excursions([E, E, E]) == 3

    def test_adjacent_electronic_not_merged(self):
        assert count_excursions([E, E, O]) == 2


class TestCountExcursionsMerged:
    """Excursion semantics: consecutive electronic VNFs share one."""

    def test_adjacent_electronic_merged(self):
        assert count_excursions([E, E, O], merge_consecutive=True) == 1

    def test_separated_electronic_not_merged(self):
        assert count_excursions([E, O, E], merge_consecutive=True) == 2

    def test_all_electronic_is_one_run(self):
        assert count_excursions([E] * 5, merge_consecutive=True) == 1

    def test_alternating(self):
        assert (
            count_excursions([E, O, E, O, E], merge_consecutive=True) == 3
        )

    def test_merged_never_exceeds_per_visit(self):
        for pattern in ([E], [E, E], [E, O, E], [O, E, E, O, E]):
            assert count_excursions(
                pattern, merge_consecutive=True
            ) <= count_excursions(pattern)


class TestBoundaryCrossings:
    def test_no_crossing(self):
        assert boundary_crossings([E, E, E]) == 0

    def test_single_crossing(self):
        assert boundary_crossings([E, O]) == 1

    def test_round_trip(self):
        assert boundary_crossings([E, O, E]) == 2

    def test_empty(self):
        assert boundary_crossings([]) == 0


class TestDomainSequence:
    def test_sequence_over_fabric(self, paper_dcn):
        path = ["server-0", "tor-0", "ops-0", "tor-3", "server-5"]
        assert domain_sequence(paper_dcn, path) == [E, E, O, E, E]


class TestConversionModel:
    def test_cost_linear_in_flow_size(self):
        model = ConversionModel(cost_per_gb=2.0)
        assert model.conversion_cost(1e9, 1) == pytest.approx(2.0)
        assert model.conversion_cost(2e9, 1) == pytest.approx(4.0)

    def test_cost_linear_in_conversions(self):
        model = ConversionModel(cost_per_gb=1.0)
        assert model.conversion_cost(1e9, 3) == pytest.approx(3.0)

    def test_zero_conversions_free(self):
        assert ConversionModel().conversion_cost(1e12, 0) == 0.0

    def test_energy_from_pj_per_bit(self):
        model = ConversionModel(pj_per_bit=20.0)
        # 1 GB = 8e9 bits; 8e9 * 20e-12 J = 0.16 J per conversion.
        assert model.conversion_energy_joules(1e9, 1) == pytest.approx(0.16)

    def test_negative_inputs_rejected(self):
        model = ConversionModel()
        with pytest.raises(ValueError):
            model.conversion_cost(-1, 1)
        with pytest.raises(ValueError):
            model.conversion_energy_joules(1, -1)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConversionModel(cost_per_gb=-1)
        with pytest.raises(ValueError):
            ConversionModel(pj_per_bit=-1)


class TestConversionAccounting:
    def test_record_accumulates(self):
        accounting = ConversionAccounting()
        accounting.record(1e9, 2)
        accounting.record(2e9, 1)
        assert accounting.flows == 2
        assert accounting.total_conversions == 3
        assert accounting.total_bytes_converted == pytest.approx(4e9)

    def test_mean_conversions(self):
        accounting = ConversionAccounting()
        accounting.record(1e9, 2)
        accounting.record(1e9, 0)
        assert accounting.mean_conversions_per_flow == 1.0

    def test_mean_of_empty_is_zero(self):
        assert ConversionAccounting().mean_conversions_per_flow == 0.0

    def test_record_many(self):
        accounting = ConversionAccounting()
        accounting.record_many([(1e9, 1), (1e9, 1), (1e9, 1)])
        assert accounting.flows == 3

    def test_as_dict_keys(self):
        accounting = ConversionAccounting()
        accounting.record(1e9, 1)
        snapshot = accounting.as_dict()
        assert snapshot["flows"] == 1
        assert snapshot["total_cost"] > 0
        assert snapshot["total_energy_joules"] > 0

    def test_cost_uses_model(self):
        accounting = ConversionAccounting(model=ConversionModel(cost_per_gb=10))
        accounting.record(1e9, 1)
        assert accounting.total_cost == pytest.approx(10.0)
