"""Tests for wavelength assignment."""

import pytest

from repro.exceptions import SlicingError
from repro.optical.wavelengths import WavelengthAssigner


@pytest.fixture
def assigner():
    return WavelengthAssigner({"ops-0": 2, "ops-1": 2, "ops-2": 2})


class TestAssignment:
    def test_first_slice_gets_wavelength_zero(self, assigner):
        assignment = assigner.assign("slice-0", ["ops-0"])
        assert assignment.wavelength == 0

    def test_disjoint_slices_share_wavelength(self, assigner):
        first = assigner.assign("slice-0", ["ops-0"])
        second = assigner.assign("slice-1", ["ops-1"])
        assert first.wavelength == second.wavelength == 0

    def test_overlapping_slices_get_distinct_wavelengths(self, assigner):
        first = assigner.assign("slice-0", ["ops-0", "ops-1"])
        second = assigner.assign("slice-1", ["ops-1", "ops-2"])
        assert first.wavelength != second.wavelength

    def test_capacity_exhaustion_raises(self, assigner):
        assigner.assign("slice-0", ["ops-0"])
        assigner.assign("slice-1", ["ops-0"])
        with pytest.raises(SlicingError):
            assigner.assign("slice-2", ["ops-0"])

    def test_duplicate_slice_rejected(self, assigner):
        assigner.assign("slice-0", ["ops-0"])
        with pytest.raises(SlicingError):
            assigner.assign("slice-0", ["ops-1"])

    def test_empty_switch_set_rejected(self, assigner):
        with pytest.raises(SlicingError):
            assigner.assign("slice-0", [])

    def test_unknown_switch_rejected(self, assigner):
        with pytest.raises(SlicingError):
            assigner.assign("slice-0", ["ops-99"])

    def test_limit_is_min_over_switches(self):
        assigner = WavelengthAssigner({"ops-0": 1, "ops-1": 5})
        assigner.assign("slice-0", ["ops-0", "ops-1"])
        # ops-0 only offers one wavelength, so a second overlapping slice
        # cannot be served even though ops-1 has room.
        with pytest.raises(SlicingError):
            assigner.assign("slice-1", ["ops-0"])


class TestRelease:
    def test_release_frees_wavelength(self, assigner):
        assigner.assign("slice-0", ["ops-0"])
        assigner.assign("slice-1", ["ops-0"])
        assigner.release("slice-0")
        # Released index 0 becomes available again.
        third = assigner.assign("slice-2", ["ops-0"])
        assert third.wavelength == 0

    def test_release_unknown_raises(self, assigner):
        with pytest.raises(SlicingError):
            assigner.release("slice-9")


class TestQueries:
    def test_assignment_of(self, assigner):
        assigner.assign("slice-0", ["ops-0", "ops-1"])
        assignment = assigner.assignment_of("slice-0")
        assert assignment.switches == frozenset({"ops-0", "ops-1"})

    def test_assignment_of_unknown_raises(self, assigner):
        with pytest.raises(SlicingError):
            assigner.assignment_of("slice-9")

    def test_assignments_sorted(self, assigner):
        assigner.assign("slice-1", ["ops-1"])
        assigner.assign("slice-0", ["ops-0"])
        names = [a.slice_id for a in assigner.assignments()]
        assert names == ["slice-0", "slice-1"]

    def test_zero_capacity_rejected(self):
        with pytest.raises(SlicingError):
            WavelengthAssigner({"ops-0": 0})

    def test_from_network(self, paper_dcn):
        assigner = WavelengthAssigner.from_network(paper_dcn)
        assignment = assigner.assign("slice-0", paper_dcn.optical_switches())
        assert assignment.wavelength == 0


class TestExtend:
    def test_extend_keeps_wavelength(self, assigner):
        assigner.assign("slice-0", ["ops-0"])
        extended = assigner.extend("slice-0", ["ops-1"])
        assert extended.wavelength == 0
        assert extended.switches == frozenset({"ops-0", "ops-1"})

    def test_extend_idempotent_for_subset(self, assigner):
        assigner.assign("slice-0", ["ops-0", "ops-1"])
        extended = assigner.extend("slice-0", ["ops-1"])
        assert extended.switches == frozenset({"ops-0", "ops-1"})

    def test_extend_unknown_slice_raises(self, assigner):
        with pytest.raises(SlicingError):
            assigner.extend("slice-9", ["ops-0"])

    def test_extend_unknown_switch_raises(self, assigner):
        assigner.assign("slice-0", ["ops-0"])
        with pytest.raises(SlicingError):
            assigner.extend("slice-0", ["ops-99"])

    def test_extend_conflicting_wavelength_raises(self, assigner):
        first = assigner.assign("slice-0", ["ops-0"])
        second = assigner.assign("slice-1", ["ops-1"])
        assert first.wavelength == second.wavelength  # disjoint reuse
        with pytest.raises(SlicingError):
            assigner.extend("slice-0", ["ops-1"])

    def test_extend_beyond_capacity_raises(self):
        assigner = WavelengthAssigner({"ops-0": 2, "ops-1": 1})
        assigner.assign("slice-other", ["ops-0"])     # wavelength 0
        assigner.assign("slice-0", ["ops-0"])         # wavelength 1
        with pytest.raises(SlicingError):
            assigner.extend("slice-0", ["ops-1"])     # ops-1 max is 1
