"""Tests for node domain classification."""

import pytest

from repro.exceptions import UnknownEntityError
from repro.optical.domain import domain_of_node, is_optical_node
from repro.topology.elements import Domain


class TestDomainOfNode:
    def test_server_is_electronic(self, paper_dcn):
        assert domain_of_node(paper_dcn, "server-0") is Domain.ELECTRONIC

    def test_tor_is_electronic(self, paper_dcn):
        # Packets at a ToR exist in electronic form; the ToR carries the
        # E/O transceiver toward the core.
        assert domain_of_node(paper_dcn, "tor-0") is Domain.ELECTRONIC

    def test_ops_is_optical(self, paper_dcn):
        assert domain_of_node(paper_dcn, "ops-0") is Domain.OPTICAL

    def test_unknown_node_raises(self, paper_dcn):
        with pytest.raises(UnknownEntityError):
            domain_of_node(paper_dcn, "nothing")


class TestIsOpticalNode:
    def test_predicate(self, paper_dcn):
        assert is_optical_node(paper_dcn, "ops-1")
        assert not is_optical_node(paper_dcn, "server-1")
