"""The sim-layer fault model: FaultEvent, normalize_failures, and the
simulator's native handling of link cut / degrade / repair events.

Node-crash behaviour (the legacy tuple path) is covered by
``test_event_simulator.py``; this module exercises the richer
:class:`~repro.sim.faults.FaultEvent` schedule entries introduced with
the chaos subsystem.
"""

import math

import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.sim.event_simulator import ENGINES, EventDrivenFlowSimulator
from repro.sim.faults import (
    LINK_DOWN,
    NODE_DOWN,
    FaultEvent,
    FaultKind,
    normalize_failures,
)
from repro.sim.flows import Flow
from repro.topology.datacenter import DataCenterNetwork
from repro.topology.elements import (
    Domain,
    LinkSpec,
    OpticalSwitchSpec,
    ServerSpec,
    TorSpec,
)
from repro.virtualization.machines import MachineInventory


# ----------------------------------------------------------------------
# FaultEvent — construction and canonicalization
# ----------------------------------------------------------------------
class TestFaultEventModel:
    def test_link_targets_are_canonicalized(self):
        event = FaultEvent(
            time=1.0, kind=FaultKind.LINK_CUT, target=("tor-1", "ops-0")
        )
        assert event.target == ("ops-0", "tor-1")
        assert event.link == frozenset({"ops-0", "tor-1"})

    def test_canonical_spellings_compare_equal(self):
        forward = FaultEvent(
            time=2.0, kind=FaultKind.LINK_REPAIR, target=("a", "b")
        )
        backward = FaultEvent(
            time=2.0, kind=FaultKind.LINK_REPAIR, target=("b", "a")
        )
        assert forward == backward

    def test_node_kinds_reject_pair_targets(self):
        with pytest.raises(ValidationError):
            FaultEvent(
                time=0.0, kind=FaultKind.OPS_CRASH, target=("a", "b")
            )

    @pytest.mark.parametrize("target", ["ops-0", ("a", "a"), ("a",)])
    def test_link_kinds_reject_malformed_targets(self, target):
        with pytest.raises(ValidationError):
            FaultEvent(time=0.0, kind=FaultKind.LINK_CUT, target=target)

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent(
                time=-1.0, kind=FaultKind.NODE_REPAIR, target="ops-0"
            )

    @pytest.mark.parametrize("severity", [0.0, 1.0, 1.5, -0.2])
    def test_degrade_severity_must_be_fractional(self, severity):
        with pytest.raises(ValidationError):
            FaultEvent(
                time=0.0,
                kind=FaultKind.LINK_DEGRADE,
                target=("a", "b"),
                severity=severity,
            )

    def test_severity_is_degrade_only(self):
        with pytest.raises(ValidationError):
            FaultEvent(
                time=0.0,
                kind=FaultKind.LINK_CUT,
                target=("a", "b"),
                severity=0.5,
            )

    def test_node_event_has_no_link(self):
        event = FaultEvent(
            time=0.0, kind=FaultKind.SERVER_CRASH, target="srv-0"
        )
        assert event.is_node_event
        with pytest.raises(ValidationError):
            event.link


# ----------------------------------------------------------------------
# normalize_failures — one deterministic record stream for both forms
# ----------------------------------------------------------------------
class TestNormalizeFailures:
    def test_mixed_forms_sort_deterministically(self):
        schedule = [
            FaultEvent(
                time=5.0, kind=FaultKind.LINK_CUT, target=("b", "a")
            ),
            (1.0, "ops-2"),
            FaultEvent(time=1.0, kind=FaultKind.OPS_CRASH, target="ops-1"),
        ]
        records = normalize_failures(schedule)
        assert [record.time for record in records] == [1.0, 1.0, 5.0]
        # same instant: lexicographic on the target label
        assert records[0].payload == "ops-1"
        assert records[1].payload == "ops-2"
        assert records[2].payload == frozenset({"a", "b"})
        assert records[2].action == LINK_DOWN

    def test_input_order_is_irrelevant(self):
        schedule = [
            (3.0, "tor-0"),
            FaultEvent(time=1.0, kind=FaultKind.NODE_REPAIR, target="x"),
        ]
        assert normalize_failures(schedule) == normalize_failures(
            list(reversed(schedule))
        )

    def test_legacy_tuple_maps_to_node_down(self):
        (record,) = normalize_failures([(2, "ops-0")])
        assert record.action == NODE_DOWN
        assert record.payload == "ops-0"
        assert record.time == 2.0
        assert record.severity == 1.0

    @pytest.mark.parametrize(
        "entry", [object(), (1.0,), (1.0, 5), (1.0, "a", "b")]
    )
    def test_malformed_entries_rejected(self, entry):
        with pytest.raises(ValidationError):
            normalize_failures([entry])


# ----------------------------------------------------------------------
# Simulator link events, on purpose-built tiny fabrics
# ----------------------------------------------------------------------
def _linear_inventory() -> MachineInventory:
    """srv-0 — tor-0 — ops-0 — tor-1 — srv-1 (one path, 10 Gbps)."""
    dcn = DataCenterNetwork("linear")
    dcn.add_server(ServerSpec(server_id="srv-0"))
    dcn.add_server(ServerSpec(server_id="srv-1"))
    dcn.add_tor(TorSpec(tor_id="tor-0"))
    dcn.add_tor(TorSpec(tor_id="tor-1", rack=1))
    dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-0"))
    dcn.connect("srv-0", "tor-0")
    dcn.connect("srv-1", "tor-1")
    for tor in ("tor-0", "tor-1"):
        dcn.connect(
            tor,
            "ops-0",
            LinkSpec(domain=Domain.OPTICAL, bandwidth_gbps=10.0),
        )
    return MachineInventory(dcn)


def _dual_path_inventory() -> MachineInventory:
    """Two disjoint OPS paths between the racks:

    srv-0 — tor-0 — {ops-0, ops-1} — tor-1 — srv-1
    """
    dcn = DataCenterNetwork("dual")
    dcn.add_server(ServerSpec(server_id="srv-0"))
    dcn.add_server(ServerSpec(server_id="srv-1"))
    dcn.add_tor(TorSpec(tor_id="tor-0"))
    dcn.add_tor(TorSpec(tor_id="tor-1", rack=1))
    dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-0"))
    dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-1"))
    dcn.connect("srv-0", "tor-0")
    dcn.connect("srv-1", "tor-1")
    for ops in ("ops-0", "ops-1"):
        for tor in ("tor-0", "tor-1"):
            dcn.connect(
                tor,
                ops,
                LinkSpec(domain=Domain.OPTICAL, bandwidth_gbps=10.0),
            )
    return MachineInventory(dcn)


def _one_flow(inventory, service_catalog, *, size_bytes, arrival_time=0.0):
    web = service_catalog.get("web")
    first = inventory.create_vm(web)
    second = inventory.create_vm(web)
    inventory.place(first, "srv-0")
    inventory.place(second, "srv-1")
    return Flow(
        flow_id="flow-0",
        source=first.vm_id,
        destination=second.vm_id,
        size_bytes=size_bytes,
        arrival_time=arrival_time,
    )


# All optical links run at 10 Gbps = 1.25e9 bytes/s; we match the
# electronic default so the inter-rack trunk is the uncontended rate.
_RATE = 1.25e9


class TestLinkCut:
    def test_mid_flow_cut_reroutes_and_keeps_progress(
        self, service_catalog
    ):
        inventory = _dual_path_inventory()
        flow = _one_flow(
            inventory, service_catalog, size_bytes=2 * _RATE
        )  # 2 s uncontended
        cut = FaultEvent(
            time=1.0, kind=FaultKind.LINK_CUT, target=("tor-0", "ops-0")
        )
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([flow], failures=[cut])
        assert report.dropped == ()
        assert report.reroutes == 1
        (done,) = report.completed
        # progress survives the reroute: 1 s done, 1 s left via ops-1
        assert done.completion_time == pytest.approx(2.0)
        assert done.hops == 4

    def test_cut_with_no_alternate_path_drops_the_flow(
        self, service_catalog
    ):
        inventory = _linear_inventory()
        flow = _one_flow(inventory, service_catalog, size_bytes=2 * _RATE)
        cut = FaultEvent(
            time=1.0, kind=FaultKind.LINK_CUT, target=("tor-1", "ops-0")
        )
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([flow], failures=[cut])
        assert report.completed == ()
        assert report.dropped == ("flow-0",)
        assert report.reroutes == 0

    def test_arrival_after_cut_routes_around_it(self, service_catalog):
        inventory = _dual_path_inventory()
        flow = _one_flow(
            inventory,
            service_catalog,
            size_bytes=_RATE,
            arrival_time=5.0,
        )
        cut = FaultEvent(
            time=1.0, kind=FaultKind.LINK_CUT, target=("tor-0", "ops-0")
        )
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([flow], failures=[cut])
        (done,) = report.completed
        # routed over the survivor from the start: no reroute counted
        assert report.reroutes == 0
        assert done.completion_time == pytest.approx(6.0)

    def test_unknown_link_is_rejected_up_front(self, service_catalog):
        inventory = _linear_inventory()
        flow = _one_flow(inventory, service_catalog, size_bytes=_RATE)
        bogus = FaultEvent(
            time=1.0, kind=FaultKind.LINK_CUT, target=("srv-0", "srv-1")
        )
        with pytest.raises(SimulationError):
            EventDrivenFlowSimulator(inventory).run(
                [flow], failures=[bogus]
            )


class TestLinkDegrade:
    def test_degrade_stretches_the_tail_of_the_transfer(
        self, service_catalog
    ):
        inventory = _linear_inventory()
        flow = _one_flow(inventory, service_catalog, size_bytes=2 * _RATE)
        degrade = FaultEvent(
            time=1.0,
            kind=FaultKind.LINK_DEGRADE,
            target=("tor-0", "ops-0"),
            severity=0.5,
        )
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([flow], failures=[degrade])
        (done,) = report.completed
        # 1 s at full rate, the remaining 1.25e9 bytes at half rate
        assert done.completion_time == pytest.approx(3.0)
        assert report.dropped == ()
        assert report.reroutes == 0  # connectivity preserved

    def test_degrades_compound_multiplicatively(self, service_catalog):
        inventory = _linear_inventory()
        flow = _one_flow(inventory, service_catalog, size_bytes=2 * _RATE)
        schedule = [
            FaultEvent(
                time=1.0,
                kind=FaultKind.LINK_DEGRADE,
                target=("tor-0", "ops-0"),
                severity=0.5,
            ),
            FaultEvent(
                time=2.0,
                kind=FaultKind.LINK_DEGRADE,
                target=("tor-0", "ops-0"),
                severity=0.5,
            ),
        ]
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([flow], failures=schedule)
        (done,) = report.completed
        # 1 s full, 1 s at 1/2, the remaining half-second's worth of
        # bytes crawls at 1/4 rate: two more seconds
        assert done.completion_time == pytest.approx(4.0)


class TestLinkRepair:
    def test_repair_restores_service_for_later_flows(
        self, service_catalog
    ):
        inventory = _linear_inventory()
        flow = _one_flow(
            inventory,
            service_catalog,
            size_bytes=2 * _RATE,
            arrival_time=5.0,
        )
        schedule = [
            FaultEvent(
                time=1.0,
                kind=FaultKind.LINK_CUT,
                target=("tor-0", "ops-0"),
            ),
            FaultEvent(
                time=4.0,
                kind=FaultKind.LINK_REPAIR,
                target=("tor-0", "ops-0"),
            ),
        ]
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([flow], failures=schedule)
        (done,) = report.completed
        # full pre-failure capacity is back: 2 s transfer from t=5
        assert done.completion_time == pytest.approx(7.0)
        assert report.dropped == ()

    def test_node_repair_does_not_revive_a_cut_link(
        self, service_catalog
    ):
        inventory = _linear_inventory()
        doomed = _one_flow(
            inventory,
            service_catalog,
            size_bytes=_RATE,
            arrival_time=3.0,
        )
        schedule = [
            # the OPS dies, taking both trunk links with it ...
            FaultEvent(
                time=0.5, kind=FaultKind.OPS_CRASH, target="ops-0"
            ),
            # ... one of them is *also* explicitly cut while down ...
            FaultEvent(
                time=1.0,
                kind=FaultKind.LINK_CUT,
                target=("tor-0", "ops-0"),
            ),
            # ... so the node repair must bring back only the other.
            FaultEvent(
                time=2.0, kind=FaultKind.NODE_REPAIR, target="ops-0"
            ),
        ]
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([doomed], failures=schedule)
        # tor-0 — ops-0 stayed cut: the fabric is still partitioned
        assert report.completed == ()
        assert report.dropped == ("flow-0",)

    def test_link_repair_after_node_repair_completes_the_recovery(
        self, service_catalog
    ):
        inventory = _linear_inventory()
        flow = _one_flow(
            inventory,
            service_catalog,
            size_bytes=_RATE,
            arrival_time=6.0,
        )
        schedule = [
            FaultEvent(
                time=0.5, kind=FaultKind.OPS_CRASH, target="ops-0"
            ),
            FaultEvent(
                time=1.0,
                kind=FaultKind.LINK_CUT,
                target=("tor-0", "ops-0"),
            ),
            FaultEvent(
                time=2.0, kind=FaultKind.NODE_REPAIR, target="ops-0"
            ),
            FaultEvent(
                time=4.0,
                kind=FaultKind.LINK_REPAIR,
                target=("tor-0", "ops-0"),
            ),
        ]
        report = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=10.0
        ).run([flow], failures=schedule)
        (done,) = report.completed
        assert done.completion_time == pytest.approx(7.0)


# ----------------------------------------------------------------------
# Engine parity on the richer fault vocabulary
# ----------------------------------------------------------------------
class TestEngineParityOnLinkFaults:
    def _schedule(self):
        return [
            FaultEvent(
                time=0.8,
                kind=FaultKind.LINK_DEGRADE,
                target=("tor-0", "ops-0"),
                severity=0.3,
            ),
            FaultEvent(
                time=1.5,
                kind=FaultKind.LINK_CUT,
                target=("tor-0", "ops-0"),
            ),
            FaultEvent(
                time=2.5, kind=FaultKind.OPS_CRASH, target="ops-1"
            ),
            FaultEvent(
                time=4.0, kind=FaultKind.NODE_REPAIR, target="ops-1"
            ),
            FaultEvent(
                time=5.0,
                kind=FaultKind.LINK_REPAIR,
                target=("tor-0", "ops-0"),
            ),
        ]

    def _flows(self, inventory, service_catalog):
        web = service_catalog.get("web")
        vms = [inventory.create_vm(web) for _ in range(4)]
        for index, vm in enumerate(vms):
            inventory.place(vm, f"srv-{index % 2}")
        flows = []
        for index in range(6):
            source = vms[index % 2]
            destination = vms[2 + (index + 1) % 2]
            flows.append(
                Flow(
                    flow_id=f"flow-{index}",
                    source=source.vm_id,
                    destination=destination.vm_id,
                    size_bytes=_RATE * (0.5 + 0.25 * index),
                    arrival_time=0.3 * index,
                )
            )
        return flows

    def test_all_engines_agree_on_link_fault_schedules(
        self, service_catalog
    ):
        reports = {}
        for engine in ENGINES:
            inventory = _dual_path_inventory()
            flows = self._flows(inventory, service_catalog)
            simulator = EventDrivenFlowSimulator(
                inventory,
                default_bandwidth_gbps=10.0,
                engines={"sim_engine": engine},
            )
            reports[engine] = simulator.run(
                flows, failures=self._schedule()
            )
        baseline = reports["incremental"]
        assert baseline.completed or baseline.dropped  # non-degenerate
        for engine in ("from_scratch", "vector"):
            assert reports[engine].completed == baseline.completed
            assert reports[engine].dropped == baseline.dropped
            assert reports[engine].reroutes == baseline.reroutes
        legacy = reports["legacy"]
        assert legacy.dropped == baseline.dropped
        assert legacy.reroutes == baseline.reroutes
        assert len(legacy.completed) == len(baseline.completed)
        for ours, theirs in zip(baseline.completed, legacy.completed):
            assert ours.flow_id == theirs.flow_id
            assert ours.hops == theirs.hops
            assert math.isclose(
                ours.completion_time,
                theirs.completion_time,
                rel_tol=1e-9,
            )
