"""Units for the struct-of-arrays data plane (``repro.sim.vector``).

``FlowTable`` slot lifecycle and compaction, ``LinkBusyView`` mapping
semantics, and ``VectorFairShareEngine`` incremental bookkeeping — the
bit-parity arguments live in ``tests/sim/test_vector_parity.py``.
"""

import pickle

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.fairshare import max_min_fair_rates
from repro.sim.vector import FlowTable, LinkBusyView, VectorFairShareEngine

A = frozenset({"a", "b"})
B = frozenset({"b", "c"})
C = frozenset({"c", "d"})

CAPS = {A: 10.0, B: 4.0, C: 8.0}


def _engine(caps=None, **kwargs):
    return VectorFairShareEngine(dict(caps or CAPS), **kwargs)


# ----------------------------------------------------------------------
# FlowTable
# ----------------------------------------------------------------------
class TestFlowTable:
    def test_add_remove_roundtrip(self):
        table = FlowTable()
        slot = table.add("f0", np.array([0, 1], dtype=np.int32))
        assert slot == 0
        assert "f0" in table
        assert len(table) == 1
        assert table.remove("f0") == slot
        assert "f0" not in table
        assert len(table) == 0

    def test_duplicate_add_rejected(self):
        table = FlowTable()
        table.add("f0", np.array([0], dtype=np.int32))
        with pytest.raises(SimulationError, match="already active"):
            table.add("f0", np.array([1], dtype=np.int32))

    def test_remove_unknown_rejected(self):
        with pytest.raises(SimulationError, match="not active"):
            FlowTable().remove("ghost")

    def test_slots_are_activation_ordered(self):
        table = FlowTable()
        for index in range(5):
            table.add(f"f{index}", np.array([index], dtype=np.int32))
        table.remove("f2")
        assert table.active_slots().tolist() == [0, 1, 3, 4]

    def test_gather_links_preserves_path_order(self):
        table = FlowTable()
        table.add("f0", np.array([3, 1], dtype=np.int32))
        table.add("f1", np.array([2], dtype=np.int32))
        flat, lens = table.gather_links(np.array([0, 1]))
        assert flat.tolist() == [3, 1, 2]
        assert lens.tolist() == [2, 1]

    def test_gather_links_empty(self):
        flat, lens = FlowTable().gather_links(np.empty(0, dtype=np.int64))
        assert flat.shape[0] == 0
        assert lens.shape[0] == 0

    def test_has_dup_flag_inferred_and_explicit(self):
        table = FlowTable()
        loop = table.add("loop", np.array([0, 1, 0], dtype=np.int32))
        straight = table.add("straight", np.array([0, 1], dtype=np.int32))
        forced = table.add(
            "forced", np.array([2], dtype=np.int32), has_dup=True
        )
        assert bool(table.has_dup[loop])
        assert not bool(table.has_dup[straight])
        assert bool(table.has_dup[forced])

    def test_growth_preserves_state(self):
        table = FlowTable(capacity=16)
        for index in range(200):
            table.add(f"f{index}", np.array([index % 7], dtype=np.int32))
        assert len(table) == 200
        flat, lens = table.gather_links(table.active_slots())
        assert flat.tolist() == [index % 7 for index in range(200)]
        assert lens.tolist() == [1] * 200

    def test_compaction_renumbers_in_relative_order(self):
        table = FlowTable(compact_slack=1)
        for index in range(8):
            table.add(f"f{index}", np.array([index], dtype=np.int32))
        table.has_dup[3] = True  # f3 survives with its flag
        for index in (0, 2, 4, 6, 1):
            table.remove(f"f{index}")
        # Dead slots now outnumber live ones; the next add compacts.
        table.add("fresh", np.array([9], dtype=np.int32))
        assert table.size == len(table) == 4
        survivors = [table.flow_ids[slot] for slot in table.active_slots()]
        assert survivors == ["f3", "f5", "f7", "fresh"]
        flat, _ = table.gather_links(table.active_slots())
        assert flat.tolist() == [3, 5, 7, 9]
        flagged = [
            flow
            for flow, slot in table.slot_of.items()
            if table.has_dup[slot]
        ]
        assert flagged == ["f3"]


# ----------------------------------------------------------------------
# LinkBusyView
# ----------------------------------------------------------------------
class TestLinkBusyView:
    def _view(self):
        return LinkBusyView((A, B, C), np.array([5.0, 0.0, 2.5]))

    def test_only_busy_links_visible(self):
        view = self._view()
        assert set(view) == {A, C}
        assert len(view) == 2
        assert view[A] == 5.0
        with pytest.raises(KeyError):
            view[B]
        with pytest.raises(KeyError):
            view[frozenset({"x", "y"})]

    def test_equals_plain_dict(self):
        view = self._view()
        assert view == {A: 5.0, C: 2.5}
        assert not view == {A: 5.0}
        assert not view == {A: 5.0, C: 99.0}
        assert view.to_dict() == {A: 5.0, C: 2.5}

    def test_pickles_as_plain_dict(self):
        revived = pickle.loads(pickle.dumps(self._view()))
        assert isinstance(revived, dict)
        assert revived == {A: 5.0, C: 2.5}

    def test_mean_utilization_matches_manual(self):
        view = self._view()
        got = view.mean_utilization({A: 10.0, B: 4.0, C: 8.0}, 2.0)
        manual = (5.0 / (10.0 * 2.0) + 2.5 / (8.0 * 2.0)) / 2.0
        assert got == pytest.approx(manual)
        assert view.mean_utilization({A: 10.0, C: 8.0}, 0.0) == 0.0

    @pytest.mark.parametrize(
        "caps, match",
        [
            ({C: 8.0}, "no capacity entry"),
            ({A: -1.0, C: 8.0}, "negative capacity"),
            ({A: 0.0, C: 8.0}, "zero-capacity"),
        ],
    )
    def test_mean_utilization_validation(self, caps, match):
        with pytest.raises(SimulationError, match=match):
            self._view().mean_utilization(caps, 1.0)


# ----------------------------------------------------------------------
# VectorFairShareEngine
# ----------------------------------------------------------------------
class TestVectorFairShareEngine:
    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SimulationError, match="non-positive"):
            _engine({A: 0.0})

    def test_unknown_link_rejected(self):
        engine = _engine()
        with pytest.raises(SimulationError, match="unknown link"):
            engine.add_flow("f0", [frozenset({"x", "y"})])

    def test_duplicate_flow_rejected(self):
        engine = _engine()
        engine.add_flow("f0", [A])
        with pytest.raises(SimulationError, match="already active"):
            engine.add_flow("f0", [B])

    def test_remove_unknown_flow_rejected(self):
        with pytest.raises(SimulationError, match="not active"):
            _engine().remove_flow("ghost")

    def test_counts_track_add_remove(self):
        engine = _engine()
        engine.add_flow("f0", [A, B])
        engine.add_flow("f1", [B])
        assert engine.link_counts() == {A: 1, B: 2}
        assert engine.active_flows == 2
        assert engine.loaded_links == 2
        engine.remove_flow("f0")
        assert engine.link_counts() == {B: 1}

    def test_remove_link_refuses_crossing_flows(self):
        engine = _engine()
        engine.add_flow("f0", [A])
        with pytest.raises(SimulationError, match="active flows"):
            engine.remove_link(A)
        engine.remove_flow("f0")
        engine.remove_link(A)
        assert A not in engine.capacities()
        engine.remove_link(frozenset({"x", "y"}))  # unknown: no-op

    def test_set_capacity_validates_and_restores(self):
        engine = _engine()
        with pytest.raises(SimulationError, match="positive"):
            engine.set_capacity(A, 0.0)
        engine.remove_link(A)
        engine.set_capacity(A, 6.0)
        assert engine.capacities()[A] == 6.0

    def test_set_capacity_appends_unknown_link(self):
        engine = _engine()
        fresh = frozenset({"x", "y"})
        before = engine.n_links
        engine.set_capacity(fresh, 3.0)
        assert engine.n_links == before + 1
        assert engine.capacities()[fresh] == 3.0
        engine.add_flow("f0", [fresh])
        assert engine.rates_by_flow() == {"f0": 3.0}

    def test_linkless_flow_gets_infinite_rate(self):
        engine = _engine()
        engine.add_flow("f0", [])
        assert engine.rates_by_flow() == {"f0": np.inf}

    def test_empty_recompute(self):
        assert _engine().recompute().shape[0] == 0

    def test_rates_match_reference_kernel(self):
        engine = _engine()
        paths = {"f0": [A, B], "f1": [B, C], "f2": [C]}
        for flow, path in paths.items():
            engine.add_flow(flow, path)
        assert engine.rates_by_flow() == max_min_fair_rates(paths, CAPS)

    def test_cyclic_path_freezes_once(self):
        engine = _engine()
        paths = {"f0": [A, B, A], "f1": [B], "f2": [A]}
        for flow, path in paths.items():
            engine.add_flow(flow, path)
        assert engine.rates_by_flow() == max_min_fair_rates(paths, CAPS)

    def test_rounds_telemetry_observed(self):
        from repro.observability.runtime import Telemetry
        from repro.sim.fairshare import ROUNDS_BUCKETS

        telemetry = Telemetry.enabled_instance()
        engine = _engine(telemetry=telemetry)
        engine.add_flow("f0", [A, B])
        engine.add_flow("f1", [B])
        engine.recompute()
        histogram = telemetry.histogram(
            "alvc_fairshare_vector_rounds", "", ROUNDS_BUCKETS
        )
        assert histogram.count >= 1


# ----------------------------------------------------------------------
# FlowTable bulk admission (add_many)
# ----------------------------------------------------------------------
class TestFlowTableBulk:
    def _pools(self, spec):
        return [np.array(pool, dtype=np.int32) for pool in spec]

    def test_add_many_matches_serial_adds(self):
        serial = FlowTable(capacity=4)
        bulk = FlowTable(capacity=4)
        pools = self._pools([[0, 1], [2], [], [1, 1, 3]])
        flows = [f"f{index}" for index in range(len(pools))]
        dups = [False, False, False, True]
        for flow, pool, dup in zip(flows, pools, dups):
            serial.add(flow, pool, dup)
        slots = bulk.add_many(flows, pools, dups)
        assert slots.tolist() == [0, 1, 2, 3]
        assert bulk.slot_of == serial.slot_of
        assert bulk.flow_ids == serial.flow_ids
        assert bulk.size == serial.size
        assert bulk.active_count == serial.active_count
        assert bulk.pool_len == serial.pool_len
        for name in ("link_start", "link_len", "has_dup", "alive"):
            got = getattr(bulk, name)[: bulk.size]
            want = getattr(serial, name)[: serial.size]
            assert got.tolist() == want.tolist(), name
        flat_bulk, lens_bulk = bulk.gather_links(bulk.active_slots())
        flat_serial, lens_serial = serial.gather_links(
            serial.active_slots()
        )
        assert flat_bulk.tolist() == flat_serial.tolist()
        assert lens_bulk.tolist() == lens_serial.tolist()
        assert np.all(np.isinf(bulk.eta[: bulk.size]))
        assert not bulk.rate[: bulk.size].any()
        assert not bulk.remaining[: bulk.size].any()

    def test_add_many_empty(self):
        table = FlowTable()
        assert table.add_many([], [], []).shape[0] == 0
        assert len(table) == 0

    def test_add_many_duplicate_rejected_atomically(self):
        table = FlowTable()
        table.add("f0", np.array([0], dtype=np.int32))
        size = table.size
        pool_len = table.pool_len
        with pytest.raises(SimulationError, match="already active"):
            table.add_many(
                ["f1", "f0"],
                self._pools([[1], [2]]),
                [False, False],
            )
        # No partial allocation: the duplicate was detected up front.
        assert table.size == size
        assert table.pool_len == pool_len
        assert "f1" not in table

    def test_add_many_grows_slots_and_pool(self):
        table = FlowTable(capacity=2)
        pools = self._pools([[index % 5] * 3 for index in range(64)])
        flows = [f"f{index}" for index in range(64)]
        slots = table.add_many(flows, pools, [True] * 64)
        assert slots.tolist() == list(range(64))
        flat, lens = table.gather_links(table.active_slots())
        assert lens.tolist() == [3] * 64
        assert flat.tolist() == sum(([i % 5] * 3 for i in range(64)), [])


# ----------------------------------------------------------------------
# Compaction amortization (S1): the predicate is evaluated once per
# remove() — the only operation that can flip it — and add paths only
# check the cached flag.
# ----------------------------------------------------------------------
class TestCompactionAmortization:
    def _filled(self, n, slack):
        table = FlowTable(compact_slack=slack)
        for index in range(n):
            table.add(f"f{index}", np.array([index], dtype=np.int32))
        return table

    def test_flag_flips_in_remove_not_add(self):
        table = self._filled(8, 1)
        for index in range(4):
            table.remove(f"f{index}")
        # dead (4) == live (4): bound not exceeded, no compaction due.
        assert not table._compact_pending
        table.remove("f4")
        # dead (5) > max(1, live=3): pending now, but nothing compacts
        # until the next admission.
        assert table._compact_pending
        assert table.size == 8
        table.add("fresh", np.array([9], dtype=np.int32))
        assert not table._compact_pending
        assert table.size == len(table) == 4

    def test_dead_equals_live_boundary_does_not_compact(self):
        table = self._filled(6, 0)
        for index in range(3):
            table.remove(f"f{index}")
        assert not table._compact_pending
        table.add("fresh", np.array([7], dtype=np.int32))
        assert table.size == 7  # no compaction happened

    def test_compact_slack_exactly_met_does_not_compact(self):
        # slack=4 dominates live: dead == slack is not > slack.
        table = self._filled(5, 4)
        for index in range(4):
            table.remove(f"f{index}")
        assert not table._compact_pending
        table.remove("f4")
        # dead (5) > max(slack=4, live=0): now pending.
        assert table._compact_pending

    def test_add_many_honors_pending_compaction(self):
        table = self._filled(8, 1)
        for index in range(5):
            table.remove(f"f{index}")
        assert table._compact_pending
        slots = table.add_many(
            ["a", "b"],
            [np.array([0], dtype=np.int32)] * 2,
            [False, False],
        )
        # Compaction ran first: three survivors then the new pair.
        assert slots.tolist() == [3, 4]
        assert table.size == 5

    def test_on_compact_hook_sees_live_slots(self):
        table = self._filled(6, 1)
        seen = []
        table.on_compact = lambda live: seen.append(live.tolist())
        for index in range(4):
            table.remove(f"f{index}")
        table.add("fresh", np.array([8], dtype=np.int32))
        assert seen == [[4, 5]]


# ----------------------------------------------------------------------
# BatchedFairShareEngine: class aggregation + compiled kernel
# ----------------------------------------------------------------------
class TestBatchedEngine:
    def _batched(self, caps=None, **kwargs):
        from repro.sim.vector import BatchedFairShareEngine

        return BatchedFairShareEngine(dict(caps or CAPS), **kwargs)

    def test_interning_dedupes_classes(self):
        engine = self._batched()
        engine.add_flow("f0", [A, B])
        engine.add_flow("f1", [A, B])
        engine.add_flow("f2", [B, C])
        assert engine.n_classes == 2

    def test_rates_match_vector_engine(self):
        batched = self._batched()
        vector = _engine()
        paths = {"f0": [A, B], "f1": [B, C], "f2": [C], "f3": [A, B]}
        for flow, path in paths.items():
            batched.add_flow(flow, path)
            vector.add_flow(flow, path)
        assert (
            batched.recompute().tobytes() == vector.recompute().tobytes()
        )
        assert batched.rates_by_flow() == max_min_fair_rates(paths, CAPS)

    def test_dup_class_falls_back_to_vector_path(self):
        engine = self._batched()
        engine.add_flow("f0", [A, B, A])
        engine.add_flow("f1", [B])
        assert engine.rates_by_flow() == max_min_fair_rates(
            {"f0": [A, B, A], "f1": [B]}, CAPS
        )

    def test_set_capacity_appends_link_and_rebuilds(self):
        extra = frozenset({"d", "e"})
        engine = self._batched()
        engine.add_flow("f0", [A])
        engine.recompute()
        engine.set_capacity(extra, 2.0)
        engine.add_flow("f1", [extra, A])
        paths = {"f0": [A], "f1": [extra, A]}
        assert engine.rates_by_flow() == max_min_fair_rates(
            paths, {**CAPS, extra: 2.0}
        )

    def test_compaction_renumbers_classes(self):
        table = FlowTable(compact_slack=1)
        engine = self._batched(table=table)
        for index in range(8):
            engine.add_flow(f"f{index}", [A, B] if index % 2 else [C])
        for index in range(5):
            engine.remove_flow(f"f{index}")
        engine.add_flow("fresh", [C])  # triggers compaction
        paths = {"f5": [A, B], "f6": [C], "f7": [A, B], "fresh": [C]}
        assert engine.rates_by_flow() == max_min_fair_rates(paths, CAPS)

    def test_kernel_matches_numpy_bitwise(self, monkeypatch):
        import random as _random

        from repro.sim import ckernel

        if ckernel.waterfill_kernel() is None:
            pytest.skip("no C compiler in this environment")

        for seed in range(20):
            rng = _random.Random(seed)
            nodes = [f"n{index}" for index in range(rng.randint(4, 10))]
            caps = {}
            while len(caps) < rng.randint(3, 12):
                a, b = rng.sample(nodes, 2)
                caps[frozenset({a, b})] = rng.choice(
                    [1.0, 2.5, 4.0, 10.0]
                )
            links = list(caps)
            paths = {
                f"f{index}": rng.sample(
                    links, rng.randint(1, min(4, len(links)))
                )
                for index in range(rng.randint(1, 30))
            }

            with monkeypatch.context() as patch:
                patch.setattr(ckernel, "_kernel", None)
                numpy_engine = self._batched(caps)
                assert not numpy_engine.kernel_active
                for flow, path in paths.items():
                    numpy_engine.add_flow(flow, path)
                numpy_rates = numpy_engine.recompute()

            kernel_engine = self._batched(caps)
            assert kernel_engine.kernel_active
            for flow, path in paths.items():
                kernel_engine.add_flow(flow, path)
            kernel_rates = kernel_engine.recompute()

            assert kernel_rates.tobytes() == numpy_rates.tobytes(), seed
            # And both agree with the plain vector engine, bitwise.
            vector = _engine(caps)
            for flow, path in paths.items():
                vector.add_flow(flow, path)
            assert vector.recompute().tobytes() == kernel_rates.tobytes()

    def test_disable_env_pins_numpy_loop(self, monkeypatch):
        from repro.sim import ckernel

        monkeypatch.setenv(ckernel.DISABLE_ENV, "1")
        monkeypatch.setattr(ckernel, "_kernel", ckernel._UNSET)
        assert ckernel.waterfill_kernel() is None
        assert not ckernel.kernel_available()
        engine = self._batched()
        assert not engine.kernel_active
        engine.add_flow("f0", [A, B])
        engine.add_flow("f1", [B])
        assert engine.rates_by_flow() == max_min_fair_rates(
            {"f0": [A, B], "f1": [B]}, CAPS
        )
