"""Units for the struct-of-arrays data plane (``repro.sim.vector``).

``FlowTable`` slot lifecycle and compaction, ``LinkBusyView`` mapping
semantics, and ``VectorFairShareEngine`` incremental bookkeeping — the
bit-parity arguments live in ``tests/sim/test_vector_parity.py``.
"""

import pickle

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.fairshare import max_min_fair_rates
from repro.sim.vector import FlowTable, LinkBusyView, VectorFairShareEngine

A = frozenset({"a", "b"})
B = frozenset({"b", "c"})
C = frozenset({"c", "d"})

CAPS = {A: 10.0, B: 4.0, C: 8.0}


def _engine(caps=None, **kwargs):
    return VectorFairShareEngine(dict(caps or CAPS), **kwargs)


# ----------------------------------------------------------------------
# FlowTable
# ----------------------------------------------------------------------
class TestFlowTable:
    def test_add_remove_roundtrip(self):
        table = FlowTable()
        slot = table.add("f0", np.array([0, 1], dtype=np.int32))
        assert slot == 0
        assert "f0" in table
        assert len(table) == 1
        assert table.remove("f0") == slot
        assert "f0" not in table
        assert len(table) == 0

    def test_duplicate_add_rejected(self):
        table = FlowTable()
        table.add("f0", np.array([0], dtype=np.int32))
        with pytest.raises(SimulationError, match="already active"):
            table.add("f0", np.array([1], dtype=np.int32))

    def test_remove_unknown_rejected(self):
        with pytest.raises(SimulationError, match="not active"):
            FlowTable().remove("ghost")

    def test_slots_are_activation_ordered(self):
        table = FlowTable()
        for index in range(5):
            table.add(f"f{index}", np.array([index], dtype=np.int32))
        table.remove("f2")
        assert table.active_slots().tolist() == [0, 1, 3, 4]

    def test_gather_links_preserves_path_order(self):
        table = FlowTable()
        table.add("f0", np.array([3, 1], dtype=np.int32))
        table.add("f1", np.array([2], dtype=np.int32))
        flat, lens = table.gather_links(np.array([0, 1]))
        assert flat.tolist() == [3, 1, 2]
        assert lens.tolist() == [2, 1]

    def test_gather_links_empty(self):
        flat, lens = FlowTable().gather_links(np.empty(0, dtype=np.int64))
        assert flat.shape[0] == 0
        assert lens.shape[0] == 0

    def test_has_dup_flag_inferred_and_explicit(self):
        table = FlowTable()
        loop = table.add("loop", np.array([0, 1, 0], dtype=np.int32))
        straight = table.add("straight", np.array([0, 1], dtype=np.int32))
        forced = table.add(
            "forced", np.array([2], dtype=np.int32), has_dup=True
        )
        assert bool(table.has_dup[loop])
        assert not bool(table.has_dup[straight])
        assert bool(table.has_dup[forced])

    def test_growth_preserves_state(self):
        table = FlowTable(capacity=16)
        for index in range(200):
            table.add(f"f{index}", np.array([index % 7], dtype=np.int32))
        assert len(table) == 200
        flat, lens = table.gather_links(table.active_slots())
        assert flat.tolist() == [index % 7 for index in range(200)]
        assert lens.tolist() == [1] * 200

    def test_compaction_renumbers_in_relative_order(self):
        table = FlowTable(compact_slack=1)
        for index in range(8):
            table.add(f"f{index}", np.array([index], dtype=np.int32))
        table.has_dup[3] = True  # f3 survives with its flag
        for index in (0, 2, 4, 6, 1):
            table.remove(f"f{index}")
        # Dead slots now outnumber live ones; the next add compacts.
        table.add("fresh", np.array([9], dtype=np.int32))
        assert table.size == len(table) == 4
        survivors = [table.flow_ids[slot] for slot in table.active_slots()]
        assert survivors == ["f3", "f5", "f7", "fresh"]
        flat, _ = table.gather_links(table.active_slots())
        assert flat.tolist() == [3, 5, 7, 9]
        flagged = [
            flow
            for flow, slot in table.slot_of.items()
            if table.has_dup[slot]
        ]
        assert flagged == ["f3"]


# ----------------------------------------------------------------------
# LinkBusyView
# ----------------------------------------------------------------------
class TestLinkBusyView:
    def _view(self):
        return LinkBusyView((A, B, C), np.array([5.0, 0.0, 2.5]))

    def test_only_busy_links_visible(self):
        view = self._view()
        assert set(view) == {A, C}
        assert len(view) == 2
        assert view[A] == 5.0
        with pytest.raises(KeyError):
            view[B]
        with pytest.raises(KeyError):
            view[frozenset({"x", "y"})]

    def test_equals_plain_dict(self):
        view = self._view()
        assert view == {A: 5.0, C: 2.5}
        assert not view == {A: 5.0}
        assert not view == {A: 5.0, C: 99.0}
        assert view.to_dict() == {A: 5.0, C: 2.5}

    def test_pickles_as_plain_dict(self):
        revived = pickle.loads(pickle.dumps(self._view()))
        assert isinstance(revived, dict)
        assert revived == {A: 5.0, C: 2.5}

    def test_mean_utilization_matches_manual(self):
        view = self._view()
        got = view.mean_utilization({A: 10.0, B: 4.0, C: 8.0}, 2.0)
        manual = (5.0 / (10.0 * 2.0) + 2.5 / (8.0 * 2.0)) / 2.0
        assert got == pytest.approx(manual)
        assert view.mean_utilization({A: 10.0, C: 8.0}, 0.0) == 0.0

    @pytest.mark.parametrize(
        "caps, match",
        [
            ({C: 8.0}, "no capacity entry"),
            ({A: -1.0, C: 8.0}, "negative capacity"),
            ({A: 0.0, C: 8.0}, "zero-capacity"),
        ],
    )
    def test_mean_utilization_validation(self, caps, match):
        with pytest.raises(SimulationError, match=match):
            self._view().mean_utilization(caps, 1.0)


# ----------------------------------------------------------------------
# VectorFairShareEngine
# ----------------------------------------------------------------------
class TestVectorFairShareEngine:
    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SimulationError, match="non-positive"):
            _engine({A: 0.0})

    def test_unknown_link_rejected(self):
        engine = _engine()
        with pytest.raises(SimulationError, match="unknown link"):
            engine.add_flow("f0", [frozenset({"x", "y"})])

    def test_duplicate_flow_rejected(self):
        engine = _engine()
        engine.add_flow("f0", [A])
        with pytest.raises(SimulationError, match="already active"):
            engine.add_flow("f0", [B])

    def test_remove_unknown_flow_rejected(self):
        with pytest.raises(SimulationError, match="not active"):
            _engine().remove_flow("ghost")

    def test_counts_track_add_remove(self):
        engine = _engine()
        engine.add_flow("f0", [A, B])
        engine.add_flow("f1", [B])
        assert engine.link_counts() == {A: 1, B: 2}
        assert engine.active_flows == 2
        assert engine.loaded_links == 2
        engine.remove_flow("f0")
        assert engine.link_counts() == {B: 1}

    def test_remove_link_refuses_crossing_flows(self):
        engine = _engine()
        engine.add_flow("f0", [A])
        with pytest.raises(SimulationError, match="active flows"):
            engine.remove_link(A)
        engine.remove_flow("f0")
        engine.remove_link(A)
        assert A not in engine.capacities()
        engine.remove_link(frozenset({"x", "y"}))  # unknown: no-op

    def test_set_capacity_validates_and_restores(self):
        engine = _engine()
        with pytest.raises(SimulationError, match="positive"):
            engine.set_capacity(A, 0.0)
        engine.remove_link(A)
        engine.set_capacity(A, 6.0)
        assert engine.capacities()[A] == 6.0

    def test_set_capacity_appends_unknown_link(self):
        engine = _engine()
        fresh = frozenset({"x", "y"})
        before = engine.n_links
        engine.set_capacity(fresh, 3.0)
        assert engine.n_links == before + 1
        assert engine.capacities()[fresh] == 3.0
        engine.add_flow("f0", [fresh])
        assert engine.rates_by_flow() == {"f0": 3.0}

    def test_linkless_flow_gets_infinite_rate(self):
        engine = _engine()
        engine.add_flow("f0", [])
        assert engine.rates_by_flow() == {"f0": np.inf}

    def test_empty_recompute(self):
        assert _engine().recompute().shape[0] == 0

    def test_rates_match_reference_kernel(self):
        engine = _engine()
        paths = {"f0": [A, B], "f1": [B, C], "f2": [C]}
        for flow, path in paths.items():
            engine.add_flow(flow, path)
        assert engine.rates_by_flow() == max_min_fair_rates(paths, CAPS)

    def test_cyclic_path_freezes_once(self):
        engine = _engine()
        paths = {"f0": [A, B, A], "f1": [B], "f2": [A]}
        for flow, path in paths.items():
            engine.add_flow(flow, path)
        assert engine.rates_by_flow() == max_min_fair_rates(paths, CAPS)

    def test_rounds_telemetry_observed(self):
        from repro.observability.runtime import Telemetry
        from repro.sim.fairshare import ROUNDS_BUCKETS

        telemetry = Telemetry.enabled_instance()
        engine = _engine(telemetry=telemetry)
        engine.add_flow("f0", [A, B])
        engine.add_flow("f1", [B])
        engine.recompute()
        histogram = telemetry.histogram(
            "alvc_fairshare_vector_rounds", "", ROUNDS_BUCKETS
        )
        assert histogram.count >= 1
