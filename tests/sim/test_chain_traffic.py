"""Tests for chain-level traffic simulation."""

import pytest

from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.orchestrator import NetworkOrchestrator
from repro.core.placement import PlacementAlgorithm
from repro.exceptions import SimulationError
from repro.nfv.functions import FunctionCatalog
from repro.optical.conversion import ConversionModel, TransportEnergyModel
from repro.sim.chain_traffic import ChainTrafficSimulator
from repro.sim.flows import Flow


CATALOG = FunctionCatalog.standard()


@pytest.fixture
def provisioned(populated_inventory):
    orchestrator = NetworkOrchestrator(populated_inventory)
    orchestrator.cluster_manager.create_cluster("web")
    chain = NetworkFunctionChain.from_names(
        "chain-t", ("firewall", "dpi"), CATALOG
    )
    live = orchestrator.provision_chain(
        ChainRequest(
            tenant="t", chain=chain, service="web", flow_size_gb=1.0
        )
    )
    return populated_inventory, orchestrator, live


class TestRun:
    def test_record_count(self, provisioned):
        inventory, _, live = provisioned
        simulator = ChainTrafficSimulator(inventory, seed=0)
        report = simulator.run(live, n_flows=50)
        assert report.flows == 50
        assert report.chain_id == "chain-t"

    def test_conversions_match_placement(self, provisioned):
        inventory, _, live = provisioned
        simulator = ChainTrafficSimulator(inventory, seed=0)
        report = simulator.run(live, n_flows=10)
        assert report.mean_conversions == live.conversions
        for record in report.records:
            assert record.conversions == live.conversions

    def test_costs_scale_with_flow_size(self, provisioned):
        inventory, _, live = provisioned
        simulator = ChainTrafficSimulator(inventory, seed=0)
        report = simulator.run(live, n_flows=20)
        for record in report.records:
            expected = ConversionModel().conversion_cost(
                record.size_bytes, record.conversions
            )
            assert record.conversion_cost == pytest.approx(expected)
            assert record.processing_cost > 0
            assert record.total_cost == pytest.approx(
                record.conversion_cost + record.processing_cost
            )

    def test_deterministic_per_seed(self, provisioned):
        inventory, _, live = provisioned
        first = ChainTrafficSimulator(inventory, seed=4).run(
            live, n_flows=10
        )
        second = ChainTrafficSimulator(inventory, seed=4).run(
            live, n_flows=10
        )
        assert [r.size_bytes for r in first.records] == [
            r.size_bytes for r in second.records
        ]

    def test_invalid_parameters(self, provisioned):
        inventory, _, live = provisioned
        simulator = ChainTrafficSimulator(inventory)
        with pytest.raises(SimulationError):
            simulator.run(live, n_flows=0)
        with pytest.raises(SimulationError):
            simulator.run(live, n_flows=5, mean_flow_gb=0)

    def test_as_dict(self, provisioned):
        inventory, _, live = provisioned
        report = ChainTrafficSimulator(inventory, seed=0).run(
            live, n_flows=5
        )
        summary = report.as_dict()
        assert summary["flows"] == 5
        assert summary["chain"] == "chain-t"


class TestRunFlows:
    def test_uses_given_sizes(self, provisioned):
        inventory, _, live = provisioned
        simulator = ChainTrafficSimulator(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source="vm-0",
                destination="vm-1",
                size_bytes=2e9,
            )
            for i in range(3)
        ]
        report = simulator.run_flows(live, flows)
        assert report.flows == 3
        for record in report.records:
            assert record.size_bytes == 2e9


class TestPlacementEffect:
    def test_optical_placement_cheaper_than_electronic(
        self, populated_inventory
    ):
        orchestrator = NetworkOrchestrator(populated_inventory)
        orchestrator.cluster_manager.create_cluster("web")
        orchestrator.cluster_manager.create_cluster("sns")
        chain_names = ("firewall", "nat")

        optical = orchestrator.provision_chain(
            ChainRequest(
                tenant="t",
                chain=NetworkFunctionChain.from_names(
                    "chain-opt", chain_names, CATALOG
                ),
                service="web",
            ),
            algorithm=PlacementAlgorithm.GREEDY,
        )
        electronic = orchestrator.provision_chain(
            ChainRequest(
                tenant="t",
                chain=NetworkFunctionChain.from_names(
                    "chain-ele", chain_names, CATALOG
                ),
                service="sns",
            ),
            algorithm=PlacementAlgorithm.ALL_ELECTRONIC,
        )
        simulator = ChainTrafficSimulator(populated_inventory, seed=1)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source="vm-0",
                destination="vm-1",
                size_bytes=1e9,
            )
            for i in range(10)
        ]
        optical_report = simulator.run_flows(optical, flows)
        electronic_report = simulator.run_flows(electronic, flows)
        assert (
            optical_report.total_conversion_cost
            < electronic_report.total_conversion_cost
        )


class TestTransportEnergyModel:
    def test_optical_cheaper_per_hop(self):
        from repro.topology.elements import Domain

        model = TransportEnergyModel()
        optical = model.hop_energy_joules(1e9, Domain.OPTICAL)
        electronic = model.hop_energy_joules(1e9, Domain.ELECTRONIC)
        assert optical < electronic

    def test_path_energy_sums_hops(self):
        from repro.topology.elements import Domain

        model = TransportEnergyModel(
            optical_pj_per_bit_hop=1.0, electronic_pj_per_bit_hop=10.0
        )
        domains = [
            Domain.ELECTRONIC,  # source node (no inbound hop)
            Domain.ELECTRONIC,
            Domain.OPTICAL,
            Domain.ELECTRONIC,
        ]
        energy = model.path_energy_joules(1e9, domains)
        bits = 8e9
        expected = bits * (10 + 1 + 10) * 1e-12
        assert energy == pytest.approx(expected)

    def test_single_node_path_is_free(self):
        from repro.topology.elements import Domain

        model = TransportEnergyModel()
        assert model.path_energy_joules(1e9, [Domain.ELECTRONIC]) == 0.0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            TransportEnergyModel(optical_pj_per_bit_hop=-1)

    def test_negative_flow_rejected(self):
        from repro.topology.elements import Domain

        with pytest.raises(ValueError):
            TransportEnergyModel().hop_energy_joules(-1, Domain.OPTICAL)


class TestLatencyModel:
    def test_components_sum(self, provisioned):
        from repro.sim.chain_traffic import LatencyModel
        from repro.topology.elements import Domain

        model = LatencyModel(
            optical_hop_us=1.0,
            electronic_hop_us=10.0,
            conversion_penalty_us=100.0,
            processing_us_per_mb=1.0,
        )
        domains = [Domain.ELECTRONIC, Domain.OPTICAL, Domain.ELECTRONIC]
        latency = model.flow_latency_seconds(
            2e6, domains, conversions=1, n_functions=2
        )
        # hops: 1 optical + 1 electronic = 11 us; conversion: 100 us;
        # processing: 2 functions * 1 us/MB * 2 MB = 4 us.
        assert latency == pytest.approx(115e-6)

    def test_negative_parameter_rejected(self):
        from repro.sim.chain_traffic import LatencyModel

        with pytest.raises(ValueError):
            LatencyModel(optical_hop_us=-1)

    def test_records_carry_latency(self, provisioned):
        inventory, _, live = provisioned
        report = ChainTrafficSimulator(inventory, seed=0).run(
            live, n_flows=10
        )
        assert all(r.latency_seconds > 0 for r in report.records)
        stats = report.latency_statistics()
        assert 0 < stats["mean"] <= stats["p99"]

    def test_optical_placement_lower_latency(self, populated_inventory):
        from repro.core.placement import PlacementAlgorithm

        orchestrator = NetworkOrchestrator(populated_inventory)
        orchestrator.cluster_manager.create_cluster("web")
        orchestrator.cluster_manager.create_cluster("sns")
        names = ("firewall", "nat")
        optical = orchestrator.provision_chain(
            ChainRequest(
                tenant="t",
                chain=NetworkFunctionChain.from_names(
                    "chain-lo", names, CATALOG
                ),
                service="web",
            ),
            algorithm=PlacementAlgorithm.GREEDY,
        )
        electronic = orchestrator.provision_chain(
            ChainRequest(
                tenant="t",
                chain=NetworkFunctionChain.from_names(
                    "chain-le", names, CATALOG
                ),
                service="sns",
            ),
            algorithm=PlacementAlgorithm.ALL_ELECTRONIC,
        )
        simulator = ChainTrafficSimulator(populated_inventory, seed=2)
        flows = [
            Flow(
                flow_id=f"f{i}",
                source="vm-0",
                destination="vm-1",
                size_bytes=1e9,
            )
            for i in range(10)
        ]
        fast = simulator.run_flows(optical, flows).latency_statistics()
        slow = simulator.run_flows(electronic, flows).latency_statistics()
        # Fewer conversions => strictly lower latency for the same flows.
        assert fast["mean"] < slow["mean"]

    def test_empty_report_latency(self, provisioned):
        from repro.sim.chain_traffic import ChainTrafficReport

        report = ChainTrafficReport(chain_id="x", records=())
        assert report.latency_statistics() == {"mean": 0.0, "p99": 0.0}
