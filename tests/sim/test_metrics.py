"""Tests for the metrics collector."""

import pytest

from repro.sim.metrics import MetricsCollector


class TestCounters:
    def test_increment_default_one(self):
        metrics = MetricsCollector()
        metrics.increment("flows")
        metrics.increment("flows")
        assert metrics.count("flows") == 2

    def test_increment_amount(self):
        metrics = MetricsCollector()
        metrics.increment("bytes", 100.0)
        assert metrics.count("bytes") == 100.0

    def test_unknown_counter_is_zero(self):
        assert MetricsCollector().count("missing") == 0.0

    def test_counters_snapshot(self):
        metrics = MetricsCollector()
        metrics.increment("a")
        snapshot = metrics.counters()
        assert snapshot == {"a": 1.0}
        # Snapshot is a copy.
        snapshot["a"] = 99
        assert metrics.count("a") == 1.0


class TestSeries:
    def test_summary_of_observations(self):
        metrics = MetricsCollector()
        for value in (1.0, 2.0, 3.0):
            metrics.observe("hops", value)
        summary = metrics.summary("hops")
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_std_matches_population_formula(self):
        metrics = MetricsCollector()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            metrics.observe("x", value)
        assert metrics.summary("x")["std"] == pytest.approx(2.0)

    def test_empty_series_summary(self):
        summary = MetricsCollector().summary("missing")
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

    def test_single_observation(self):
        metrics = MetricsCollector()
        metrics.observe("x", 5.0)
        summary = metrics.summary("x")
        assert summary["std"] == 0.0
        assert summary["min"] == summary["max"] == 5.0

    def test_series_names_sorted(self):
        metrics = MetricsCollector()
        metrics.observe("zeta", 1)
        metrics.observe("alpha", 1)
        assert metrics.series_names() == ["alpha", "zeta"]


class TestMerged:
    def test_merged_sums_counters(self):
        left = MetricsCollector()
        left.increment("flows", 2)
        right = MetricsCollector()
        right.increment("flows", 3)
        right.increment("errors", 1)
        merged = left.merged(right)
        assert merged.count("flows") == 5
        assert merged.count("errors") == 1

    def test_merged_leaves_sources_untouched(self):
        left = MetricsCollector()
        left.increment("flows")
        left.merged(MetricsCollector())
        assert left.count("flows") == 1
