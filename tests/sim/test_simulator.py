"""Tests for the flow-level simulator."""

import pytest

from repro.core.cluster import ClusterManager
from repro.optical.conversion import ConversionModel
from repro.sim.flows import Flow
from repro.sim.simulator import (
    FlowSimulator,
    transport_conversions,
)
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.topology.elements import Domain

E = Domain.ELECTRONIC
O = Domain.OPTICAL


class TestTransportConversions:
    def test_no_optical_hops(self):
        assert transport_conversions([E, E, E]) == 0

    def test_single_optical_segment(self):
        assert transport_conversions([E, E, O, E, E]) == 1

    def test_two_optical_segments(self):
        assert transport_conversions([E, O, E, O, E]) == 2

    def test_empty(self):
        assert transport_conversions([]) == 0


@pytest.fixture
def clustered(populated_inventory):
    clusters = ClusterManager(populated_inventory)
    for service in populated_inventory.services_present():
        clusters.create_cluster(service)
    return populated_inventory, clusters


class TestRouting:
    def test_colocated_flow_single_node(self, clustered):
        inventory, clusters = clustered
        vms = inventory.vms_of_service("web")
        host = inventory.host_of(vms[0].vm_id)
        same_host = [
            vm for vm in vms if inventory.host_of(vm.vm_id) == host
        ]
        if len(same_host) >= 2:
            simulator = FlowSimulator(inventory, clusters)
            flow = Flow(
                flow_id="flow-0",
                source=same_host[0].vm_id,
                destination=same_host[1].vm_id,
                size_bytes=1e9,
            )
            path, confined = simulator.route(flow)
            assert path == [host]
            assert confined

    def test_intra_service_flow_confined_to_al(self, clustered):
        inventory, clusters = clustered
        simulator = FlowSimulator(inventory, clusters)
        vms = inventory.vms_of_service("web")
        flow = Flow(
            flow_id="flow-0",
            source=vms[0].vm_id,
            destination=vms[-1].vm_id,
            size_bytes=1e9,
            intra_service=True,
        )
        path, confined = simulator.route(flow)
        al = clusters.cluster_of_service("web").al_switches
        for node in path:
            if node.startswith("ops"):
                assert node in al
        assert confined or len(path) == 1

    def test_flat_simulator_never_confined(self, populated_inventory):
        simulator = FlowSimulator(populated_inventory, clusters=None)
        vms = populated_inventory.vms_of_service("web")
        hosts = {populated_inventory.host_of(vm.vm_id) for vm in vms}
        # Pick two VMs on different servers (if any).
        by_host = {}
        for vm in vms:
            by_host.setdefault(
                populated_inventory.host_of(vm.vm_id), vm
            )
        if len(by_host) >= 2:
            first, second = list(by_host.values())[:2]
            flow = Flow(
                flow_id="flow-0",
                source=first.vm_id,
                destination=second.vm_id,
                size_bytes=1e9,
            )
            _, confined = simulator.route(flow)
            assert not confined


class TestRun:
    def test_report_totals(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=0)
        flows = generator.flows(100)
        report = FlowSimulator(inventory, clusters).run(flows)
        assert report.flows == 100
        assert report.total_bytes == pytest.approx(
            sum(f.size_bytes for f in flows)
        )
        assert 0 <= report.intra_service_fraction <= 1
        assert report.mean_hops >= 0

    def test_link_load_conservation(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=1)
        flows = generator.flows(50)
        report = FlowSimulator(inventory, clusters).run(flows)
        assert report.max_link_load <= sum(f.size_bytes for f in flows)
        for load in report.link_load_bytes.values():
            assert load > 0

    def test_conversion_cost_uses_model(self, clustered):
        inventory, clusters = clustered
        expensive = ConversionModel(cost_per_gb=100.0)
        cheap = ConversionModel(cost_per_gb=1.0)
        generator = TrafficGenerator(inventory, seed=2)
        flows = generator.flows(30)
        costly = FlowSimulator(inventory, clusters, expensive).run(flows)
        budget = FlowSimulator(inventory, clusters, cheap).run(flows)
        if costly.total_conversions > 0:
            assert costly.total_conversion_cost == pytest.approx(
                100 * budget.total_conversion_cost
            )

    def test_empty_run(self, clustered):
        inventory, clusters = clustered
        report = FlowSimulator(inventory, clusters).run([])
        assert report.flows == 0
        assert report.mean_hops == 0.0
        assert report.max_link_load == 0.0

    def test_metrics_collected(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=3)
        simulator = FlowSimulator(inventory, clusters)
        simulator.run(generator.flows(10))
        assert simulator.metrics.count("flows") == 10
        assert simulator.metrics.summary("hops")["count"] == 10

    def test_as_dict_keys(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=4)
        report = FlowSimulator(inventory, clusters).run(generator.flows(5))
        summary = report.as_dict()
        for key in (
            "flows",
            "mean_hops",
            "mean_conversions",
            "total_energy_joules",
            "al_confined_flows",
        ):
            assert key in summary


class TestClusteringEffect:
    def test_clustered_confines_more_than_flat(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory,
            TrafficConfig(intra_service_probability=0.9),
            seed=5,
        )
        flows = generator.flows(200)
        with_clusters = FlowSimulator(inventory, clusters).run(flows)
        without = FlowSimulator(inventory, None).run(flows)
        assert (
            with_clusters.al_confined_flows >= without.al_confined_flows
        )
