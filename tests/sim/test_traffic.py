"""Tests for service-correlated traffic generation."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.virtualization.machines import MachineInventory


class TestTrafficConfig:
    def test_defaults_valid(self):
        config = TrafficConfig()
        assert 0 <= config.intra_service_probability <= 1

    def test_probability_bounds(self):
        with pytest.raises(SimulationError):
            TrafficConfig(intra_service_probability=1.5)
        with pytest.raises(SimulationError):
            TrafficConfig(intra_service_probability=-0.1)

    def test_positive_parameters_required(self):
        with pytest.raises(SimulationError):
            TrafficConfig(mean_flow_gb=0)
        with pytest.raises(SimulationError):
            TrafficConfig(arrival_rate=0)
        with pytest.raises(SimulationError):
            TrafficConfig(sigma=-1)


class TestGeneratorBasics:
    def test_needs_two_placed_vms(self, inventory, service_catalog):
        vm = inventory.create_vm(service_catalog.get("web"))
        inventory.place(vm, inventory.network.servers()[0])
        with pytest.raises(SimulationError):
            TrafficGenerator(inventory)

    def test_flow_ids_unique(self, populated_inventory):
        generator = TrafficGenerator(populated_inventory, seed=0)
        flows = generator.flows(50)
        assert len({flow.flow_id for flow in flows}) == 50

    def test_flow_count_positive(self, populated_inventory):
        generator = TrafficGenerator(populated_inventory, seed=0)
        with pytest.raises(SimulationError):
            generator.flows(0)

    def test_arrivals_increase(self, populated_inventory):
        generator = TrafficGenerator(populated_inventory, seed=0)
        flows = generator.flows(20)
        times = [flow.arrival_time for flow in flows]
        assert times == sorted(times)
        assert times[0] > 0

    def test_deterministic_per_seed(self, populated_inventory):
        first = TrafficGenerator(populated_inventory, seed=9).flows(10)
        second = TrafficGenerator(populated_inventory, seed=9).flows(10)
        assert [
            (f.source, f.destination, f.size_bytes) for f in first
        ] == [(f.source, f.destination, f.size_bytes) for f in second]

    def test_endpoints_are_placed_vms(self, populated_inventory):
        generator = TrafficGenerator(populated_inventory, seed=0)
        placed = {vm.vm_id for vm in populated_inventory.placed_vms()}
        for flow in generator.flows(30):
            assert flow.source in placed
            assert flow.destination in placed
            assert flow.source != flow.destination

    def test_stream_yields_flows(self, populated_inventory):
        generator = TrafficGenerator(populated_inventory, seed=0)
        stream = generator.stream()
        first = next(stream)
        second = next(stream)
        assert second.arrival_time > first.arrival_time


class TestServiceCorrelation:
    def _intra_fraction(self, inventory, probability, n=400):
        generator = TrafficGenerator(
            inventory,
            TrafficConfig(intra_service_probability=probability),
            seed=1,
        )
        flows = generator.flows(n)
        return sum(1 for f in flows if f.intra_service) / n

    def test_high_correlation(self, populated_inventory):
        assert self._intra_fraction(populated_inventory, 0.9) > 0.8

    def test_low_correlation(self, populated_inventory):
        assert self._intra_fraction(populated_inventory, 0.1) < 0.25

    def test_full_correlation(self, populated_inventory):
        assert self._intra_fraction(populated_inventory, 1.0) == 1.0

    def test_intra_flag_matches_services(self, populated_inventory):
        generator = TrafficGenerator(populated_inventory, seed=2)
        for flow in generator.flows(100):
            same = (
                populated_inventory.get(flow.source).service
                == populated_inventory.get(flow.destination).service
            )
            assert flow.intra_service == same


class TestFlowSizes:
    def test_constant_size_when_sigma_zero(self, populated_inventory):
        generator = TrafficGenerator(
            populated_inventory,
            TrafficConfig(mean_flow_gb=2.0, sigma=0),
            seed=0,
        )
        for flow in generator.flows(10):
            assert flow.size_bytes == pytest.approx(2e9)

    def test_lognormal_mean_approximates_target(self, populated_inventory):
        generator = TrafficGenerator(
            populated_inventory,
            TrafficConfig(mean_flow_gb=1.0, sigma=0.5),
            seed=3,
        )
        flows = generator.flows(2000)
        mean_gb = sum(f.size_bytes for f in flows) / len(flows) / 1e9
        assert mean_gb == pytest.approx(1.0, rel=0.15)

    def test_sizes_positive(self, populated_inventory):
        generator = TrafficGenerator(populated_inventory, seed=4)
        assert all(f.size_bytes > 0 for f in generator.flows(50))


class TestSingleServiceFallback:
    def test_inter_service_request_falls_back_to_intra(
        self, small_fabric, service_catalog
    ):
        # Only one service exists: even with p_intra = 0 every flow must
        # be intra-service.
        inventory = MachineInventory(small_fabric)
        web = service_catalog.get("web")
        servers = inventory.network.servers()
        for index in range(3):
            vm = inventory.create_vm(web)
            inventory.place(vm, servers[index])
        generator = TrafficGenerator(
            inventory,
            TrafficConfig(intra_service_probability=0.0),
            seed=0,
        )
        assert all(flow.intra_service for flow in generator.flows(20))
