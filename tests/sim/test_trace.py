"""Tests for workload trace serialization and replay."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.flows import Flow
from repro.sim.trace import WorkloadTrace
from repro.sim.traffic import TrafficGenerator


def make_flows(count=3):
    return tuple(
        Flow(
            flow_id=f"flow-{i}",
            source="vm-0",
            destination="vm-1",
            size_bytes=1e9 * (i + 1),
            arrival_time=float(i),
            intra_service=(i % 2 == 0),
        )
        for i in range(count)
    )


class TestConstruction:
    def test_record(self):
        trace = WorkloadTrace.record(make_flows())
        assert len(trace) == 3
        assert trace.total_bytes == pytest.approx(6e9)
        assert trace.duration == 2.0

    def test_duplicate_ids_rejected(self):
        flow = make_flows(1)[0]
        with pytest.raises(SimulationError):
            WorkloadTrace(flows=(flow, flow))

    def test_empty_trace(self):
        trace = WorkloadTrace(flows=())
        assert len(trace) == 0
        assert trace.duration == 0.0

    def test_iteration(self):
        trace = WorkloadTrace.record(make_flows())
        assert [flow.flow_id for flow in trace] == [
            "flow-0",
            "flow-1",
            "flow-2",
        ]

    def test_sorted_by_arrival(self):
        flows = make_flows()
        shuffled = (flows[2], flows[0], flows[1])
        trace = WorkloadTrace(flows=shuffled).sorted_by_arrival()
        arrivals = [flow.arrival_time for flow in trace]
        assert arrivals == sorted(arrivals)


class TestSerialization:
    def test_json_roundtrip(self):
        original = WorkloadTrace.record(make_flows())
        restored = WorkloadTrace.from_json(original.to_json())
        assert restored == original

    def test_file_roundtrip(self, tmp_path):
        original = WorkloadTrace.record(make_flows())
        path = original.save(tmp_path / "trace.json")
        assert WorkloadTrace.load(path) == original

    def test_malformed_json_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadTrace.from_json("not json")

    def test_wrong_version_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadTrace.from_json('{"version": 99, "flows": []}')

    def test_non_object_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadTrace.from_json("[1, 2, 3]")

    def test_missing_flows_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadTrace.from_json('{"version": 1}')

    def test_invalid_flow_record_rejected(self):
        with pytest.raises(SimulationError, match="record #0"):
            WorkloadTrace.from_json(
                '{"version": 1, "flows": [{"flow_id": "x"}]}'
            )


class TestFiltering:
    def test_filter_by_locality(self):
        trace = WorkloadTrace.record(make_flows())
        intra = trace.filtered(intra_service=True)
        assert all(flow.intra_service for flow in intra)
        assert len(intra) == 2

    def test_filter_by_size(self):
        trace = WorkloadTrace.record(make_flows())
        big = trace.filtered(min_bytes=2.5e9)
        assert len(big) == 1
        assert big.flows[0].flow_id == "flow-2"


class TestReplay:
    def test_generator_output_replays_identically(self, populated_inventory):
        from repro.core.cluster import ClusterManager
        from repro.sim.simulator import FlowSimulator

        generator = TrafficGenerator(populated_inventory, seed=7)
        trace = WorkloadTrace.record(generator.flows(40))
        restored = WorkloadTrace.from_json(trace.to_json())

        clusters = ClusterManager(populated_inventory)
        for service in populated_inventory.services_present():
            clusters.create_cluster(service)
        first = FlowSimulator(populated_inventory, clusters).run(trace)
        second = FlowSimulator(populated_inventory, clusters).run(restored)
        assert first.as_dict() == second.as_dict()
