"""Tests for max-min fair bandwidth allocation."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.fairshare import (
    link_of,
    links_on_path,
    max_min_fair_rates,
)


AB = link_of("a", "b")
BC = link_of("b", "c")
CD = link_of("c", "d")


class TestHelpers:
    def test_link_of_unordered(self):
        assert link_of("a", "b") == link_of("b", "a")

    def test_links_on_path(self):
        assert links_on_path(["a", "b", "c"]) == [AB, BC]

    def test_single_node_path_has_no_links(self):
        assert links_on_path(["a"]) == []


class TestMaxMinFairness:
    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates({"f1": [AB]}, {AB: 10.0})
        assert rates["f1"] == pytest.approx(10.0)

    def test_two_flows_share_equally(self):
        rates = max_min_fair_rates(
            {"f1": [AB], "f2": [AB]}, {AB: 10.0}
        )
        assert rates["f1"] == pytest.approx(5.0)
        assert rates["f2"] == pytest.approx(5.0)

    def test_disjoint_flows_independent(self):
        rates = max_min_fair_rates(
            {"f1": [AB], "f2": [CD]}, {AB: 10.0, CD: 4.0}
        )
        assert rates["f1"] == pytest.approx(10.0)
        assert rates["f2"] == pytest.approx(4.0)

    def test_classic_three_flow_example(self):
        # f1: AB+BC, f2: AB, f3: BC; capacities AB=10, BC=4.
        # BC is the bottleneck: f1 and f3 get 2 each; f2 then gets the
        # remaining 8 on AB.
        rates = max_min_fair_rates(
            {"f1": [AB, BC], "f2": [AB], "f3": [BC]},
            {AB: 10.0, BC: 4.0},
        )
        assert rates["f1"] == pytest.approx(2.0)
        assert rates["f3"] == pytest.approx(2.0)
        assert rates["f2"] == pytest.approx(8.0)

    def test_linkless_flow_is_unbounded(self):
        rates = max_min_fair_rates({"f1": []}, {})
        assert rates["f1"] == float("inf")

    def test_capacity_conservation(self):
        flows = {
            "f1": [AB, BC],
            "f2": [AB],
            "f3": [BC, CD],
            "f4": [CD],
        }
        capacities = {AB: 6.0, BC: 3.0, CD: 9.0}
        rates = max_min_fair_rates(flows, capacities)
        # No link is oversubscribed.
        for link, capacity in capacities.items():
            used = sum(
                rates[flow]
                for flow, links in flows.items()
                if link in links
            )
            assert used <= capacity + 1e-9

    def test_all_rates_positive(self):
        flows = {f"f{i}": [AB, BC] for i in range(5)}
        rates = max_min_fair_rates(flows, {AB: 10.0, BC: 1.0})
        assert all(rate > 0 for rate in rates.values())

    def test_unknown_link_rejected(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates({"f1": [AB]}, {})

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates({"f1": [AB]}, {AB: 0.0})

    def test_no_flows(self):
        assert max_min_fair_rates({}, {AB: 5.0}) == {}

    def test_bottleneck_fairness_property(self):
        """Each flow is limited by at least one saturated link on which
        it gets a maximal share (the max-min optimality condition)."""
        flows = {
            "f1": [AB, BC],
            "f2": [AB],
            "f3": [BC],
            "f4": [BC, CD],
        }
        capacities = {AB: 12.0, BC: 6.0, CD: 2.0}
        rates = max_min_fair_rates(flows, capacities)
        for flow, links in flows.items():
            has_bottleneck = False
            for link in links:
                used = sum(
                    rates[other]
                    for other, other_links in flows.items()
                    if link in other_links
                )
                saturated = used >= capacities[link] - 1e-9
                maximal = all(
                    rates[flow] >= rates[other] - 1e-9
                    for other, other_links in flows.items()
                    if link in other_links
                )
                if saturated and maximal:
                    has_bottleneck = True
            assert has_bottleneck, f"{flow} has no bottleneck link"
