"""Tests for max-min fair bandwidth allocation."""

import random

import pytest

from repro.exceptions import SimulationError
from repro.sim.fairshare import (
    FairShareEngine,
    link_of,
    links_on_path,
    max_min_fair_rates,
)


AB = link_of("a", "b")
BC = link_of("b", "c")
CD = link_of("c", "d")


class TestHelpers:
    def test_link_of_unordered(self):
        assert link_of("a", "b") == link_of("b", "a")

    def test_links_on_path(self):
        assert links_on_path(["a", "b", "c"]) == [AB, BC]

    def test_single_node_path_has_no_links(self):
        assert links_on_path(["a"]) == []


class TestMaxMinFairness:
    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates({"f1": [AB]}, {AB: 10.0})
        assert rates["f1"] == pytest.approx(10.0)

    def test_two_flows_share_equally(self):
        rates = max_min_fair_rates(
            {"f1": [AB], "f2": [AB]}, {AB: 10.0}
        )
        assert rates["f1"] == pytest.approx(5.0)
        assert rates["f2"] == pytest.approx(5.0)

    def test_disjoint_flows_independent(self):
        rates = max_min_fair_rates(
            {"f1": [AB], "f2": [CD]}, {AB: 10.0, CD: 4.0}
        )
        assert rates["f1"] == pytest.approx(10.0)
        assert rates["f2"] == pytest.approx(4.0)

    def test_classic_three_flow_example(self):
        # f1: AB+BC, f2: AB, f3: BC; capacities AB=10, BC=4.
        # BC is the bottleneck: f1 and f3 get 2 each; f2 then gets the
        # remaining 8 on AB.
        rates = max_min_fair_rates(
            {"f1": [AB, BC], "f2": [AB], "f3": [BC]},
            {AB: 10.0, BC: 4.0},
        )
        assert rates["f1"] == pytest.approx(2.0)
        assert rates["f3"] == pytest.approx(2.0)
        assert rates["f2"] == pytest.approx(8.0)

    def test_linkless_flow_is_unbounded(self):
        rates = max_min_fair_rates({"f1": []}, {})
        assert rates["f1"] == float("inf")

    def test_capacity_conservation(self):
        flows = {
            "f1": [AB, BC],
            "f2": [AB],
            "f3": [BC, CD],
            "f4": [CD],
        }
        capacities = {AB: 6.0, BC: 3.0, CD: 9.0}
        rates = max_min_fair_rates(flows, capacities)
        # No link is oversubscribed.
        for link, capacity in capacities.items():
            used = sum(
                rates[flow]
                for flow, links in flows.items()
                if link in links
            )
            assert used <= capacity + 1e-9

    def test_all_rates_positive(self):
        flows = {f"f{i}": [AB, BC] for i in range(5)}
        rates = max_min_fair_rates(flows, {AB: 10.0, BC: 1.0})
        assert all(rate > 0 for rate in rates.values())

    def test_unknown_link_rejected(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates({"f1": [AB]}, {})

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates({"f1": [AB]}, {AB: 0.0})

    def test_no_flows(self):
        assert max_min_fair_rates({}, {AB: 5.0}) == {}

    def test_colocated_flow_beside_loaded_flows(self):
        rates = max_min_fair_rates(
            {"f1": [], "f2": [AB]}, {AB: 6.0}
        )
        assert rates["f1"] == float("inf")
        assert rates["f2"] == 6.0

    def test_bottleneck_tie_broken_by_sorted_link(self):
        # AB and CD offer the same share; sorted(link) makes the pick
        # deterministic regardless of dict/set iteration order, so the
        # allocation is stable across runs and engines.
        first = max_min_fair_rates(
            {"f1": [AB], "f2": [CD], "f3": [AB, CD]},
            {AB: 4.0, CD: 4.0},
        )
        second = max_min_fair_rates(
            {"f3": [CD, AB], "f2": [CD], "f1": [AB]},
            {CD: 4.0, AB: 4.0},
        )
        assert first == second
        assert first["f3"] == pytest.approx(2.0)

    def test_bottleneck_fairness_property(self):
        """Each flow is limited by at least one saturated link on which
        it gets a maximal share (the max-min optimality condition)."""
        flows = {
            "f1": [AB, BC],
            "f2": [AB],
            "f3": [BC],
            "f4": [BC, CD],
        }
        capacities = {AB: 12.0, BC: 6.0, CD: 2.0}
        rates = max_min_fair_rates(flows, capacities)
        for flow, links in flows.items():
            has_bottleneck = False
            for link in links:
                used = sum(
                    rates[other]
                    for other, other_links in flows.items()
                    if link in other_links
                )
                saturated = used >= capacities[link] - 1e-9
                maximal = all(
                    rates[flow] >= rates[other] - 1e-9
                    for other, other_links in flows.items()
                    if link in other_links
                )
                if saturated and maximal:
                    has_bottleneck = True
            assert has_bottleneck, f"{flow} has no bottleneck link"


class TestFairShareEngine:
    """Incremental engine must match the reference bit for bit."""

    def test_matches_reference_on_classic_example(self):
        capacities = {AB: 10.0, BC: 4.0}
        engine = FairShareEngine(capacities)
        flows = {"f1": [AB, BC], "f2": [AB], "f3": [BC]}
        for flow, links in flows.items():
            engine.add_flow(flow, links)
        assert engine.recompute() == max_min_fair_rates(flows, capacities)

    def test_linkless_flow_is_unbounded(self):
        engine = FairShareEngine({})
        engine.add_flow("f1", [])
        assert engine.recompute() == {"f1": float("inf")}

    def test_colocated_inf_alongside_loaded_flows(self):
        # A zero-hop flow must get inf without disturbing loaded shares.
        engine = FairShareEngine({AB: 6.0})
        engine.add_flow("loaded", [AB])
        engine.add_flow("colocated", [])
        rates = engine.recompute()
        assert rates["colocated"] == float("inf")
        assert rates["loaded"] == 6.0

    def test_bottleneck_tie_broken_by_sorted_link(self):
        # Two links with identical remaining/load: the reference's min()
        # keeps the first encountered; the engine tie-breaks on
        # sorted(link), which must produce the same allocation.
        capacities = {AB: 4.0, CD: 4.0}
        flows = {"f1": [AB], "f2": [CD], "f3": [AB, CD]}
        engine = FairShareEngine(capacities)
        for flow, links in flows.items():
            engine.add_flow(flow, links)
        assert engine.recompute() == max_min_fair_rates(flows, capacities)

    def test_remove_flow_releases_share(self):
        engine = FairShareEngine({AB: 10.0})
        engine.add_flow("f1", [AB])
        engine.add_flow("f2", [AB])
        assert engine.recompute()["f1"] == 5.0
        engine.remove_flow("f2")
        assert engine.recompute() == {"f1": 10.0}

    def test_duplicate_flow_rejected(self):
        engine = FairShareEngine({AB: 1.0})
        engine.add_flow("f1", [AB])
        with pytest.raises(SimulationError):
            engine.add_flow("f1", [AB])

    def test_unknown_link_rejected(self):
        engine = FairShareEngine({AB: 1.0})
        with pytest.raises(SimulationError):
            engine.add_flow("f1", [BC])

    def test_remove_inactive_flow_rejected(self):
        engine = FairShareEngine({AB: 1.0})
        with pytest.raises(SimulationError):
            engine.remove_flow("ghost")

    def test_remove_loaded_link_rejected(self):
        engine = FairShareEngine({AB: 1.0})
        engine.add_flow("f1", [AB])
        with pytest.raises(SimulationError):
            engine.remove_link(AB)
        engine.remove_flow("f1")
        engine.remove_link(AB)
        assert engine.loaded_links == 0

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SimulationError):
            FairShareEngine({AB: 0.0})
        with pytest.raises(SimulationError):
            FairShareEngine({AB: -1.0})

    def test_counters_track_membership(self):
        engine = FairShareEngine({AB: 2.0, BC: 2.0})
        engine.add_flow("f1", [AB, BC])
        engine.add_flow("f2", [AB])
        assert engine.active_flows == 2
        assert engine.link_counts() == {AB: 2, BC: 1}
        engine.remove_flow("f1")
        assert engine.link_counts() == {AB: 1}

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6])
    def test_randomized_parity_with_reference(self, seed):
        """Exact (==, not approx) parity against `max_min_fair_rates`
        through a random churn of arrivals and departures."""
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(8)]
        links = [
            link_of(a, b)
            for a in nodes
            for b in nodes
            if a < b and rng.random() < 0.4
        ]
        capacities = {
            link: rng.choice([1.0, 2.5, 4.0, 10.0, 40.0]) for link in links
        }
        engine = FairShareEngine(capacities)
        reference: dict[str, list] = {}
        for step in range(60):
            if reference and rng.random() < 0.35:
                victim = rng.choice(list(reference))
                del reference[victim]
                engine.remove_flow(victim)
            else:
                flow = f"f{seed}-{step}"
                chosen = rng.sample(links, k=rng.randint(0, 3))
                reference[flow] = chosen
                engine.add_flow(flow, chosen)
            assert engine.recompute() == max_min_fair_rates(
                reference, capacities
            )
