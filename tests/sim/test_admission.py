"""Batched admission pipeline: plan interning, invalidation, parity.

The tentpole contract is structural parity with per-event admission:
both modes resolve through the same tree-canonical primitive
(:func:`repro.sim.admission.resolve_tree_path`), so an interned route
must equal a cold per-pair resolution — including after fault/repair
cycles force lazy re-resolution (the S3 satellite), and on both
routing engines.
"""

import random
import warnings

import pytest

from repro.config import EngineConfig
from repro.exceptions import RoutingError, ValidationError
from repro.observability.runtime import Telemetry
from repro.sdn.path_engine import engine_for
from repro.sim.admission import (
    NO_PLAN_ROUTE,
    AdmissionPlan,
    plan_admission,
    resolve_tree_path,
)
from repro.sim.event_simulator import EventDrivenFlowSimulator
from repro.sim.faults import FaultEvent, FaultKind
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.sim.vector import VectorFairShareEngine

ENGINES = ("csr", "nx")


@pytest.fixture
def clustered(populated_inventory):
    from repro.core.cluster import ClusterManager

    clusters = ClusterManager(populated_inventory)
    for service in populated_inventory.services_present():
        clusters.create_cluster(service)
    return populated_inventory, clusters


def _host_pairs(inventory, rng, n_pairs):
    """Random distinct host pairs (flat fabric, no AL restriction)."""
    hosts = sorted(
        {inventory.host_of(vm.vm_id) for vm in inventory.all_vms()}
    )
    pairs = []
    for _ in range(n_pairs):
        a, b = rng.sample(hosts, 2)
        pairs.append((a, b, None))
    return pairs


def _link_index(inventory):
    capacities = {
        frozenset((a, b)): link.bandwidth_gbps
        for a, b, link in inventory.network.edges()
    }
    return VectorFairShareEngine(capacities).link_index


class TestPlanResolution:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_interned_path_matches_cold_resolution(
        self, populated_inventory, engine
    ):
        rng = random.Random(7)
        pairs = _host_pairs(populated_inventory, rng, 12)
        plan = plan_admission(
            populated_inventory.network,
            pairs,
            _link_index(populated_inventory),
            engine=engine,
        )
        for source, destination, al in pairs:
            route = plan.lookup(source, destination, al)
            assert route is not NO_PLAN_ROUTE
            cold = resolve_tree_path(
                populated_inventory.network,
                source,
                destination,
                al,
                engine=engine,
            )
            assert route.path == cold
            assert len(route.links) == len(cold) - 1
            assert route.indices.shape[0] == len(route.links)

    def test_engines_agree_on_interned_paths(self, populated_inventory):
        rng = random.Random(13)
        pairs = _host_pairs(populated_inventory, rng, 12)
        plans = {
            engine: plan_admission(
                populated_inventory.network,
                pairs,
                _link_index(populated_inventory),
                engine=engine,
            )
            for engine in ENGINES
        }
        for key in pairs:
            assert (
                plans["csr"].lookup(*key).path
                == plans["nx"].lookup(*key).path
            )

    def test_unreachable_pair_interns_negative(self, populated_inventory):
        network = populated_inventory.network
        hosts = sorted(
            {
                populated_inventory.host_of(vm.vm_id)
                for vm in populated_inventory.all_vms()
            }
        )
        plan = AdmissionPlan(network, _link_index(populated_inventory))
        # An AL signature that connects nothing: the per-pair flat
        # retry still resolves, so use a bogus destination instead.
        with pytest.raises(RoutingError):
            resolve_tree_path(network, hosts[0], "no-such-host", None)

    def test_lookup_is_lazy(self, populated_inventory):
        rng = random.Random(5)
        pairs = _host_pairs(populated_inventory, rng, 4)
        plan = AdmissionPlan(
            populated_inventory.network,
            _link_index(populated_inventory),
        )
        assert len(plan) == 0
        source, destination, al = pairs[0]
        route = plan.lookup(source, destination, al)
        assert (source, destination, al) in plan
        assert route.path[0] == source and route.path[-1] == destination

    def test_telemetry_counters(self, populated_inventory):
        rng = random.Random(3)
        pairs = _host_pairs(populated_inventory, rng, 6)
        telemetry = Telemetry.enabled_instance()
        plan = plan_admission(
            populated_inventory.network,
            pairs,
            _link_index(populated_inventory),
            telemetry=telemetry,
        )
        resolved = telemetry.counter(
            "alvc_admission_pairs_resolved_total", ""
        ).value
        assert resolved == len(set(pairs))
        victim = plan.lookup(*pairs[0]).links[0]
        dropped = plan.invalidate_crossing((victim,))
        assert dropped >= 1
        assert (
            telemetry.counter(
                "alvc_admission_invalidated_pairs_total", ""
            ).value
            == dropped
        )


class TestFaultRepairReresolution:
    """S3: lazily re-resolved interned paths equal cold resolution
    after ``note_fault``/repair cycles (seeded, both engines)."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_reresolution_matches_cold_engine(
        self, populated_inventory, engine
    ):
        network = populated_inventory.network
        rng = random.Random(29)
        pairs = _host_pairs(populated_inventory, rng, 10)
        plan = plan_admission(
            network, pairs, _link_index(populated_inventory), engine=engine
        )
        for cycle in range(3):
            # A fault lands on a link some interned route crosses.
            victim_route = plan.lookup(*pairs[cycle])
            victim = victim_route.links[
                rng.randrange(len(victim_route.links))
            ]
            engine_for(network).note_fault()
            dropped = plan.invalidate_crossing((victim,))
            assert dropped >= 1
            assert pairs[cycle] not in plan
            # Repair: availability flips back, no topology mutation.
            engine_for(network).note_fault()
            for key in pairs:
                route = plan.lookup(*key)
                assert route is not NO_PLAN_ROUTE
                cold = resolve_tree_path(
                    network, key[0], key[1], key[2], engine=engine
                )
                assert route.path == cold, (cycle, key)

    def test_negative_entries_survive_invalidation(
        self, populated_inventory
    ):
        network = populated_inventory.network
        plan = AdmissionPlan(network, _link_index(populated_inventory))
        hosts = sorted(
            {
                populated_inventory.host_of(vm.vm_id)
                for vm in populated_inventory.all_vms()
            }
        )
        key = (hosts[0], hosts[1], None)
        plan._routes[key] = NO_PLAN_ROUTE
        all_links = [
            frozenset((a, b)) for a, b, _ in network.edges()
        ]
        assert plan.invalidate_crossing(all_links) == 0
        assert plan.lookup(*key) is NO_PLAN_ROUTE


class TestBatchedSimulatorParity:
    """End-to-end: ``admission="batched"`` vs ``"per_event"`` reports."""

    def _flows(self, inventory, seed, n=25):
        generator = TrafficGenerator(
            inventory,
            TrafficConfig(arrival_rate=50.0, sigma=0.8),
            seed=seed,
        )
        return generator.flows(n)

    def _assert_reports_equal(self, got, want, context=""):
        assert got.completed == want.completed, context
        assert got.dropped == want.dropped, context
        assert got.reroutes == want.reroutes, context
        assert got.makespan == want.makespan, context
        assert (
            got.link_busy_byte_seconds == want.link_busy_byte_seconds
        ), context

    def test_auto_resolution(self, clustered):
        inventory, clusters = clustered
        vector = EventDrivenFlowSimulator(
            inventory, clusters, engines={"sim_engine": "vector"}
        )
        assert vector.admission == "batched"
        incremental = EventDrivenFlowSimulator(inventory, clusters)
        assert incremental.admission == "per_event"
        pinned = EventDrivenFlowSimulator(
            inventory,
            clusters,
            engines={"sim_engine": "vector"},
            admission="per_event",
        )
        assert pinned.admission == "per_event"

    def test_admission_kwarg_validates(self, clustered):
        inventory, clusters = clustered
        with pytest.raises(ValidationError, match="requires sim_engine"):
            EventDrivenFlowSimulator(
                inventory, clusters, admission="batched"
            )
        with pytest.raises(ValidationError, match="unknown admission"):
            EventDrivenFlowSimulator(
                inventory,
                clusters,
                engines={"sim_engine": "vector"},
                admission="psychic",
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batched_matches_per_event(self, clustered, seed):
        inventory, clusters = clustered
        flows = self._flows(inventory, seed)
        reports = {}
        for mode in ("per_event", "batched"):
            simulator = EventDrivenFlowSimulator(
                inventory,
                clusters,
                engines={"sim_engine": "vector", "admission": mode},
            )
            reports[mode] = simulator.run(flows)
        self._assert_reports_equal(
            reports["batched"], reports["per_event"], seed
        )

    @pytest.mark.parametrize("seed", [3, 4])
    def test_batched_matches_per_event_under_faults(
        self, clustered, seed
    ):
        inventory, clusters = clustered
        rng = random.Random(seed)
        flows = self._flows(inventory, seed, n=30)
        edges = sorted((a, b) for a, b, _ in inventory.network.edges())
        a, b = rng.choice(edges)
        cut_at = round(rng.uniform(0.05, 0.3), 3)
        failures = [
            FaultEvent(
                time=cut_at, kind=FaultKind.LINK_CUT, target=(a, b)
            ),
            FaultEvent(
                time=cut_at + 0.2,
                kind=FaultKind.LINK_REPAIR,
                target=(a, b),
            ),
            FaultEvent(
                time=round(rng.uniform(0.4, 0.6), 3),
                kind=FaultKind.LINK_DEGRADE,
                target=rng.choice(edges),
                severity=0.5,
            ),
        ]
        ops = inventory.network.optical_switches()
        if ops:
            crash_at = round(rng.uniform(0.1, 0.4), 3)
            victim = rng.choice(ops)
            failures += [
                FaultEvent(
                    time=crash_at,
                    kind=FaultKind.OPS_CRASH,
                    target=victim,
                ),
                FaultEvent(
                    time=crash_at + 0.25,
                    kind=FaultKind.NODE_REPAIR,
                    target=victim,
                ),
            ]
        reports = {}
        for mode in ("per_event", "batched"):
            simulator = EventDrivenFlowSimulator(
                inventory,
                clusters,
                engines={"sim_engine": "vector", "admission": mode},
            )
            reports[mode] = simulator.run(flows, failures=failures)
        self._assert_reports_equal(
            reports["batched"], reports["per_event"], seed
        )

    @pytest.mark.parametrize("seed", [5, 6])
    def test_load_aware_batched_matches_per_event(self, clustered, seed):
        inventory, clusters = clustered
        flows = self._flows(inventory, seed)
        reports = {}
        for mode in ("per_event", "batched"):
            simulator = EventDrivenFlowSimulator(
                inventory,
                clusters,
                load_aware=True,
                engines={"sim_engine": "vector", "admission": mode},
            )
            reports[mode] = simulator.run(flows)
        self._assert_reports_equal(
            reports["batched"], reports["per_event"], seed
        )

    def test_batched_emits_bulk_counters(self, clustered):
        inventory, clusters = clustered
        telemetry = Telemetry.enabled_instance()
        simulator = EventDrivenFlowSimulator(
            inventory,
            clusters,
            engines={"sim_engine": "vector"},
            telemetry=telemetry,
        )
        report = simulator.run(self._flows(inventory, 11))
        assert report.flows > 0
        bulk = telemetry.counter(
            "alvc_admission_bulk_flows_total", ""
        ).value
        resolved = telemetry.counter(
            "alvc_admission_pairs_resolved_total", ""
        ).value
        assert bulk > 0
        assert 0 < resolved <= bulk + len(report.dropped)

    def test_windowed_run_parity(self, clustered):
        inventory, clusters = clustered
        flows = self._flows(inventory, 21, n=40)
        reports = {}
        for mode in ("per_event", "batched"):
            simulator = EventDrivenFlowSimulator(
                inventory,
                clusters,
                engines={"sim_engine": "vector", "admission": mode},
            )
            reports[mode] = simulator.run(flows, until=0.25)
        self._assert_reports_equal(
            reports["batched"], reports["per_event"]
        )
        assert reports["batched"].in_flight == reports[
            "per_event"
        ].in_flight


class TestALFallbackResolution:
    """The group fan-out mirrors the per-event AL-then-flat retry."""

    def _hosts(self, inventory):
        return sorted(
            {inventory.host_of(vm.vm_id) for vm in inventory.all_vms()}
        )

    def test_al_violating_target_falls_back_per_pair(
        self, populated_inventory
    ):
        network = populated_inventory.network
        hosts = self._hosts(populated_inventory)
        ops = sorted(network.optical_switches())
        al = frozenset(ops[:2])
        outside = ops[-1]
        assert outside not in al
        plan = AdmissionPlan(network, _link_index(populated_inventory))
        source = hosts[0]
        # The group fan-out aborts (an endpoint outside the layer), the
        # per-target retry resolves what it can, and the flat retry
        # picks up the rest — every pair still gets an entry.
        plan.resolve_source(source, [hosts[1], outside], al)
        for destination in (hosts[1], outside):
            route = plan.lookup(source, destination, al)
            assert route is not NO_PLAN_ROUTE
            assert route.path[0] == source
            assert route.path[-1] == destination

    def test_resolve_source_skips_already_interned(
        self, populated_inventory
    ):
        plan = AdmissionPlan(
            populated_inventory.network,
            _link_index(populated_inventory),
        )
        hosts = self._hosts(populated_inventory)
        plan.resolve_source(hosts[0], [hosts[1]], None)
        size = len(plan)
        plan.resolve_source(hosts[0], [hosts[1]], None)  # early return
        assert len(plan) == size

    def test_resolve_tree_path_error_branches(self):
        from repro.topology.generators import build_alvc_fabric

        # No dual homing: cross-rack pairs route through OPS only, so
        # an empty layer severs them.
        fabric = build_alvc_fabric(
            n_racks=2,
            servers_per_rack=2,
            n_ops=2,
            dual_homing_fraction=0.0,
            seed=1,
        )
        assert resolve_tree_path(fabric, "server-0", "server-2", None)
        with pytest.raises(RoutingError, match="does not connect"):
            resolve_tree_path(fabric, "server-0", "server-2", frozenset())
        with pytest.raises(RoutingError, match="no path|unknown"):
            resolve_tree_path(fabric, "server-0", "no-such-host", None)
