"""Tests for the Flow value type."""

import pytest

from repro.sim.flows import Flow


class TestFlowValidation:
    def test_valid_flow(self):
        flow = Flow(
            flow_id="flow-0",
            source="vm-0",
            destination="vm-1",
            size_bytes=1e9,
        )
        assert flow.size_gb == pytest.approx(1.0)

    def test_identical_endpoints_rejected(self):
        with pytest.raises(ValueError):
            Flow(
                flow_id="flow-0",
                source="vm-0",
                destination="vm-0",
                size_bytes=1,
            )

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Flow(
                flow_id="flow-0",
                source="vm-0",
                destination="vm-1",
                size_bytes=0,
            )

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Flow(
                flow_id="flow-0",
                source="vm-0",
                destination="vm-1",
                size_bytes=1,
                arrival_time=-1,
            )

    def test_defaults(self):
        flow = Flow(
            flow_id="flow-0",
            source="vm-0",
            destination="vm-1",
            size_bytes=1,
        )
        assert flow.arrival_time == 0.0
        assert flow.intra_service is True

    def test_frozen(self):
        flow = Flow(
            flow_id="flow-0",
            source="vm-0",
            destination="vm-1",
            size_bytes=1,
        )
        with pytest.raises(AttributeError):
            flow.size_bytes = 2
