"""AL-sharded simulation: planning guards + deterministic merge.

The decomposition claim (``docs/api_guide.md``): intra-service flows
confined to capacity-disjoint abstraction layers can be simulated one
cluster per shard and merged bit-identically to the global run — with
``workers=4`` output equal to ``workers=1``.  The suite pins both the
claim and every refusal path that keeps it honest.
"""

import pytest

from repro.core.cluster import ClusterManager
from repro.exceptions import SimulationError
from repro.sim.event_simulator import (
    EventDrivenFlowSimulator,
    EventSimulationReport,
)
from repro.sim.faults import FaultEvent, FaultKind
from repro.sim.flows import Flow
from repro.sim.sharding import plan_shards, simulate_sharded
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.topology.generators import build_alvc_fabric
from repro.virtualization.machines import MachineInventory
from repro.virtualization.services import ServiceCatalog
from repro.virtualization.vm_placement import (
    PlacementStrategy,
    VmPlacementEngine,
)

SERVICES = ("web", "map-reduce", "sns")


def _build_inventory(vms_per_service=16):
    """A testbed dense enough that most flows cross hosts — the
    conftest placement packs 6 VMs onto so few servers that nearly
    every intra-service flow would be co-located (zero links)."""
    fabric = build_alvc_fabric(
        n_racks=8,
        servers_per_rack=8,
        n_ops=8,
        dual_homing_fraction=0.25,
        seed=11,
    )
    inventory = MachineInventory(fabric)
    catalog = ServiceCatalog.standard()
    placer = VmPlacementEngine(
        inventory, strategy=PlacementStrategy.SERVICE_AFFINITY, seed=3
    )
    for service_name in SERVICES:
        for _ in range(vms_per_service):
            placer.place(inventory.create_vm(catalog.get(service_name)))
    return inventory


@pytest.fixture(scope="module")
def clustered():
    inventory = _build_inventory()
    clusters = ClusterManager(inventory)
    for service in inventory.services_present():
        clusters.create_cluster(service)
    return inventory, clusters


def _workload(inventory, count=24, seed=7):
    generator = TrafficGenerator(
        inventory,
        TrafficConfig(intra_service_probability=1.0),
        seed=seed,
    )
    return generator.flows(count)


def _degrade_schedule(inventory, clusters, flows):
    """Capacity cuts on links every shard actually loads — degrades
    never displace flows, so shard footprints stay disjoint."""
    probe = EventDrivenFlowSimulator(
        inventory, clusters, engines={"sim_engine": "vector"}
    ).run(flows)
    victims = sorted(
        probe.link_busy_byte_seconds, key=lambda link: tuple(sorted(link))
    )[:3]
    return [
        FaultEvent(
            time=0.2 + 0.1 * index,
            kind=FaultKind.LINK_DEGRADE,
            target=tuple(sorted(victim)),
            severity=0.5,
        )
        for index, victim in enumerate(victims)
    ]


# ----------------------------------------------------------------------
# plan_shards: partitioning and its refusal paths
# ----------------------------------------------------------------------
class TestPlanShards:
    def test_partitions_by_cluster_in_id_order(self, clustered):
        inventory, clusters = clustered
        flows = _workload(inventory)
        plans = plan_shards(inventory, clusters, flows)
        assert [plan.cluster_id for plan in plans] == sorted(
            plan.cluster_id for plan in plans
        )
        merged = [flow for plan in plans for flow in plan.flows]
        assert sorted(f.flow_id for f in merged) == sorted(
            f.flow_id for f in flows
        )
        for index, plan in enumerate(plans):
            assert plan.servers and plan.al_switches
            for other in plans[index + 1 :]:
                assert not (plan.servers & other.servers)
                assert not (plan.al_switches & other.al_switches)

    def test_inter_service_flow_rejected(self, clustered):
        inventory, clusters = clustered
        first, second = inventory.vms_of_service("web")[:2]
        rogue = Flow(
            flow_id="rogue",
            source=first.vm_id,
            destination=second.vm_id,
            size_bytes=1.0,
            intra_service=False,
        )
        with pytest.raises(SimulationError, match="inter-service"):
            plan_shards(inventory, clusters, [rogue])

    def test_cross_service_endpoints_rejected(self, clustered):
        inventory, clusters = clustered
        liar = Flow(
            flow_id="liar",
            source=inventory.vms_of_service("web")[0].vm_id,
            destination=inventory.vms_of_service("sns")[0].vm_id,
            size_bytes=1.0,
            intra_service=True,
        )
        with pytest.raises(SimulationError, match="spans services"):
            plan_shards(inventory, clusters, [liar])

    def test_unclustered_service_rejected(self):
        inventory = _build_inventory(vms_per_service=4)
        clusters = ClusterManager(inventory)
        clusters.create_cluster("web")  # map-reduce and sns left bare
        flows = _workload(inventory)
        orphan = next(
            flow
            for flow in flows
            if inventory.get(flow.source).service != "web"
        )
        with pytest.raises(SimulationError, match="no cluster"):
            plan_shards(inventory, clusters, [orphan])

    def test_shared_footprints_rejected(self, clustered):
        inventory, _ = clustered
        web, web_peer = inventory.vms_of_service("web")[:2]
        sns, sns_peer = inventory.vms_of_service("sns")[:2]

        class _FakeCluster:
            def __init__(self, cluster_id, al_switches):
                self.cluster_id = cluster_id
                self.al_switches = al_switches

        class _FakeManager:
            def __init__(self, mapping):
                self._mapping = mapping

            def cluster_of_service(self, service):
                return self._mapping[service]

        flows = [
            Flow("wf", web.vm_id, web_peer.vm_id, 1.0),
            Flow("sf", sns.vm_id, sns_peer.vm_id, 1.0),
        ]
        sharing_ops = _FakeManager(
            {
                "web": _FakeCluster("c-web", frozenset({"ops-0"})),
                "sns": _FakeCluster("c-sns", frozenset({"ops-0"})),
            }
        )
        with pytest.raises(SimulationError, match="share AL switches"):
            plan_shards(inventory, sharing_ops, flows)
        # Same server under both shards: both flows sit on web's host,
        # but a stateful manager files them under different clusters.
        colocated = [
            Flow("wf", web.vm_id, web_peer.vm_id, 1.0),
            Flow("sf", web.vm_id, web_peer.vm_id, 1.0),
        ]

        class _SplitManager:
            def __init__(self):
                self._calls = 0

            def cluster_of_service(self, service):
                self._calls += 1
                name = "c-a" if self._calls == 1 else "c-b"
                ops = "ops-0" if name == "c-a" else "ops-1"
                return _FakeCluster(name, frozenset({ops}))

        with pytest.raises(SimulationError, match="share servers"):
            plan_shards(inventory, _SplitManager(), colocated)


# ----------------------------------------------------------------------
# simulate_sharded: bit-identical merge, worker determinism, guards
# ----------------------------------------------------------------------
class TestShardedParity:
    def test_matches_unsharded_vector_run(self, clustered):
        inventory, clusters = clustered
        flows = _workload(inventory)
        failures = _degrade_schedule(inventory, clusters, flows)
        merged = simulate_sharded(
            inventory, clusters, flows, failures, workers=1
        )
        unsharded = EventDrivenFlowSimulator(
            inventory, clusters, engines={"sim_engine": "vector"}
        ).run(flows, failures)
        assert merged == unsharded  # every field, failure events deduped

    def test_workers_four_bit_identical_to_one(self, clustered):
        inventory, clusters = clustered
        flows = _workload(inventory, count=30, seed=12)
        failures = _degrade_schedule(inventory, clusters, flows)
        sequential = simulate_sharded(
            inventory, clusters, flows, failures, workers=1
        )
        fanned_out = simulate_sharded(
            inventory, clusters, flows, failures, workers=4
        )
        assert fanned_out == sequential

    def test_windowed_run_merges_in_flight(self, clustered):
        inventory, clusters = clustered
        flows = _workload(inventory)
        horizon = sorted(flow.arrival_time for flow in flows)[
            len(flows) // 2
        ]
        # One failure inside the window, one beyond it: the merge must
        # only deduplicate the processed one.
        failures = [
            FaultEvent(
                time=horizon / 2,
                kind=FaultKind.OPS_CRASH,
                target="ops-0",
            ),
            FaultEvent(
                time=horizon + 1e9,
                kind=FaultKind.NODE_REPAIR,
                target="ops-0",
            ),
        ]
        merged = simulate_sharded(
            inventory, clusters, flows, failures, until=horizon, workers=1
        )
        unsharded = EventDrivenFlowSimulator(
            inventory, clusters, engines={"sim_engine": "vector"}
        ).run(flows, failures, until=horizon)
        assert merged == unsharded
        assert merged.in_flight > 0

    def test_empty_workload_plays_failures_once(self, clustered):
        inventory, clusters = clustered
        failures = [
            FaultEvent(time=0.1, kind=FaultKind.OPS_CRASH, target="ops-2")
        ]
        report = simulate_sharded(inventory, clusters, (), failures)
        assert report.completed == ()
        assert report.failed_nodes == ("ops-2",)
        assert report.events == 1

    def test_overlapping_shard_reports_rejected(self, clustered):
        inventory, clusters = clustered
        flows = _workload(inventory)
        shared = frozenset({"tor-0", "ops-0"})

        def _fake_report():
            return EventSimulationReport(
                completed=(),
                makespan=1.0,
                link_busy_byte_seconds={shared: 5.0},
                dropped=(),
                reroutes=0,
                failed_nodes=(),
                events=1,
                in_flight=0,
            )

        class _StubRunner:
            def map(self, fn, tasks):
                return [_fake_report() for _ in tasks]

        with pytest.raises(SimulationError, match="escaped"):
            simulate_sharded(
                inventory, clusters, flows, runner=_StubRunner()
            )

    def test_batched_admission_worker_invariant(self, clustered):
        inventory, clusters = clustered
        flows = _workload(inventory, count=30, seed=21)
        failures = _degrade_schedule(inventory, clusters, flows)
        engines = {"sim_engine": "vector", "admission": "batched"}
        per_event = EventDrivenFlowSimulator(
            inventory,
            clusters,
            engines={"sim_engine": "vector", "admission": "per_event"},
        ).run(flows, failures)
        sequential = simulate_sharded(
            inventory, clusters, flows, failures,
            workers=1, engines=engines,
        )
        fanned_out = simulate_sharded(
            inventory, clusters, flows, failures,
            workers=4, engines=engines,
        )
        assert sequential == per_event
        assert fanned_out == sequential
