"""Tests for the event-driven fair-share flow simulator."""

import pytest

from repro.core.cluster import ClusterManager
from repro.exceptions import SimulationError, ValidationError
from repro.sim.event_simulator import (
    ENGINES,
    CompletedFlow,
    EventDrivenFlowSimulator,
    EventSimulationReport,
)
from repro.sim.fairshare import link_of
from repro.sim.flows import Flow
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.topology.datacenter import DataCenterNetwork
from repro.topology.elements import (
    Domain,
    LinkSpec,
    OpticalSwitchSpec,
    ServerSpec,
    TorSpec,
)
from repro.virtualization.machines import MachineInventory


@pytest.fixture
def clustered(populated_inventory):
    clusters = ClusterManager(populated_inventory)
    for service in populated_inventory.services_present():
        clusters.create_cluster(service)
    return populated_inventory, clusters


def _two_remote_vms(inventory):
    """Two VMs on different servers (different services, so the flow is
    inter-service and flat-routed deterministically)."""
    web = inventory.vms_of_service("web")[0]
    sns = inventory.vms_of_service("sns")[0]
    assert inventory.host_of(web.vm_id) != inventory.host_of(sns.vm_id)
    return web, sns


class TestSingleFlow:
    def test_duration_matches_bottleneck(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flow = Flow(
            flow_id="flow-0",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=0.0,
            intra_service=False,
        )
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        report = simulator.run([flow])
        # 1 GB over an uncontended 8 Gbps (= 1 GB/s) path: 1 second.
        assert report.completed[0].duration == pytest.approx(1.0)
        assert report.makespan == pytest.approx(1.0)

    def test_colocated_flow_completes_instantly(
        self, inventory, service_catalog
    ):
        web = service_catalog.get("web")
        first = inventory.create_vm(web)
        second = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(first, server)
        inventory.place(second, server)
        flow = Flow(
            flow_id="flow-0",
            source=first.vm_id,
            destination=second.vm_id,
            size_bytes=1e12,
            arrival_time=2.0,
        )
        report = EventDrivenFlowSimulator(inventory).run([flow])
        record = report.completed[0]
        assert record.duration == 0.0
        assert record.hops == 0


class TestSharing:
    def test_two_flows_on_same_path_halve_rate(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source=source.vm_id,
                destination=destination.vm_id,
                size_bytes=1e9,
                arrival_time=0.0,
                intra_service=False,
            )
            for i in range(2)
        ]
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        report = simulator.run(flows)
        # Both share the path: each effectively gets 0.5 GB/s -> 2 s.
        for record in report.completed:
            assert record.duration == pytest.approx(2.0)

    def test_staggered_arrivals_fct_ordering(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        early = Flow(
            flow_id="flow-early",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=0.0,
            intra_service=False,
        )
        late = Flow(
            flow_id="flow-late",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=10.0,  # after the first completes
            intra_service=False,
        )
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        report = simulator.run([early, late])
        by_id = {record.flow_id: record for record in report.completed}
        # No overlap: both get the full rate.
        assert by_id["flow-early"].duration == pytest.approx(1.0)
        assert by_id["flow-late"].duration == pytest.approx(1.0)
        assert by_id["flow-late"].completion_time == pytest.approx(11.0)


class TestWorkloads:
    def test_all_flows_complete(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=30.0), seed=1
        )
        flows = generator.flows(120)
        report = EventDrivenFlowSimulator(inventory, clusters).run(flows)
        assert report.flows == 120
        assert report.makespan >= max(flow.arrival_time for flow in flows)

    def test_completion_after_arrival(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=2)
        report = EventDrivenFlowSimulator(inventory, clusters).run(
            generator.flows(60)
        )
        for record in report.completed:
            assert record.completion_time >= record.arrival_time

    def test_fct_statistics_shape(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=3)
        report = EventDrivenFlowSimulator(inventory, clusters).run(
            generator.flows(80)
        )
        stats = report.fct_statistics()
        assert 0 <= stats["median"] <= stats["p99"] <= stats["max"]
        assert stats["mean"] > 0

    def test_heavier_load_slower_fct(self, clustered):
        inventory, clusters = clustered

        def mean_fct(rate):
            generator = TrafficGenerator(
                inventory,
                TrafficConfig(arrival_rate=rate, sigma=0.5),
                seed=4,
            )
            report = EventDrivenFlowSimulator(inventory, clusters).run(
                generator.flows(150)
            )
            return report.fct_statistics()["mean"]

        # 10x the arrival rate compresses the same flows into a shorter
        # window: more contention, higher mean FCT.
        assert mean_fct(100.0) > mean_fct(10.0)

    def test_duplicate_flow_ids_rejected(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flow = Flow(
            flow_id="flow-0",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
        )
        with pytest.raises(SimulationError):
            EventDrivenFlowSimulator(inventory, clusters).run([flow, flow])

    def test_empty_workload(self, clustered):
        inventory, clusters = clustered
        report = EventDrivenFlowSimulator(inventory, clusters).run([])
        assert report.flows == 0
        assert report.makespan == 0.0

    def test_utilization_bounded(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=50.0), seed=5
        )
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        report = simulator.run(generator.flows(100))
        utilization = report.mean_link_utilization(simulator.capacities)
        assert 0.0 <= utilization <= 1.0 + 1e-9


class TestLoadAwareRouting:
    def test_load_aware_never_slower_on_contended_pair(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source=source.vm_id,
                destination=destination.vm_id,
                size_bytes=2e9,
                arrival_time=0.0,
                intra_service=False,
            )
            for i in range(6)
        ]
        shortest = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        ).run(flows)
        balanced = EventDrivenFlowSimulator(
            inventory,
            clusters,
            default_bandwidth_gbps=8.0,
            load_aware=True,
        ).run(flows)
        assert (
            balanced.fct_statistics()["mean"]
            <= shortest.fct_statistics()["mean"] + 1e-9
        )

    def test_load_aware_spreads_over_more_links(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source=source.vm_id,
                destination=destination.vm_id,
                size_bytes=2e9,
                arrival_time=0.0,
                intra_service=False,
            )
            for i in range(6)
        ]
        shortest = EventDrivenFlowSimulator(inventory, clusters).run(flows)
        balanced = EventDrivenFlowSimulator(
            inventory, clusters, load_aware=True
        ).run(flows)
        assert len(balanced.link_busy_byte_seconds) >= len(
            shortest.link_busy_byte_seconds
        )

    def test_load_aware_completes_everything(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=40.0), seed=9
        )
        report = EventDrivenFlowSimulator(
            inventory, clusters, load_aware=True
        ).run(generator.flows(80))
        assert report.flows == 80


class TestFailureInjection:
    def test_failure_reroutes_active_flow(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flow = Flow(
            flow_id="flow-0",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=8e9,  # long-lived at 8 Gbps
            arrival_time=0.0,
            intra_service=False,
        )
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        # Find an OPS on the flow's shortest path and kill it mid-flow.
        from repro.sdn.routing import simple_path

        path = simple_path(
            inventory.network,
            inventory.host_of(source.vm_id),
            inventory.host_of(destination.vm_id),
        )
        victim = next(node for node in path if node.startswith("ops"))
        report = simulator.run([flow], failures=[(1.0, victim)])
        assert report.failed_nodes == (victim,)
        if report.dropped:
            assert report.dropped == ("flow-0",)
        else:
            assert report.reroutes == 1
            record = report.completed[0]
            assert record.duration > 1.0  # it survived past the failure

    def test_unaffected_flows_keep_running(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=30.0), seed=11
        )
        flows = generator.flows(60)
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        # Fail a switch no flow may even use; everything still finishes.
        victim = inventory.network.optical_switches()[-1]
        report = simulator.run(flows, failures=[(0.5, victim)])
        assert report.flows + len(report.dropped) == 60

    def test_arrivals_after_failure_avoid_the_node(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        late = Flow(
            flow_id="flow-late",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=5.0,
            intra_service=False,
        )
        from repro.sdn.routing import simple_path

        path = simple_path(
            inventory.network,
            inventory.host_of(source.vm_id),
            inventory.host_of(destination.vm_id),
        )
        victim = next(node for node in path if node.startswith("ops"))
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        report = simulator.run([late], failures=[(0.0, victim)])
        # Either rerouted around the dead switch or dropped as
        # partitioned; never silently carried over it.
        assert victim in report.failed_nodes
        assert report.flows + len(report.dropped) == 1

    def test_unknown_failure_node_rejected(self, clustered):
        inventory, clusters = clustered
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        with pytest.raises(SimulationError):
            simulator.run([], failures=[(1.0, "mars")])

    def test_negative_failure_time_rejected(self, clustered):
        inventory, clusters = clustered
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        with pytest.raises(SimulationError):
            simulator.run([], failures=[(-1.0, "ops-0")])

    def test_simulator_reusable_after_failure_run(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=12)
        flows = generator.flows(20)
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        victim = inventory.network.optical_switches()[0]
        simulator.run(flows, failures=[(0.1, victim)])
        # A later clean run sees the full fabric again.
        clean = simulator.run(flows)
        assert clean.flows == 20
        assert clean.failed_nodes == ()
        assert clean.dropped == ()

    def test_duplicate_failure_ignored(self, clustered):
        inventory, clusters = clustered
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        victim = inventory.network.optical_switches()[0]
        report = simulator.run(
            [], failures=[(0.1, victim), (0.2, victim)]
        )
        assert report.failed_nodes == (victim,)


# ----------------------------------------------------------------------
# Engine selection and bit-for-bit parity
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("incremental", "from_scratch", "legacy", "vector")

    def test_default_engine_is_incremental(self, clustered):
        inventory, clusters = clustered
        assert EventDrivenFlowSimulator(inventory, clusters).engine == (
            "incremental"
        )

    def test_unknown_engine_rejected(self, clustered):
        inventory, clusters = clustered
        with pytest.raises(ValidationError):
            EventDrivenFlowSimulator(
                inventory, clusters, engines={"sim_engine": "warp"}
            )

    def test_deprecated_engine_kwarg_warns_and_selects(self, clustered):
        inventory, clusters = clustered
        with pytest.warns(DeprecationWarning, match="engines="):
            simulator = EventDrivenFlowSimulator(
                inventory, clusters, engine="vector"
            )
        assert simulator.engine == "vector"

    def test_deprecated_engine_kwarg_still_validates(self, clustered):
        inventory, clusters = clustered
        with pytest.raises(ValidationError):
            EventDrivenFlowSimulator(inventory, clusters, engine="warp")

    def test_conflicting_engine_spellings_rejected(self, clustered):
        inventory, clusters = clustered
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValidationError, match="conflicting"):
                EventDrivenFlowSimulator(
                    inventory,
                    clusters,
                    engine="legacy",
                    engines={"sim_engine": "vector"},
                )

    def test_negative_cache_size_rejected(self, clustered):
        inventory, clusters = clustered
        with pytest.raises(ValidationError):
            EventDrivenFlowSimulator(
                inventory, clusters, route_cache_size=-1
            )

    def test_non_positive_bandwidth_rejected(self, clustered):
        inventory, clusters = clustered
        with pytest.raises(ValidationError):
            EventDrivenFlowSimulator(
                inventory, clusters, default_bandwidth_gbps=0.0
            )

    def test_events_counted(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=21)
        report = EventDrivenFlowSimulator(inventory, clusters).run(
            generator.flows(30)
        )
        # At least one arrival and one completion event per flow.
        assert report.events >= 30


class TestEngineParity:
    """The incremental hot path and the vectorized data plane must both
    reproduce the reference engine's `CompletedFlow` stream bit for bit
    (ids, times, hops)."""

    @pytest.mark.parametrize("seed", [101, 102, 103, 104, 105, 106])
    def test_randomized_workload_bit_parity(self, clustered, seed):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=60.0, sigma=0.8), seed=seed
        )
        flows = generator.flows(150)
        reports = {
            engine: EventDrivenFlowSimulator(
                inventory, clusters, engines={"sim_engine": engine}
            ).run(flows)
            for engine in ("from_scratch", "incremental", "vector")
        }
        for engine in ("incremental", "vector"):
            assert (
                reports[engine].completed
                == reports["from_scratch"].completed
            )
            assert reports[engine].makespan == reports["from_scratch"].makespan
            assert (
                reports[engine].link_busy_byte_seconds
                == reports["from_scratch"].link_busy_byte_seconds
            )

    @pytest.mark.parametrize("seed", [31, 32])
    def test_parity_under_load_aware_routing(self, clustered, seed):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=50.0), seed=seed
        )
        flows = generator.flows(100)
        reports = [
            EventDrivenFlowSimulator(
                inventory,
                clusters,
                engines={"sim_engine": engine},
                load_aware=True,
            ).run(flows)
            for engine in ("from_scratch", "incremental", "vector")
        ]
        assert reports[0].completed == reports[1].completed
        assert reports[0].completed == reports[2].completed

    def test_parity_under_failures(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=40.0), seed=41
        )
        flows = generator.flows(80)
        victims = inventory.network.optical_switches()[:2]
        failures = [(0.05, victims[0]), (0.4, victims[1])]
        reports = [
            EventDrivenFlowSimulator(
                inventory, clusters, engines={"sim_engine": engine}
            ).run(flows, failures=failures)
            for engine in ("from_scratch", "incremental", "vector")
        ]
        for report in reports[1:]:
            assert report.completed == reports[0].completed
            assert report.dropped == reports[0].dropped
            assert report.reroutes == reports[0].reroutes

    def test_route_cache_does_not_change_results(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=60.0), seed=51
        )
        flows = generator.flows(120)
        cached = EventDrivenFlowSimulator(inventory, clusters).run(flows)
        uncached = EventDrivenFlowSimulator(
            inventory, clusters, route_cache_size=0
        ).run(flows)
        assert cached.completed == uncached.completed

    @pytest.mark.parametrize("seed", [61, 62])
    def test_legacy_engine_agrees_approximately(self, clustered, seed):
        """The verbatim pre-optimization loop steps progress eagerly at
        every event, so float error accumulates differently — results
        agree to tolerance, not bit for bit."""
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=40.0), seed=seed
        )
        flows = generator.flows(80)
        fast = EventDrivenFlowSimulator(
            inventory, clusters, engines={"sim_engine": "incremental"}
        ).run(flows)
        slow = EventDrivenFlowSimulator(
            inventory, clusters, engines={"sim_engine": "legacy"}
        ).run(flows)
        assert [record.flow_id for record in fast.completed] == [
            record.flow_id for record in slow.completed
        ]
        for ours, theirs in zip(fast.completed, slow.completed):
            assert ours.completion_time == pytest.approx(
                theirs.completion_time, rel=1e-6, abs=1e-6
            )
            assert ours.hops == theirs.hops
        assert fast.makespan == pytest.approx(slow.makespan, rel=1e-6)


# ----------------------------------------------------------------------
# Route-cache integration
# ----------------------------------------------------------------------
class TestRouteCacheIntegration:
    def test_repeated_pairs_hit_the_cache(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source=source.vm_id,
                destination=destination.vm_id,
                size_bytes=1e8,
                arrival_time=0.1 * i,
                intra_service=False,
            )
            for i in range(10)
        ]
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        simulator.run(flows)
        cache = simulator.route_cache
        assert cache is not None
        assert cache.hits >= 9  # first arrival misses, the rest hit
        assert cache.misses >= 1

    def test_cache_disabled_with_zero_size(self, clustered):
        inventory, clusters = clustered
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, route_cache_size=0
        )
        assert simulator.route_cache is None
        assert simulator.invalidate_routes() == 0

    def test_invalidate_routes_drops_entries(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=71)
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        simulator.run(generator.flows(30))
        assert len(simulator.route_cache) > 0
        dropped = simulator.invalidate_routes()
        assert dropped > 0
        assert len(simulator.route_cache) == 0

    def test_failure_runs_do_not_poison_the_cache(self, clustered):
        """A run with failures must not leave routes through dead nodes
        cached for the next (clean) run."""
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flow = Flow(
            flow_id="flow-0",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=0.0,
            intra_service=False,
        )
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        victim = inventory.network.optical_switches()[0]
        simulator.run([flow], failures=[(0.0, victim)])
        clean = simulator.run([flow])
        assert clean.flows == 1
        assert clean.completed[0].duration == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Parallel-link capacity regression (satellite bugfix)
# ----------------------------------------------------------------------
def _parallel_link_inventory(members: int) -> MachineInventory:
    """Fabric with ``members`` parallel 10 Gbps links on one trunk:

    srv-0 — tor-0 ={members}= ops-0 — tor-1 — srv-1
    """
    dcn = DataCenterNetwork("parallel")
    dcn.add_server(ServerSpec(server_id="srv-0"))
    dcn.add_server(ServerSpec(server_id="srv-1"))
    dcn.add_tor(TorSpec(tor_id="tor-0"))
    dcn.add_tor(TorSpec(tor_id="tor-1", rack=1))
    dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-0"))
    dcn.connect("srv-0", "tor-0")
    dcn.connect("srv-1", "tor-1")
    for _ in range(members):
        dcn.connect(
            "tor-0",
            "ops-0",
            LinkSpec(domain=Domain.OPTICAL, bandwidth_gbps=10.0),
        )
    dcn.connect(
        "tor-1", "ops-0", LinkSpec(domain=Domain.OPTICAL, bandwidth_gbps=10.0)
    )
    return MachineInventory(dcn)


class TestParallelLinkCapacity:
    def test_trunk_capacity_aggregates(self, service_catalog):
        inventory = _parallel_link_inventory(members=2)
        simulator = EventDrivenFlowSimulator(inventory)
        trunk = link_of("tor-0", "ops-0")
        single = link_of("tor-1", "ops-0")
        # 2 x 10 Gbps -> 20 Gbps -> 2.5e9 bytes/s; the single-member
        # link keeps 10 Gbps.  Before the fix the trunk collapsed to
        # the last member's 10 Gbps.
        assert simulator.capacities[trunk] == pytest.approx(2.5e9)
        assert simulator.capacities[single] == pytest.approx(1.25e9)

    def test_bandwidth_override_scales_with_member_count(
        self, service_catalog
    ):
        inventory = _parallel_link_inventory(members=3)
        simulator = EventDrivenFlowSimulator(
            inventory, default_bandwidth_gbps=8.0
        )
        trunk = link_of("tor-0", "ops-0")
        # Override applies per physical member: 3 x 8 Gbps = 3 GB/s.
        assert simulator.capacities[trunk] == pytest.approx(3e9)

    def test_flow_uses_full_trunk_bandwidth(self, service_catalog):
        inventory = _parallel_link_inventory(members=2)
        web = service_catalog.get("web")
        first = inventory.create_vm(web)
        second = inventory.create_vm(web)
        inventory.place(first, "srv-0")
        inventory.place(second, "srv-1")
        flow = Flow(
            flow_id="flow-0",
            source=first.vm_id,
            destination=second.vm_id,
            size_bytes=1.25e9,
            arrival_time=0.0,
        )
        report = EventDrivenFlowSimulator(inventory).run([flow])
        # Bottleneck is the single 10 Gbps (=1.25 GB/s) tor-1 uplink,
        # not the 20 Gbps trunk: exactly 1 second.
        assert report.completed[0].duration == pytest.approx(1.0)


# ----------------------------------------------------------------------
# mean_link_utilization hardening (satellite bugfix)
# ----------------------------------------------------------------------
class TestMeanLinkUtilization:
    LINK = link_of("tor-0", "ops-0")
    OTHER = link_of("tor-1", "ops-0")

    def _report(self, busy):
        return EventSimulationReport(
            completed=(
                CompletedFlow(
                    flow_id="flow-0",
                    size_bytes=1e9,
                    arrival_time=0.0,
                    completion_time=2.0,
                    hops=4,
                ),
            ),
            makespan=2.0,
            link_busy_byte_seconds=busy,
        )

    def test_unknown_busy_link_raises(self):
        report = self._report({self.LINK: 1e9})
        with pytest.raises(SimulationError, match="no capacity entry"):
            report.mean_link_utilization({})

    def test_negative_capacity_raises(self):
        report = self._report({self.LINK: 1e9})
        with pytest.raises(SimulationError, match="negative capacity"):
            report.mean_link_utilization({self.LINK: -1.0})

    def test_zero_capacity_with_traffic_raises(self):
        report = self._report({self.LINK: 1e9})
        with pytest.raises(SimulationError, match="zero-capacity"):
            report.mean_link_utilization({self.LINK: 0.0})

    def test_zero_capacity_idle_link_counts_as_zero(self):
        # An idle zero-capacity link drags the mean down instead of
        # being silently skipped (the old upward bias).
        report = self._report({self.LINK: 2e9, self.OTHER: 0.0})
        value = report.mean_link_utilization(
            {self.LINK: 1e9, self.OTHER: 0.0}
        )
        assert value == pytest.approx(0.5)  # (1.0 + 0.0) / 2

    def test_normal_utilization(self):
        report = self._report({self.LINK: 1e9})
        assert report.mean_link_utilization(
            {self.LINK: 1e9}
        ) == pytest.approx(0.5)
