"""Tests for the event-driven fair-share flow simulator."""

import pytest

from repro.core.cluster import ClusterManager
from repro.exceptions import SimulationError
from repro.sim.event_simulator import EventDrivenFlowSimulator
from repro.sim.flows import Flow
from repro.sim.traffic import TrafficConfig, TrafficGenerator


@pytest.fixture
def clustered(populated_inventory):
    clusters = ClusterManager(populated_inventory)
    for service in populated_inventory.services_present():
        clusters.create_cluster(service)
    return populated_inventory, clusters


def _two_remote_vms(inventory):
    """Two VMs on different servers (different services, so the flow is
    inter-service and flat-routed deterministically)."""
    web = inventory.vms_of_service("web")[0]
    sns = inventory.vms_of_service("sns")[0]
    assert inventory.host_of(web.vm_id) != inventory.host_of(sns.vm_id)
    return web, sns


class TestSingleFlow:
    def test_duration_matches_bottleneck(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flow = Flow(
            flow_id="flow-0",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=0.0,
            intra_service=False,
        )
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        report = simulator.run([flow])
        # 1 GB over an uncontended 8 Gbps (= 1 GB/s) path: 1 second.
        assert report.completed[0].duration == pytest.approx(1.0)
        assert report.makespan == pytest.approx(1.0)

    def test_colocated_flow_completes_instantly(
        self, inventory, service_catalog
    ):
        web = service_catalog.get("web")
        first = inventory.create_vm(web)
        second = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(first, server)
        inventory.place(second, server)
        flow = Flow(
            flow_id="flow-0",
            source=first.vm_id,
            destination=second.vm_id,
            size_bytes=1e12,
            arrival_time=2.0,
        )
        report = EventDrivenFlowSimulator(inventory).run([flow])
        record = report.completed[0]
        assert record.duration == 0.0
        assert record.hops == 0


class TestSharing:
    def test_two_flows_on_same_path_halve_rate(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source=source.vm_id,
                destination=destination.vm_id,
                size_bytes=1e9,
                arrival_time=0.0,
                intra_service=False,
            )
            for i in range(2)
        ]
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        report = simulator.run(flows)
        # Both share the path: each effectively gets 0.5 GB/s -> 2 s.
        for record in report.completed:
            assert record.duration == pytest.approx(2.0)

    def test_staggered_arrivals_fct_ordering(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        early = Flow(
            flow_id="flow-early",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=0.0,
            intra_service=False,
        )
        late = Flow(
            flow_id="flow-late",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=10.0,  # after the first completes
            intra_service=False,
        )
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        report = simulator.run([early, late])
        by_id = {record.flow_id: record for record in report.completed}
        # No overlap: both get the full rate.
        assert by_id["flow-early"].duration == pytest.approx(1.0)
        assert by_id["flow-late"].duration == pytest.approx(1.0)
        assert by_id["flow-late"].completion_time == pytest.approx(11.0)


class TestWorkloads:
    def test_all_flows_complete(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=30.0), seed=1
        )
        flows = generator.flows(120)
        report = EventDrivenFlowSimulator(inventory, clusters).run(flows)
        assert report.flows == 120
        assert report.makespan >= max(flow.arrival_time for flow in flows)

    def test_completion_after_arrival(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=2)
        report = EventDrivenFlowSimulator(inventory, clusters).run(
            generator.flows(60)
        )
        for record in report.completed:
            assert record.completion_time >= record.arrival_time

    def test_fct_statistics_shape(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=3)
        report = EventDrivenFlowSimulator(inventory, clusters).run(
            generator.flows(80)
        )
        stats = report.fct_statistics()
        assert 0 <= stats["median"] <= stats["p99"] <= stats["max"]
        assert stats["mean"] > 0

    def test_heavier_load_slower_fct(self, clustered):
        inventory, clusters = clustered

        def mean_fct(rate):
            generator = TrafficGenerator(
                inventory,
                TrafficConfig(arrival_rate=rate, sigma=0.5),
                seed=4,
            )
            report = EventDrivenFlowSimulator(inventory, clusters).run(
                generator.flows(150)
            )
            return report.fct_statistics()["mean"]

        # 10x the arrival rate compresses the same flows into a shorter
        # window: more contention, higher mean FCT.
        assert mean_fct(100.0) > mean_fct(10.0)

    def test_duplicate_flow_ids_rejected(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flow = Flow(
            flow_id="flow-0",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
        )
        with pytest.raises(SimulationError):
            EventDrivenFlowSimulator(inventory, clusters).run([flow, flow])

    def test_empty_workload(self, clustered):
        inventory, clusters = clustered
        report = EventDrivenFlowSimulator(inventory, clusters).run([])
        assert report.flows == 0
        assert report.makespan == 0.0

    def test_utilization_bounded(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=50.0), seed=5
        )
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        report = simulator.run(generator.flows(100))
        utilization = report.mean_link_utilization(simulator.capacities)
        assert 0.0 <= utilization <= 1.0 + 1e-9


class TestLoadAwareRouting:
    def test_load_aware_never_slower_on_contended_pair(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source=source.vm_id,
                destination=destination.vm_id,
                size_bytes=2e9,
                arrival_time=0.0,
                intra_service=False,
            )
            for i in range(6)
        ]
        shortest = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        ).run(flows)
        balanced = EventDrivenFlowSimulator(
            inventory,
            clusters,
            default_bandwidth_gbps=8.0,
            load_aware=True,
        ).run(flows)
        assert (
            balanced.fct_statistics()["mean"]
            <= shortest.fct_statistics()["mean"] + 1e-9
        )

    def test_load_aware_spreads_over_more_links(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flows = [
            Flow(
                flow_id=f"flow-{i}",
                source=source.vm_id,
                destination=destination.vm_id,
                size_bytes=2e9,
                arrival_time=0.0,
                intra_service=False,
            )
            for i in range(6)
        ]
        shortest = EventDrivenFlowSimulator(inventory, clusters).run(flows)
        balanced = EventDrivenFlowSimulator(
            inventory, clusters, load_aware=True
        ).run(flows)
        assert len(balanced.link_busy_byte_seconds) >= len(
            shortest.link_busy_byte_seconds
        )

    def test_load_aware_completes_everything(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=40.0), seed=9
        )
        report = EventDrivenFlowSimulator(
            inventory, clusters, load_aware=True
        ).run(generator.flows(80))
        assert report.flows == 80


class TestFailureInjection:
    def test_failure_reroutes_active_flow(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        flow = Flow(
            flow_id="flow-0",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=8e9,  # long-lived at 8 Gbps
            arrival_time=0.0,
            intra_service=False,
        )
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, default_bandwidth_gbps=8.0
        )
        # Find an OPS on the flow's shortest path and kill it mid-flow.
        from repro.sdn.routing import simple_path

        path = simple_path(
            inventory.network,
            inventory.host_of(source.vm_id),
            inventory.host_of(destination.vm_id),
        )
        victim = next(node for node in path if node.startswith("ops"))
        report = simulator.run([flow], failures=[(1.0, victim)])
        assert report.failed_nodes == (victim,)
        if report.dropped:
            assert report.dropped == ("flow-0",)
        else:
            assert report.reroutes == 1
            record = report.completed[0]
            assert record.duration > 1.0  # it survived past the failure

    def test_unaffected_flows_keep_running(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=30.0), seed=11
        )
        flows = generator.flows(60)
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        # Fail a switch no flow may even use; everything still finishes.
        victim = inventory.network.optical_switches()[-1]
        report = simulator.run(flows, failures=[(0.5, victim)])
        assert report.flows + len(report.dropped) == 60

    def test_arrivals_after_failure_avoid_the_node(self, clustered):
        inventory, clusters = clustered
        source, destination = _two_remote_vms(inventory)
        late = Flow(
            flow_id="flow-late",
            source=source.vm_id,
            destination=destination.vm_id,
            size_bytes=1e9,
            arrival_time=5.0,
            intra_service=False,
        )
        from repro.sdn.routing import simple_path

        path = simple_path(
            inventory.network,
            inventory.host_of(source.vm_id),
            inventory.host_of(destination.vm_id),
        )
        victim = next(node for node in path if node.startswith("ops"))
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        report = simulator.run([late], failures=[(0.0, victim)])
        # Either rerouted around the dead switch or dropped as
        # partitioned; never silently carried over it.
        assert victim in report.failed_nodes
        assert report.flows + len(report.dropped) == 1

    def test_unknown_failure_node_rejected(self, clustered):
        inventory, clusters = clustered
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        with pytest.raises(SimulationError):
            simulator.run([], failures=[(1.0, "mars")])

    def test_negative_failure_time_rejected(self, clustered):
        inventory, clusters = clustered
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        with pytest.raises(SimulationError):
            simulator.run([], failures=[(-1.0, "ops-0")])

    def test_simulator_reusable_after_failure_run(self, clustered):
        inventory, clusters = clustered
        generator = TrafficGenerator(inventory, seed=12)
        flows = generator.flows(20)
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        victim = inventory.network.optical_switches()[0]
        simulator.run(flows, failures=[(0.1, victim)])
        # A later clean run sees the full fabric again.
        clean = simulator.run(flows)
        assert clean.flows == 20
        assert clean.failed_nodes == ()
        assert clean.dropped == ()

    def test_duplicate_failure_ignored(self, clustered):
        inventory, clusters = clustered
        simulator = EventDrivenFlowSimulator(inventory, clusters)
        victim = inventory.network.optical_switches()[0]
        report = simulator.run(
            [], failures=[(0.1, victim), (0.2, victim)]
        )
        assert report.failed_nodes == (victim,)
