"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.events import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda t: order.append("b"))
        queue.schedule(1.0, lambda t: order.append("a"))
        for _ in range(2):
            _, callback = queue.pop()
            callback(0)
        assert order == ["a", "b"]

    def test_simultaneous_events_fifo(self):
        queue = EventQueue()
        order = []
        for name in "abc":
            queue.schedule(1.0, lambda t, n=name: order.append(n))
        while queue:
            _, callback = queue.pop()
            callback(1.0)
        assert order == ["a", "b", "c"]

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, lambda t: None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(5.0, lambda t: None)
        assert queue.peek_time() == 5.0

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0, lambda t: None)
        assert len(queue) == 1
        assert queue


class TestSimulator:
    def test_run_advances_time(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda t: None)
        sim.run()
        assert sim.now == 3.0
        assert sim.events_processed == 1

    def test_run_until_leaves_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda t: fired.append(t))
        sim.schedule_at(5.0, lambda t: fired.append(t))
        sim.run(until=2.0)
        assert fired == [1.0]
        assert len(sim.queue) == 1
        # now advances to the until bound only when the queue is empty; a
        # pending later event keeps the clock at the last fired event.
        assert sim.now == 1.0

    def test_run_until_empty_advances_clock(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_callbacks_receive_fire_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.5, seen.append)
        sim.run()
        assert seen == [2.5]

    def test_schedule_in_relative(self):
        sim = Simulator()
        times = []
        def chain(t):
            times.append(t)
            if len(times) < 3:
                sim.schedule_in(1.0, chain)
        sim.schedule_at(1.0, chain)
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda t: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda t: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda t: None)

    def test_max_events_cap(self):
        sim = Simulator()
        for index in range(10):
            sim.schedule_at(float(index), lambda t: None)
        processed = sim.run(max_events=4)
        assert processed == 4
        assert len(sim.queue) == 6

    def test_run_returns_count(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda t: None)
        sim.schedule_at(2.0, lambda t: None)
        assert sim.run() == 2
