"""Seeded three-way parity: incremental vs from-scratch vs vector.

The vectorized data plane's whole claim is **bit-identical** max-min
rates: ``np.subtract.at`` replays the dict engine's sequential IEEE
subtractions, the deferred per-round clamp is provably equivalent to
the per-subtraction clamp, and the rank-ordered ``argmin`` replicates
the ``sorted(link)`` tie-break.  This suite pins that claim on 200+
randomized instances — kernel-level add/remove/capacity-cut sequences
and full simulator runs with ``FaultEvent`` schedules (capacity cuts
mid-run included) — following the PR 4/PR 8 seeded-parity pattern.
"""

import random

import numpy as np
import pytest

from repro.sim.event_simulator import EventDrivenFlowSimulator
from repro.sim.fairshare import FairShareEngine, max_min_fair_rates
from repro.sim.faults import FaultEvent, FaultKind
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.sim.vector import VectorFairShareEngine

#: 160 kernel instances + 60 simulator instances = 220 seeds.
KERNEL_CHUNKS = [range(start, start + 20) for start in range(0, 160, 20)]
SIM_CHUNKS = [range(start, start + 10) for start in range(1000, 1060, 10)]


@pytest.fixture
def clustered(populated_inventory):
    from repro.core.cluster import ClusterManager

    clusters = ClusterManager(populated_inventory)
    for service in populated_inventory.services_present():
        clusters.create_cluster(service)
    return populated_inventory, clusters


def _random_instance(rng: random.Random):
    """A random capacity map plus unique-link flow paths.

    Capacities come from a tiny value set so exact ratio ties (the
    tie-break path) occur often; each path samples links without
    replacement (the dict engine's member bookkeeping assumes a flow
    crosses a link at most once).
    """
    nodes = [f"n{index}" for index in range(rng.randint(4, 12))]
    caps = {}
    while len(caps) < rng.randint(3, 14):
        a, b = rng.sample(nodes, 2)
        caps[frozenset({a, b})] = rng.choice([1.0, 2.5, 4.0, 10.0, 10.0])
    links = list(caps)
    paths = {
        f"f{index}": rng.sample(links, rng.randint(0, min(5, len(links))))
        for index in range(rng.randint(1, 40))
    }
    return caps, paths


def _assert_rates_equal(got: dict, want: dict):
    assert set(got) == set(want)
    for flow, rate in want.items():
        if np.isinf(rate):
            assert np.isinf(got[flow])
        else:
            assert got[flow] == rate, flow


class TestKernelParity:
    """VectorFairShareEngine vs FairShareEngine vs max_min_fair_rates."""

    @pytest.mark.parametrize("seeds", KERNEL_CHUNKS)
    def test_randomized_instances(self, seeds):
        for seed in seeds:
            rng = random.Random(seed)
            caps, paths = _random_instance(rng)
            dict_engine = FairShareEngine(caps)
            vector_engine = VectorFairShareEngine(caps)
            for flow, path in paths.items():
                dict_engine.add_flow(flow, path)
                vector_engine.add_flow(flow, path)

            reference = max_min_fair_rates(paths, caps)
            _assert_rates_equal(dict_engine.recompute(), reference)
            _assert_rates_equal(vector_engine.rates_by_flow(), reference)

            # Incremental churn: drop a random subset and recompare —
            # the vector table must stay exact across slot reuse.
            doomed = [
                flow for flow in paths if rng.random() < 0.4
            ]
            for flow in doomed:
                dict_engine.remove_flow(flow)
                vector_engine.remove_flow(flow)
            survivors = {
                flow: path
                for flow, path in paths.items()
                if flow not in doomed
            }
            reference = max_min_fair_rates(survivors, caps)
            _assert_rates_equal(dict_engine.recompute(), reference)
            _assert_rates_equal(vector_engine.rates_by_flow(), reference)

    @pytest.mark.parametrize("seeds", KERNEL_CHUNKS[:2])
    def test_capacity_cuts_mid_sequence(self, seeds):
        """The FaultEvent revocation hook (``set_capacity``) at the
        kernel level: degrade a loaded link, recompute, restore."""
        for seed in seeds:
            rng = random.Random(seed ^ 0xC0FFEE)
            caps, paths = _random_instance(rng)
            dict_engine = FairShareEngine(caps)
            vector_engine = VectorFairShareEngine(caps)
            for flow, path in paths.items():
                dict_engine.add_flow(flow, path)
                vector_engine.add_flow(flow, path)
            victim = rng.choice(list(caps))
            for capacity in (caps[victim] * 0.25, caps[victim]):
                dict_engine.set_capacity(victim, capacity)
                vector_engine.set_capacity(victim, capacity)
                degraded = {**caps, victim: capacity}
                reference = max_min_fair_rates(paths, degraded)
                _assert_rates_equal(dict_engine.recompute(), reference)
                _assert_rates_equal(vector_engine.rates_by_flow(), reference)


def _fault_schedule(rng: random.Random, network) -> list:
    """A randomized FaultEvent schedule with capacity cuts mid-run."""
    edges = sorted(
        (a, b) for a, b, _ in network.edges()
    )
    ops = network.optical_switches()
    schedule = []
    for _ in range(rng.randint(1, 3)):
        a, b = rng.choice(edges)
        schedule.append(
            FaultEvent(
                time=round(rng.uniform(0.1, 1.5), 3),
                kind=FaultKind.LINK_DEGRADE,
                target=(a, b),
                severity=rng.choice([0.25, 0.5, 0.75]),
            )
        )
    if rng.random() < 0.7:
        a, b = rng.choice(edges)
        cut_at = round(rng.uniform(0.1, 1.0), 3)
        schedule.append(
            FaultEvent(time=cut_at, kind=FaultKind.LINK_CUT, target=(a, b))
        )
        schedule.append(
            FaultEvent(
                time=cut_at + 0.5,
                kind=FaultKind.LINK_REPAIR,
                target=(a, b),
            )
        )
    if rng.random() < 0.5 and ops:
        victim = rng.choice(ops)
        crash_at = round(rng.uniform(0.1, 0.8), 3)
        schedule.append(
            FaultEvent(
                time=crash_at, kind=FaultKind.OPS_CRASH, target=victim
            )
        )
        schedule.append(
            FaultEvent(
                time=crash_at + 0.6,
                kind=FaultKind.NODE_REPAIR,
                target=victim,
            )
        )
    return schedule


class TestSimulatorParity:
    """Full event-loop three-way parity under FaultEvent schedules."""

    @pytest.mark.parametrize("seeds", SIM_CHUNKS)
    def test_randomized_fault_schedules(self, clustered, seeds):
        inventory, clusters = clustered
        for seed in seeds:
            rng = random.Random(seed)
            generator = TrafficGenerator(
                inventory,
                TrafficConfig(arrival_rate=40.0, sigma=0.8),
                seed=seed,
            )
            flows = generator.flows(30)
            failures = _fault_schedule(rng, inventory.network)
            reports = {
                engine: EventDrivenFlowSimulator(
                    inventory, clusters, engines={"sim_engine": engine}
                ).run(flows, failures=failures)
                for engine in ("from_scratch", "incremental", "vector")
            }
            baseline = reports["from_scratch"]
            for engine in ("incremental", "vector"):
                report = reports[engine]
                assert report.completed == baseline.completed, seed
                assert report.dropped == baseline.dropped, seed
                assert report.reroutes == baseline.reroutes, seed
                assert report.makespan == baseline.makespan, seed
                assert (
                    report.link_busy_byte_seconds
                    == baseline.link_busy_byte_seconds
                ), seed


class TestAdmissionParity:
    """Explicit per_event vs batched admission — same vector engine."""

    @pytest.mark.parametrize("seeds", [range(2000, 2010)])
    def test_fault_schedules_bit_identical(self, clustered, seeds):
        inventory, clusters = clustered
        for seed in seeds:
            rng = random.Random(seed)
            generator = TrafficGenerator(
                inventory,
                TrafficConfig(arrival_rate=40.0, sigma=0.8),
                seed=seed,
            )
            flows = generator.flows(30)
            failures = _fault_schedule(rng, inventory.network)
            reports = {
                mode: EventDrivenFlowSimulator(
                    inventory,
                    clusters,
                    engines={
                        "sim_engine": "vector",
                        "admission": mode,
                    },
                ).run(flows, failures=failures)
                for mode in ("per_event", "batched")
            }
            assert reports["batched"] == reports["per_event"], seed
