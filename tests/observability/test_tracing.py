"""Tracer/Span semantics: nesting, attributes, bounded buffer, no-op."""

import pytest

from repro.exceptions import TelemetryError
from repro.observability import NullTracer, Tracer
from repro.observability.runtime import (
    Telemetry,
    current_telemetry,
    resolve,
    use_telemetry,
)


class TestSpans:
    def test_span_records_name_and_duration(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        [span] = tracer.finished_spans()
        assert span.name == "work"
        assert span.duration >= 0

    def test_nested_spans_link_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sorted(
            tracer.finished_spans(), key=lambda span: span.name
        )
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [child.name for child in tracer.children_of(outer)] == ["inner"]

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("work", chain="c0") as span:
            span.set(hops=3)
        [finished] = tracer.finished_spans()
        assert finished.attributes == {"chain": "c0", "hops": 3}

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        [span] = tracer.finished_spans()
        assert span.attributes["error"] == "RuntimeError"
        assert tracer.stats()["work"].errors == 1

    def test_stats_aggregate_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("work"):
                pass
        stats = tracer.stats()["work"]
        assert stats.count == 3
        assert stats.total_seconds >= 0
        assert stats.mean_seconds == pytest.approx(stats.total_seconds / 3)

    def test_span_buffer_is_bounded_but_stats_complete(self):
        tracer = Tracer(max_spans=4)
        for _ in range(10):
            with tracer.span("work"):
                pass
        assert len(tracer.finished_spans()) == 4
        assert tracer.stats()["work"].count == 10


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        tracer = NullTracer()
        assert not tracer.enabled
        assert tracer.span("a") is tracer.span("b", key="value")
        with tracer.span("a") as span:
            span.set(anything=1)
        assert tracer.finished_spans() == []
        assert tracer.stats() == {}


class TestRuntime:
    def test_ambient_default_is_disabled(self):
        assert not current_telemetry().enabled

    def test_use_telemetry_installs_and_restores(self):
        before = current_telemetry()
        enabled = Telemetry.enabled_instance()
        with use_telemetry(enabled):
            assert current_telemetry() is enabled
        assert current_telemetry() is before

    def test_resolve_modes(self):
        assert not resolve(False).enabled
        assert not resolve("off").enabled
        assert resolve(True).enabled
        assert resolve("json").enabled
        assert resolve("prom").enabled
        ambient = resolve(None)
        assert ambient is current_telemetry()
        injected = Telemetry.enabled_instance()
        assert resolve(injected) is injected
        with pytest.raises(TelemetryError):
            resolve("bogus-mode")

    def test_snapshot_contains_metrics_and_tracing(self):
        telemetry = Telemetry.enabled_instance()
        telemetry.counter("x_total").inc()
        with telemetry.span("work"):
            pass
        snapshot = telemetry.snapshot()
        assert "x_total" in snapshot["metrics"]
        assert snapshot["tracing"]["aggregates"]["work"]["count"] == 1

    def test_to_prometheus_includes_span_aggregates(self):
        telemetry = Telemetry.enabled_instance()
        with telemetry.span("work"):
            pass
        text = telemetry.to_prometheus()
        assert 'alvc_span_count_total{span="work"} 1' in text
