"""MetricsRegistry semantics: labels, buckets, conflicts, no-op mode."""

import pytest

from repro.exceptions import ALVCError, TelemetryError
from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
    prometheus_metrics_text,
)


class TestCounters:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc()
        registry.counter("events_total").inc(2)
        assert registry.value_of("events_total") == 3

    def test_same_name_same_labels_is_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", kind="a")
        second = registry.counter("x_total", kind="a")
        assert first is second

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("x_total", kind="a").inc()
        registry.counter("x_total", kind="b").inc(5)
        assert registry.value_of("x_total", kind="a") == 1
        assert registry.value_of("x_total", kind="b") == 5
        assert registry.series_count() == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x_total", a="1", b="2").inc()
        assert registry.value_of("x_total", b="2", a="1") == 1

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("x_total").inc(-1)

    def test_telemetry_error_is_alvc_error(self):
        assert issubclass(TelemetryError, ALVCError)


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert registry.value_of("depth") == 3


class TestHistograms:
    def test_observations_land_in_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=(1, 2, 4))
        for value in (0.5, 1.5, 3, 100):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(105.0)
        # Cumulative: le=1 sees 0.5; le=2 sees 0.5, 1.5; le=4 adds 3.
        assert histogram.bucket_counts == [1, 2, 3]

    def test_default_buckets_used_when_omitted(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes")
        assert histogram.upper_bounds == tuple(
            float(bound) for bound in DEFAULT_BUCKETS
        )

    def test_value_of_returns_count(self):
        registry = MetricsRegistry()
        registry.histogram("sizes", buckets=(1,)).observe(9)
        assert registry.value_of("sizes") == 1


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TelemetryError):
            registry.gauge("thing")

    def test_bad_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("no spaces allowed")

    def test_snapshot_round_trips_series(self):
        registry = MetricsRegistry()
        registry.counter("x_total", kind="a", help="things").inc(2)
        snapshot = registry.snapshot()
        family = snapshot["x_total"]
        assert family["kind"] == "counter"
        [series] = family["series"]
        assert series["labels"] == {"kind": "a"}
        assert series["value"] == 2

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        registry.reset()
        assert registry.series_count() == 0

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help text", kind="a").inc(2)
        registry.histogram("h", buckets=(1, 2)).observe(1.5)
        text = prometheus_metrics_text(registry)
        assert "# HELP x_total help text" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{kind="a"} 2' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1.5" in text
        assert "h_count 1" in text


class TestNullRegistry:
    def test_disabled_and_shared_singletons(self):
        registry = NullMetricsRegistry()
        assert not registry.enabled
        # All calls return the same preallocated no-op objects: no
        # allocation on the hot path.
        assert registry.counter("a_total") is registry.counter("b_total", k="v")
        assert registry.gauge("a") is registry.gauge("b")
        assert registry.histogram("a") is registry.histogram("b")

    def test_noop_instruments_record_nothing(self):
        registry = NullMetricsRegistry()
        registry.counter("x_total").inc(10)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1)
        assert registry.series_count() == 0
        assert registry.snapshot() == {}
