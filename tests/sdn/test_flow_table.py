"""Tests for per-switch flow tables."""

import pytest

from repro.exceptions import DuplicateEntityError, UnknownEntityError
from repro.sdn.flow_table import FlowRule, FlowTable


@pytest.fixture
def table():
    return FlowTable("tor-0")


class TestInstall:
    def test_install_and_lookup(self, table):
        rule = FlowRule(match="flow-0", next_hop="ops-0")
        table.install(rule)
        assert table.lookup("flow-0") is rule
        assert "flow-0" in table
        assert len(table) == 1

    def test_duplicate_match_rejected(self, table):
        table.install(FlowRule(match="flow-0", next_hop="ops-0"))
        with pytest.raises(DuplicateEntityError):
            table.install(FlowRule(match="flow-0", next_hop="ops-1"))

    def test_install_counter(self, table):
        table.install(FlowRule(match="flow-0", next_hop="ops-0"))
        table.install(FlowRule(match="flow-1", next_hop="ops-0"))
        assert table.installs == 2


class TestReplace:
    def test_replace_returns_old(self, table):
        old = FlowRule(match="flow-0", next_hop="ops-0")
        table.install(old)
        returned = table.replace(FlowRule(match="flow-0", next_hop="ops-1"))
        assert returned is old
        assert table.lookup("flow-0").next_hop == "ops-1"

    def test_replace_counts_both(self, table):
        table.install(FlowRule(match="flow-0", next_hop="ops-0"))
        table.replace(FlowRule(match="flow-0", next_hop="ops-1"))
        assert table.installs == 2
        assert table.removals == 1

    def test_replace_missing_raises(self, table):
        with pytest.raises(UnknownEntityError):
            table.replace(FlowRule(match="flow-0", next_hop="ops-0"))


class TestRemove:
    def test_remove_returns_rule(self, table):
        rule = FlowRule(match="flow-0", next_hop="ops-0")
        table.install(rule)
        assert table.remove("flow-0") is rule
        assert len(table) == 0
        assert table.removals == 1

    def test_remove_missing_raises(self, table):
        with pytest.raises(UnknownEntityError):
            table.remove("flow-9")


class TestQueries:
    def test_lookup_missing_is_none(self, table):
        assert table.lookup("flow-9") is None

    def test_rules_sorted_by_match(self, table):
        table.install(FlowRule(match="flow-1", next_hop="a"))
        table.install(FlowRule(match="flow-0", next_hop="b"))
        assert [rule.match for rule in table.rules()] == ["flow-0", "flow-1"]
