"""Tests for path computation."""

import pytest

from repro.exceptions import RoutingError
from repro.sdn.routing import (
    chain_path,
    path_length_statistics,
    shortest_path_in_al,
    simple_path,
)


class TestSimplePath:
    def test_shortest_path_found(self, paper_dcn):
        path = simple_path(paper_dcn, "server-0", "server-5")
        assert path[0] == "server-0"
        assert path[-1] == "server-5"
        graph = paper_dcn.graph
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_unknown_endpoint_raises(self, paper_dcn):
        with pytest.raises(RoutingError):
            simple_path(paper_dcn, "server-0", "mars")


class TestShortestPathInAl:
    def test_path_uses_only_al_switches(self, paper_dcn):
        al = {"ops-0", "ops-2"}
        path = shortest_path_in_al(paper_dcn, "server-0", "server-4", al)
        for node in path:
            if node.startswith("ops"):
                assert node in al

    def test_empty_al_cannot_cross_core(self, paper_dcn):
        # server-0 (rack 0) and server-4 (rack 2) share no ToR, so the
        # path must cross the core — impossible with an empty AL.
        with pytest.raises(RoutingError):
            shortest_path_in_al(paper_dcn, "server-0", "server-4", set())

    def test_same_rack_path_avoids_core(self, paper_dcn):
        # server-0 and server-1 share tor-0; no OPS needed.
        path = shortest_path_in_al(paper_dcn, "server-0", "server-1", set())
        assert path == ["server-0", "tor-0", "server-1"]

    def test_unknown_endpoint_raises(self, paper_dcn):
        with pytest.raises(RoutingError):
            shortest_path_in_al(paper_dcn, "mars", "server-0", {"ops-0"})

    def test_ops_endpoint_must_be_in_al(self, paper_dcn):
        with pytest.raises(RoutingError):
            shortest_path_in_al(paper_dcn, "ops-1", "server-0", {"ops-0"})

    def test_ops_endpoint_inside_al_ok(self, paper_dcn):
        path = shortest_path_in_al(paper_dcn, "ops-0", "server-0", {"ops-0"})
        assert path[0] == "ops-0"
        assert path[-1] == "server-0"


class TestChainPath:
    def test_visits_waypoints_in_order(self, paper_dcn):
        waypoints = ["server-0", "ops-0", "server-5"]
        path = chain_path(paper_dcn, waypoints)
        positions = [path.index(node) for node in waypoints]
        assert positions == sorted(positions)

    def test_duplicate_waypoints_collapse(self, paper_dcn):
        path = chain_path(paper_dcn, ["server-0", "server-0", "server-1"])
        assert path[0] == "server-0"
        assert path.count("server-0") == 1

    def test_all_same_waypoint_gives_single_node(self, paper_dcn):
        assert chain_path(paper_dcn, ["server-0", "server-0"]) == ["server-0"]

    def test_needs_two_waypoints(self, paper_dcn):
        with pytest.raises(RoutingError):
            chain_path(paper_dcn, ["server-0"])

    def test_respects_al_restriction(self, paper_dcn):
        al = {"ops-0"}
        path = chain_path(
            paper_dcn, ["server-0", "ops-0", "server-5"], al_switches=al
        )
        for node in path:
            if node.startswith("ops"):
                assert node in al

    def test_consecutive_hops_are_edges(self, paper_dcn):
        path = chain_path(paper_dcn, ["server-0", "ops-2", "server-4"])
        graph = paper_dcn.graph
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)


class TestPathLengthStatistics:
    def test_statistics(self, paper_dcn):
        stats = path_length_statistics(
            paper_dcn.graph,
            [("server-0", "server-1"), ("server-0", "server-5")],
        )
        assert stats["pairs"] == 2
        assert stats["min"] == 2  # same-rack: server-tor-server
        assert stats["max"] >= stats["min"]

    def test_empty_sample(self, paper_dcn):
        stats = path_length_statistics(paper_dcn.graph, [])
        assert stats["pairs"] == 0
        assert stats["mean"] == 0.0

    def test_unreachable_pairs_skipped(self, paper_dcn):
        stats = path_length_statistics(
            paper_dcn.graph, [("server-0", "mars")]
        )
        assert stats["pairs"] == 0


class TestKShortestPaths:
    def test_returns_sorted_by_length(self, paper_dcn):
        from repro.sdn.routing import k_shortest_paths

        paths = k_shortest_paths(paper_dcn, "server-0", "server-5", k=4)
        lengths = [len(path) for path in paths]
        assert lengths == sorted(lengths)
        assert 1 <= len(paths) <= 4

    def test_all_paths_valid(self, paper_dcn):
        from repro.sdn.routing import k_shortest_paths

        graph = paper_dcn.graph
        for path in k_shortest_paths(paper_dcn, "server-0", "server-4", k=3):
            assert path[0] == "server-0"
            assert path[-1] == "server-4"
            for a, b in zip(path, path[1:]):
                assert graph.has_edge(a, b)

    def test_al_restriction(self, paper_dcn):
        from repro.sdn.routing import k_shortest_paths

        paths = k_shortest_paths(
            paper_dcn, "server-0", "server-4", k=5,
            al_switches={"ops-0", "ops-2"},
        )
        for path in paths:
            for node in path:
                if node.startswith("ops"):
                    assert node in {"ops-0", "ops-2"}

    def test_invalid_k(self, paper_dcn):
        from repro.sdn.routing import k_shortest_paths

        with pytest.raises(RoutingError):
            k_shortest_paths(paper_dcn, "server-0", "server-1", k=0)

    def test_no_path_raises(self, paper_dcn):
        from repro.sdn.routing import k_shortest_paths

        with pytest.raises(RoutingError):
            k_shortest_paths(
                paper_dcn, "server-0", "server-4", al_switches=set()
            )


class TestLeastLoadedPath:
    def test_unloaded_picks_shortest(self, paper_dcn):
        from repro.sdn.routing import least_loaded_path, simple_path

        chosen = least_loaded_path(paper_dcn, "server-0", "server-5", {})
        assert len(chosen) == len(
            simple_path(paper_dcn, "server-0", "server-5")
        )

    def test_avoids_hot_link(self, paper_dcn):
        from repro.sdn.routing import k_shortest_paths, least_loaded_path

        candidates = k_shortest_paths(
            paper_dcn, "server-0", "server-5", k=3
        )
        assert len(candidates) >= 2
        # Heat every link of the shortest path.
        hot = {
            frozenset((a, b)): 100
            for a, b in zip(candidates[0], candidates[0][1:])
        }
        chosen = least_loaded_path(
            paper_dcn, "server-0", "server-5", hot, k=3
        )
        assert chosen != candidates[0]

    def test_ties_prefer_fewer_hops(self, paper_dcn):
        from repro.sdn.routing import least_loaded_path

        # Equal (zero) load everywhere: shortest wins.
        chosen = least_loaded_path(
            paper_dcn, "server-0", "server-1", {}, k=5
        )
        assert chosen == ["server-0", "tor-0", "server-1"]


class TestPickLeastLoaded:
    def test_empty_candidates_raise(self):
        from repro.sdn.routing import pick_least_loaded

        with pytest.raises(RoutingError):
            pick_least_loaded([], {})

    def test_picks_lightest_bottleneck(self):
        from repro.sdn.routing import pick_least_loaded

        short_hot = ["a", "b", "c"]
        long_cool = ["a", "x", "y", "c"]
        load = {frozenset(("a", "b")): 5.0}
        assert pick_least_loaded([short_hot, long_cool], load) == long_cool

    def test_tie_keeps_earliest_candidate(self):
        from repro.sdn.routing import pick_least_loaded

        first = ["a", "b", "c"]
        second = ["a", "d", "c"]
        assert pick_least_loaded([first, second], {}) == first

    def test_matches_least_loaded_path(self, paper_dcn):
        """Re-scoring a cached candidate pool must pick the same path
        as the uncached `least_loaded_path` (the cache-correctness
        invariant of the route cache)."""
        from repro.sdn.routing import (
            k_shortest_paths,
            least_loaded_path,
            pick_least_loaded,
        )

        load = {frozenset(("tor-0", "ops-0")): 3.0}
        candidates = k_shortest_paths(
            paper_dcn, "server-0", "server-5", k=3
        )
        assert (
            list(pick_least_loaded(candidates, load))
            == least_loaded_path(paper_dcn, "server-0", "server-5", load, k=3)
        )
