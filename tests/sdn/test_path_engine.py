"""PathEngine units: CSR snapshot, bitmasks, generations, telemetry.

The bit-parity of the kernels against ``networkx`` is exercised at
scale in ``tests/sdn/test_routing_parity.py``; this module covers the
engine's *machinery* — snapshot (re)builds keyed to
``topology_generation``, AL bitmask caching, fault-driven mask
invalidation, telemetry counters and the engine selector plumbing.
"""

import pytest

from repro.exceptions import RoutingError, ValidationError
from repro.observability.runtime import Telemetry
from repro.sdn.path_engine import PathEngine, PathEngineNoPath, engine_for
from repro.sdn.routing import (
    ROUTING_ENGINES,
    RouteCandidates,
    get_default_engine,
    k_shortest_paths,
    least_loaded_path,
    pick_least_loaded,
    routes_from,
    set_default_engine,
    shortest_path_in_al,
    shortest_surviving_path,
    simple_path,
    use_engine,
)
from repro.topology.elements import ServerSpec, TorSpec


class TestCsrSnapshot:
    def test_engine_for_attaches_one_engine(self, paper_dcn):
        first = engine_for(paper_dcn)
        second = engine_for(paper_dcn)
        assert first is second

    def test_node_count_matches_fabric(self, paper_dcn):
        engine = engine_for(paper_dcn)
        assert engine.node_count == paper_dcn.graph.number_of_nodes()

    def test_route_matches_networkx(self, paper_dcn):
        engine = engine_for(paper_dcn)
        assert engine.route("server-0", "server-5") == simple_path(
            paper_dcn, "server-0", "server-5", engine="nx"
        )

    def test_route_same_node_is_trivial(self, paper_dcn):
        assert engine_for(paper_dcn).route("server-0", "server-0") == [
            "server-0"
        ]

    def test_no_path_raises_internal_error(self, paper_dcn):
        engine = engine_for(paper_dcn)
        with pytest.raises(PathEngineNoPath):
            engine.route("server-0", "server-4", allowed_ops=frozenset())


class TestGenerationInvalidation:
    def test_topology_mutation_bumps_generation(self, paper_dcn):
        before = paper_dcn.topology_generation
        paper_dcn.add_server(ServerSpec(server_id="server-new"))
        mid = paper_dcn.topology_generation
        paper_dcn.add_tor(TorSpec(tor_id="tor-new"))
        paper_dcn.connect("server-new", "tor-new")
        assert before < mid < paper_dcn.topology_generation

    def test_engine_rebuilds_after_mutation(self, paper_dcn):
        engine = engine_for(paper_dcn)
        n_before = engine.node_count
        mask_before = engine.mask_generation
        paper_dcn.add_server(ServerSpec(server_id="server-new"))
        paper_dcn.add_tor(TorSpec(tor_id="tor-new"))
        paper_dcn.connect("server-new", "tor-new")
        paper_dcn.connect("tor-new", "ops-0")
        # Lazy: nothing rebuilt yet; first query refreshes the snapshot.
        assert engine.node_count == n_before + 2
        assert engine.mask_generation > mask_before
        path = engine.route("server-new", "server-0")
        assert path[0] == "server-new" and path[-1] == "server-0"

    def test_new_link_changes_routes(self, paper_dcn):
        long_before = simple_path(paper_dcn, "server-0", "server-4")
        assert len(long_before) > 3
        paper_dcn.connect("tor-0", "tor-2")
        after = simple_path(paper_dcn, "server-0", "server-4")
        assert after == ["server-0", "tor-0", "tor-2", "server-4"]

    def test_note_fault_bumps_mask_generation_only(self, paper_dcn):
        engine = engine_for(paper_dcn)
        engine.route("server-0", "server-1")  # force a build
        topo = paper_dcn.topology_generation
        mask = engine.mask_generation
        engine.note_fault()
        assert engine.mask_generation == mask + 1
        assert paper_dcn.topology_generation == topo

    def test_note_fault_invalidates_avoid_masks(self, paper_dcn):
        # A cut link must stay respected across a fault event even
        # though the (failed_nodes, cut_links) cache key is identical.
        baseline = simple_path(paper_dcn, "server-0", "server-4")
        cut = (baseline[1], baseline[2])  # first ToR -> OPS hop
        detour = shortest_surviving_path(
            paper_dcn, "server-0", "server-4", cut_links=[cut], engine="csr"
        )
        hops = set(zip(detour, detour[1:]))
        assert cut not in hops and tuple(reversed(cut)) not in hops
        engine_for(paper_dcn).note_fault()
        again = shortest_surviving_path(
            paper_dcn, "server-0", "server-4", cut_links=[cut], engine="csr"
        )
        assert again == detour


class TestTelemetryCounters:
    def test_counters_track_queries_and_masks(self, paper_dcn):
        telemetry = Telemetry.enabled_instance()
        engine = PathEngine(paper_dcn, telemetry=telemetry)
        al = frozenset({"ops-0", "ops-2"})
        engine.route("server-0", "server-4", al)
        engine.route("server-0", "server-5", al)
        metrics = telemetry.registry
        assert metrics.value_of("alvc_path_engine_queries_total") == 2.0
        assert metrics.value_of("alvc_path_engine_rebuilds_total") == 1.0
        assert metrics.value_of("alvc_path_engine_bitmask_builds_total") == 1.0
        assert metrics.value_of("alvc_path_engine_bitmask_hits_total") == 1.0

    def test_rebuild_counts_mutations(self, paper_dcn):
        telemetry = Telemetry.enabled_instance()
        engine = PathEngine(paper_dcn, telemetry=telemetry)
        engine.route("server-0", "server-1")
        paper_dcn.add_server(ServerSpec(server_id="server-new"))
        paper_dcn.add_tor(TorSpec(tor_id="tor-new"))
        paper_dcn.connect("server-new", "tor-new")
        engine.route("server-0", "server-1")
        engine.route("server-0", "server-1")
        metrics = telemetry.registry
        assert metrics.value_of("alvc_path_engine_rebuilds_total") == 2.0


class TestEngineSelection:
    def test_registry(self):
        assert ROUTING_ENGINES == ("auto", "csr", "nx")

    def test_set_default_engine_round_trip(self):
        previous = set_default_engine("nx")
        try:
            assert get_default_engine() == "nx"
        finally:
            set_default_engine(previous)
        assert get_default_engine() == previous

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError):
            set_default_engine("quantum")

    def test_unknown_engine_rejected_per_call(self, paper_dcn):
        with pytest.raises(ValidationError):
            simple_path(paper_dcn, "server-0", "server-1", engine="quantum")

    def test_use_engine_restores_on_exit(self):
        before = get_default_engine()
        with use_engine("nx"):
            assert get_default_engine() == "nx"
        assert get_default_engine() == before

    def test_auto_follows_fabric_caching(self, paper_dcn):
        from repro.sdn.routing import _resolve_engine

        paper_dcn.set_caching(True)
        assert _resolve_engine(paper_dcn, "auto") == "csr"
        paper_dcn.set_caching(False)
        assert _resolve_engine(paper_dcn, "auto") == "nx"
        paper_dcn.set_caching(True)
        assert _resolve_engine(paper_dcn, "csr") == "csr"
        assert _resolve_engine(paper_dcn, "nx") == "nx"


class TestKShortestValidation:
    """Satellite: AL violations must not masquerade as unknown endpoints."""

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_ops_outside_al_is_an_al_error(self, paper_dcn, engine):
        with pytest.raises(RoutingError, match="outside the abstraction"):
            k_shortest_paths(
                paper_dcn,
                "ops-1",
                "server-0",
                k=2,
                al_switches={"ops-0"},
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_unknown_endpoint_still_unknown(self, paper_dcn, engine):
        with pytest.raises(RoutingError, match="unknown endpoint"):
            k_shortest_paths(
                paper_dcn,
                "mars",
                "server-0",
                k=2,
                al_switches={"ops-0"},
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_ops_inside_al_is_fine(self, paper_dcn, engine):
        paths = k_shortest_paths(
            paper_dcn,
            "ops-0",
            "server-0",
            k=2,
            al_switches={"ops-0"},
            engine=engine,
        )
        assert paths and paths[0][0] == "ops-0"


class TestRoutesFrom:
    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_batched_fanout_reaches_all(self, paper_dcn, engine):
        targets = ["server-1", "server-4", "server-5"]
        routed = routes_from(paper_dcn, "server-0", targets, engine=engine)
        assert set(routed) == set(targets)
        for target, path in routed.items():
            assert path[0] == "server-0" and path[-1] == target

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_unreachable_targets_omitted(self, paper_dcn, engine):
        routed = routes_from(
            paper_dcn,
            "server-0",
            ["server-1", "server-4"],
            al_switches=set(),
            engine=engine,
        )
        assert "server-1" in routed  # same rack, no OPS needed
        assert "server-4" not in routed  # needs the core

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_empty_targets(self, paper_dcn, engine):
        assert routes_from(paper_dcn, "server-0", [], engine=engine) == {}
        with pytest.raises(RoutingError, match="unknown endpoint"):
            routes_from(paper_dcn, "mars", [], engine=engine)

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_unknown_target_raises(self, paper_dcn, engine):
        with pytest.raises(RoutingError, match="unknown endpoint"):
            routes_from(paper_dcn, "server-0", ["mars"], engine=engine)


class TestShortestSurvivingPath:
    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_detours_around_failed_node(self, paper_dcn, engine):
        baseline = simple_path(paper_dcn, "server-0", "server-4")
        ops_on_path = [n for n in baseline if n.startswith("ops")]
        assert ops_on_path
        detour = shortest_surviving_path(
            paper_dcn,
            "server-0",
            "server-4",
            failed_nodes=[ops_on_path[0]],
            engine=engine,
        )
        assert ops_on_path[0] not in detour

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_failed_endpoint_raises(self, paper_dcn, engine):
        with pytest.raises(RoutingError, match="endpoint failed"):
            shortest_surviving_path(
                paper_dcn,
                "server-0",
                "server-4",
                failed_nodes=["server-4"],
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ["csr", "nx"])
    def test_isolated_source_raises(self, paper_dcn, engine):
        with pytest.raises(RoutingError, match="no surviving path"):
            shortest_surviving_path(
                paper_dcn,
                "server-0",
                "server-4",
                cut_links=[("server-0", "tor-0")],
                engine=engine,
            )


class TestRouteCandidates:
    def test_sequence_protocol(self, paper_dcn):
        paths = k_shortest_paths(paper_dcn, "server-0", "server-4", k=3)
        candidates = RouteCandidates(paths)
        assert len(candidates) == len(paths)
        assert [list(p) for p in candidates] == [list(p) for p in paths]
        assert list(candidates[0]) == list(paths[0])

    def test_from_paths_passthrough(self):
        pool = RouteCandidates([("a", "b")])
        assert RouteCandidates.from_paths(pool) is pool
        wrapped = RouteCandidates.from_paths([("a", "b")])
        assert isinstance(wrapped, RouteCandidates)

    def test_link_keys_precomputed(self):
        pool = RouteCandidates([("a", "b", "c")])
        assert pool.link_keys == (
            (frozenset(("a", "b")), frozenset(("b", "c"))),
        )

    def test_scoring_identical_to_plain_path(self, paper_dcn):
        paths = k_shortest_paths(paper_dcn, "server-0", "server-5", k=4)
        loads = {}
        for path in paths:
            for a, b in zip(path, path[1:]):
                loads[frozenset((a, b))] = float(len(a))
        plain = pick_least_loaded([list(p) for p in paths], loads)
        pooled = pick_least_loaded(RouteCandidates(paths), loads)
        assert list(pooled) == list(plain)
        assert list(
            least_loaded_path(paper_dcn, "server-0", "server-5", loads, k=4)
        ) == list(plain)

    def test_empty_pool_raises(self):
        with pytest.raises(RoutingError):
            pick_least_loaded(RouteCandidates([]), {})
