"""Tests for the network-update cost model (experiment E10 substrate)."""

import pytest

from repro.exceptions import UnknownEntityError
from repro.sdn.updates import UpdateCostModel, UpdateEvent, UpdateKind


class TestUpdateEvent:
    def test_migration_requires_new_server(self):
        with pytest.raises(ValueError):
            UpdateEvent(
                kind=UpdateKind.VM_MIGRATION, vm="vm-0", server="server-0"
            )

    def test_non_migration_forbids_new_server(self):
        with pytest.raises(ValueError):
            UpdateEvent(
                kind=UpdateKind.VM_ARRIVAL,
                vm="vm-0",
                server="server-0",
                new_server="server-1",
            )

    def test_affected_servers_arrival(self):
        event = UpdateEvent(
            kind=UpdateKind.VM_ARRIVAL, vm="vm-0", server="server-0"
        )
        assert event.affected_servers() == ["server-0"]

    def test_affected_servers_migration(self):
        event = UpdateEvent(
            kind=UpdateKind.VM_MIGRATION,
            vm="vm-0",
            server="server-0",
            new_server="server-4",
        )
        assert event.affected_servers() == ["server-0", "server-4"]


class TestAlvcCost(object):
    def test_touches_only_al_and_local_tors(self, paper_dcn):
        model = UpdateCostModel(paper_dcn)
        event = UpdateEvent(
            kind=UpdateKind.VM_ARRIVAL, vm="vm-0", server="server-0"
        )
        touched = model.alvc_touched(event, {"ops-0"})
        # server-0 attaches to tor-0 only; tor-0 uplinks to ops-0, ops-1,
        # of which only ops-0 is in the AL.
        assert touched == {"tor-0", "ops-0"}

    def test_out_of_al_switches_excluded(self, paper_dcn):
        model = UpdateCostModel(paper_dcn)
        event = UpdateEvent(
            kind=UpdateKind.VM_ARRIVAL, vm="vm-0", server="server-0"
        )
        touched = model.alvc_touched(event, {"ops-3"})
        # ops-3 does not uplink tor-0, so only the ToR is touched.
        assert touched == {"tor-0"}

    def test_migration_touches_both_ends(self, paper_dcn):
        model = UpdateCostModel(paper_dcn)
        event = UpdateEvent(
            kind=UpdateKind.VM_MIGRATION,
            vm="vm-0",
            server="server-0",
            new_server="server-4",
        )
        touched = model.alvc_touched(event, {"ops-0", "ops-2"})
        assert "tor-0" in touched
        assert "tor-2" in touched

    def test_unknown_server_raises(self, paper_dcn):
        model = UpdateCostModel(paper_dcn)
        event = UpdateEvent(
            kind=UpdateKind.VM_ARRIVAL, vm="vm-0", server="server-99"
        )
        with pytest.raises(UnknownEntityError):
            model.alvc_touched(event, set())


class TestFlatCost:
    def test_flat_touches_whole_core(self, paper_dcn):
        model = UpdateCostModel(paper_dcn)
        event = UpdateEvent(
            kind=UpdateKind.VM_ARRIVAL, vm="vm-0", server="server-0"
        )
        touched = model.flat_touched(event)
        assert set(paper_dcn.optical_switches()) <= touched
        assert "tor-0" in touched


class TestComparison:
    def test_alvc_never_worse(self, paper_dcn):
        model = UpdateCostModel(paper_dcn)
        for server in paper_dcn.servers():
            event = UpdateEvent(
                kind=UpdateKind.VM_DEPARTURE, vm="vm-0", server=server
            )
            comparison = model.compare(event, {"ops-0", "ops-2"})
            assert comparison["alvc"] <= comparison["flat"]

    def test_total_cost_aggregates(self, paper_dcn):
        model = UpdateCostModel(paper_dcn)
        events = [
            UpdateEvent(
                kind=UpdateKind.VM_ARRIVAL, vm=f"vm-{i}", server="server-0"
            )
            for i in range(3)
        ]
        totals = model.total_cost(events, lambda event: {"ops-0"})
        assert totals["events"] == 3
        assert totals["alvc"] == 6  # 2 switches per event
        assert totals["flat"] == 15  # 4 OPS + tor-0 per event
