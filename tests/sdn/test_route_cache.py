"""Tests for the SDN LRU route cache."""

import pytest

from repro.exceptions import ValidationError
from repro.observability import Telemetry
from repro.sdn.route_cache import NO_ROUTE, RouteCache


class TestBasics:
    def test_miss_returns_none(self):
        cache = RouteCache(4)
        assert cache.get(("a", "b", None, False)) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_put_then_hit(self):
        cache = RouteCache(4)
        key = ("a", "b", None, False)
        cache.put(key, ("a", "tor-0", "b"))
        assert cache.get(key) == ("a", "tor-0", "b")
        assert cache.hits == 1

    def test_no_route_sentinel_is_a_hit(self):
        cache = RouteCache(4)
        key = ("a", "z", None, False)
        cache.put(key, NO_ROUTE)
        assert cache.get(key) is NO_ROUTE
        assert cache.hits == 1

    def test_len_and_contains(self):
        cache = RouteCache(4)
        cache.put("k1", "v1")
        assert len(cache) == 1
        assert "k1" in cache
        assert "k2" not in cache

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValidationError):
            RouteCache(0)
        with pytest.raises(ValidationError):
            RouteCache(-3)


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = RouteCache(2)
        cache.put("k1", 1)
        cache.put("k2", 2)
        cache.get("k1")  # refresh k1; k2 is now LRU
        cache.put("k3", 3)
        assert "k1" in cache
        assert "k2" not in cache
        assert "k3" in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = RouteCache(2)
        cache.put("k1", 1)
        cache.put("k2", 2)
        cache.put("k1", 10)  # refresh, no eviction
        cache.put("k3", 3)  # evicts k2, not k1
        assert cache.get("k1") == 10
        assert "k2" not in cache
        assert len(cache) == 2

    def test_capacity_never_exceeded(self):
        cache = RouteCache(3)
        for i in range(10):
            cache.put(f"k{i}", i)
        assert len(cache) == 3
        assert cache.evictions == 7


class TestInvalidate:
    def test_invalidate_drops_everything(self):
        cache = RouteCache(8)
        for i in range(5):
            cache.put(f"k{i}", i)
        assert cache.invalidate() == 5
        assert len(cache) == 0
        assert cache.get("k0") is None

    def test_invalidate_empty_cache(self):
        assert RouteCache(8).invalidate() == 0


class TestStats:
    def test_hit_rate(self):
        cache = RouteCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("k")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_unused(self):
        assert RouteCache(4).hit_rate == 0.0

    def test_stats_shape(self):
        cache = RouteCache(2)
        cache.put("k1", 1)
        cache.put("k2", 2)
        cache.put("k3", 3)
        cache.get("k3")
        cache.get("gone")
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "size": 2,
            "hit_rate": 0.5,
        }

    def test_telemetry_counters_recorded(self):
        telemetry = Telemetry.enabled_instance()
        cache = RouteCache(1, telemetry=telemetry)
        cache.put("k1", 1)
        cache.put("k2", 2)  # evicts k1
        cache.get("k2")
        cache.get("k1")
        value_of = telemetry.registry.value_of
        assert value_of("alvc_route_cache_hits_total") == 1
        assert value_of("alvc_route_cache_misses_total") == 1
        assert value_of("alvc_route_cache_evictions_total") == 1
        assert value_of("alvc_route_cache_size") == 1


class TestInvalidateCrossing:
    """Trunk-degrade invalidation: entries riding a dying link must go."""

    def test_drops_only_paths_crossing_the_link(self):
        cache = RouteCache(8)
        cache.put("via", ("a", "tor-0", "ops-0", "tor-1", "b"))
        cache.put("elsewhere", ("a", "tor-0", "ops-1", "tor-1", "b"))
        dropped = cache.invalidate_crossing([frozenset(("tor-0", "ops-0"))])
        assert dropped == 1
        assert "via" not in cache
        assert "elsewhere" in cache

    def test_direction_does_not_matter(self):
        cache = RouteCache(8)
        cache.put("forward", ("a", "x", "y", "b"))
        cache.put("reverse", ("b", "y", "x", "a"))
        assert cache.invalidate_crossing([("y", "x")]) == 2

    def test_no_route_entries_survive(self):
        cache = RouteCache(8)
        cache.put("impossible", NO_ROUTE)
        assert cache.invalidate_crossing([("a", "b")]) == 0
        assert "impossible" in cache

    def test_load_aware_candidate_lists_are_dropped(self):
        cache = RouteCache(8)
        # A load-aware entry caches a tuple of candidate paths; one
        # candidate riding the link taints the whole entry.
        cache.put(
            "candidates",
            (("a", "x", "b"), ("a", "y", "b")),
        )
        assert cache.invalidate_crossing([("y", "b")]) == 1
        assert "candidates" not in cache

    def test_empty_target_set_is_a_no_op(self):
        cache = RouteCache(8)
        cache.put("k", ("a", "b"))
        assert cache.invalidate_crossing([]) == 0
        assert "k" in cache

    def test_size_gauge_tracks_drops(self):
        telemetry = Telemetry.enabled_instance()
        cache = RouteCache(8, telemetry=telemetry)
        cache.put("k1", ("a", "x", "b"))
        cache.put("k2", ("a", "y", "b"))
        cache.invalidate_crossing([("a", "x")])
        assert telemetry.registry.value_of("alvc_route_cache_size") == 1


class TestRouteCandidatesEntries:
    """invalidate_crossing understands RouteCandidates pools too."""

    def test_pool_riding_the_link_is_dropped(self):
        from repro.sdn.routing import RouteCandidates

        cache = RouteCache(8)
        cache.put(
            "pool",
            RouteCandidates([("a", "x", "b"), ("a", "y", "b")]),
        )
        cache.put(
            "clear",
            RouteCandidates([("a", "z", "b")]),
        )
        assert cache.invalidate_crossing([("y", "b")]) == 1
        assert "pool" not in cache
        assert "clear" in cache

    def test_pool_survives_unrelated_cut(self):
        from repro.sdn.routing import RouteCandidates

        cache = RouteCache(8)
        cache.put("pool", RouteCandidates([("a", "x", "b")]))
        assert cache.invalidate_crossing([("p", "q")]) == 0
        assert "pool" in cache
