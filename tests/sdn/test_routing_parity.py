"""Randomized engine parity: CSR vs networkx, bit for bit.

The whole point of :class:`repro.sdn.path_engine.PathEngine` is that
switching engines can never change an experiment's output.  This suite
sweeps hundreds of ``(seeded fabric, AL mask)`` combinations and
asserts the two engines return **identical paths and identical error
messages** for every routing entry point, then replays a full chaos
run under each engine and compares the frozen reports.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import RoutingError
from repro.sdn.routing import (
    chain_path,
    k_shortest_paths,
    routes_from,
    shortest_path_in_al,
    shortest_surviving_path,
    simple_path,
    use_engine,
)
from repro.topology.generators import build_alvc_fabric

#: 20 fabric seeds x 10 AL masks each = 200 compared combinations.
FABRIC_SEEDS = range(20)
ALS_PER_FABRIC = 10


def _outcome(fn):
    """Normalize a routing call into a comparable (status, value) pair."""
    try:
        return ("ok", fn())
    except RoutingError as exc:
        return ("err", str(exc))


def _both(fabric, fn):
    """Run ``fn(engine)`` under both engines and assert identical results."""
    nx_result = _outcome(lambda: fn("nx"))
    csr_result = _outcome(lambda: fn("csr"))
    assert csr_result == nx_result
    return nx_result


@pytest.mark.parametrize("seed", FABRIC_SEEDS)
def test_engines_agree_on_paths_and_errors(seed):
    fabric = build_alvc_fabric(
        n_racks=4, servers_per_rack=3, n_ops=5, seed=seed
    )
    rng = random.Random(seed * 7919 + 13)
    servers = fabric.servers()
    ops = fabric.optical_switches()
    nodes = servers + fabric.tors() + ops

    for _ in range(ALS_PER_FABRIC):
        al = frozenset(rng.sample(ops, rng.randint(0, len(ops))))
        a, b = rng.choice(nodes), rng.choice(nodes)
        s, t = rng.choice(servers), rng.choice(servers)
        waypoints = [rng.choice(servers) for _ in range(rng.randint(2, 4))]
        targets = rng.sample(servers, rng.randint(1, 4))
        failed = rng.sample(ops, rng.randint(0, 2))
        cut = []
        if rng.random() < 0.5:
            edge = rng.choice(list(fabric.graph.edges))
            cut = [tuple(edge)]

        _both(fabric, lambda e: simple_path(fabric, a, b, engine=e))
        _both(
            fabric,
            lambda e: shortest_path_in_al(fabric, s, t, al, engine=e),
        )
        _both(
            fabric,
            lambda e: chain_path(fabric, waypoints, al, engine=e),
        )
        _both(
            fabric,
            lambda e: k_shortest_paths(
                fabric, s, t, k=3, al_switches=al, engine=e
            ),
        )
        _both(
            fabric,
            lambda e: routes_from(
                fabric, s, targets, al_switches=al, engine=e
            ),
        )
        _both(
            fabric,
            lambda e: shortest_surviving_path(
                fabric, s, t, failed_nodes=failed, cut_links=cut, engine=e
            ),
        )

        # Occasionally probe validation paths: unknown and out-of-AL
        # endpoints must produce the same error text under both engines.
        if rng.random() < 0.3:
            _both(
                fabric,
                lambda e: shortest_path_in_al(
                    fabric, "no-such-node", t, al, engine=e
                ),
            )
        if ops and rng.random() < 0.3:
            outsider = rng.choice(ops)
            restricted = al - {outsider}
            _both(
                fabric,
                lambda e: k_shortest_paths(
                    fabric,
                    outsider,
                    t,
                    k=2,
                    al_switches=restricted,
                    engine=e,
                ),
            )


def test_parity_survives_topology_mutation():
    """The CSR snapshot tracks mutations: agree, mutate, agree again."""
    fabric = build_alvc_fabric(n_racks=3, servers_per_rack=2, n_ops=3, seed=1)
    servers = fabric.servers()
    s, t = servers[0], servers[-1]
    _both(fabric, lambda e: simple_path(fabric, s, t, engine=e))
    tors = fabric.tors()
    fabric.connect(tors[0], tors[-1])  # new shortcut changes routes
    status, path = _both(fabric, lambda e: simple_path(fabric, s, t, engine=e))
    assert status == "ok"
    assert tors[0] in path and tors[-1] in path


def _one_chaos_run(seed: int):
    """A full seeded chaos run (faults + flows) under the ambient engine."""
    from repro.chaos import FaultInjector, RecoveryPolicy, run_chaos
    from repro.sim.traffic import TrafficGenerator

    from tests.chaos.testbed import build_orchestrator

    orchestrator, _ = build_orchestrator(seed=seed)
    inventory = orchestrator.cluster_manager.inventory
    injector = FaultInjector(inventory.network, seed=seed)
    injector.schedule(duration=30.0, rate=0.4, repair_after=6.0)
    flows = TrafficGenerator(inventory, seed=seed).flows(25)
    return run_chaos(
        orchestrator,
        injector.events(),
        flows,
        policy=RecoveryPolicy(max_attempts=3, seed=seed),
        seed=seed,
    )


@pytest.mark.parametrize("seed", [5, 11])
def test_chaos_replay_is_engine_invariant(seed):
    """Chaos reports are bit-identical whichever engine routed them."""
    with use_engine("nx"):
        reference = _one_chaos_run(seed)
    with use_engine("csr"):
        candidate = _one_chaos_run(seed)
    assert candidate == reference
    assert candidate.to_rows() == reference.to_rows()
    assert candidate.summary() == reference.summary()
