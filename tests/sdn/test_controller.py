"""Tests for the SDN controller."""

import pytest

from repro.exceptions import RoutingError, UnknownEntityError
from repro.sdn.controller import SdnController


@pytest.fixture
def controller(paper_dcn):
    return SdnController(paper_dcn)


# A valid server-to-server path in the Fig. 4 fabric.
PATH = ["server-0", "tor-0", "ops-0", "tor-3", "server-5"]


class TestInstallPath:
    def test_install_programs_switches_only(self, controller):
        programmed = controller.install_path("flow-0", PATH)
        # tor-0, ops-0, tor-3 get rules; servers do not.
        assert programmed == 3
        assert controller.table_of("tor-0").lookup("flow-0").next_hop == "ops-0"
        assert controller.table_of("ops-0").lookup("flow-0").next_hop == "tor-3"
        assert controller.table_of("tor-3").lookup("flow-0").next_hop == "server-5"

    def test_path_of(self, controller):
        controller.install_path("flow-0", PATH)
        assert controller.path_of("flow-0") == PATH

    def test_duplicate_flow_rejected(self, controller):
        controller.install_path("flow-0", PATH)
        with pytest.raises(RoutingError):
            controller.install_path("flow-0", PATH)

    def test_short_path_rejected(self, controller):
        with pytest.raises(RoutingError):
            controller.install_path("flow-0", ["server-0"])

    def test_unknown_node_rejected(self, controller):
        with pytest.raises(RoutingError):
            controller.install_path("flow-0", ["server-0", "mars"])

    def test_non_adjacent_hop_rejected(self, controller):
        with pytest.raises(RoutingError):
            controller.install_path("flow-0", ["server-0", "ops-3"])

    def test_revisited_switch_gets_segment_rule(self, controller):
        # A chain-style path that leaves and re-enters tor-0.
        loop = ["server-0", "tor-0", "server-1", "tor-0", "ops-0"]
        programmed = controller.install_path("flow-0", loop)
        assert programmed == 1  # only tor-0 is a switch here
        table = controller.table_of("tor-0")
        assert table.lookup("flow-0").next_hop == "server-1"
        assert table.lookup("flow-0@1").next_hop == "ops-0"


class TestRemoveFlow:
    def test_remove_clears_rules(self, controller):
        controller.install_path("flow-0", PATH)
        touched = controller.remove_flow("flow-0")
        assert touched == 3
        assert controller.total_rules() == 0
        assert not controller.has_flow("flow-0")

    def test_remove_handles_revisits(self, controller):
        loop = ["server-0", "tor-0", "server-1", "tor-0", "ops-0"]
        controller.install_path("flow-0", loop)
        assert controller.remove_flow("flow-0") == 1
        assert controller.total_rules() == 0

    def test_remove_unknown_raises(self, controller):
        with pytest.raises(UnknownEntityError):
            controller.remove_flow("flow-9")


class TestReroute:
    def test_reroute_counts_union_of_switches(self, controller):
        controller.install_path("flow-0", PATH)
        alternate = ["server-1", "tor-1", "ops-1", "tor-0", "server-0"]
        touched = controller.reroute("flow-0", alternate)
        # Old: tor-0, ops-0, tor-3. New: tor-1, ops-1, tor-0. Union = 5.
        assert touched == 5
        assert controller.path_of("flow-0") == alternate


class TestCounters:
    def test_churn_counters(self, controller):
        controller.install_path("flow-0", PATH)
        controller.remove_flow("flow-0")
        churn = controller.churn_counters()
        assert churn == {"installs": 3, "removals": 3}

    def test_switches_with_rules(self, controller):
        controller.install_path("flow-0", PATH)
        assert controller.switches_with_rules() == ["ops-0", "tor-0", "tor-3"]

    def test_installed_flows(self, controller):
        controller.install_path("flow-1", PATH)
        assert controller.installed_flows() == ["flow-1"]

    def test_table_of_unknown_raises(self, controller):
        with pytest.raises(UnknownEntityError):
            controller.table_of("server-0")
