"""Shared fixtures: fabrics, inventories and populated testbeds."""

from __future__ import annotations

import pytest

from repro.nfv.functions import FunctionCatalog
from repro.topology.generators import build_alvc_fabric, paper_example_topology
from repro.virtualization.machines import MachineInventory
from repro.virtualization.services import ServiceCatalog
from repro.virtualization.vm_placement import PlacementStrategy, VmPlacementEngine


@pytest.fixture
def paper_dcn():
    """The exact Fig. 4 worked-example fabric."""
    return paper_example_topology()


@pytest.fixture
def small_fabric():
    """A small deterministic fabric: 4 racks x 4 servers, 4 OPSs."""
    return build_alvc_fabric(
        n_racks=4, servers_per_rack=4, n_ops=4, dual_homing_fraction=0.25, seed=7
    )


@pytest.fixture
def medium_fabric():
    """A medium fabric: 8 racks x 8 servers, 8 OPSs."""
    return build_alvc_fabric(
        n_racks=8, servers_per_rack=8, n_ops=8, dual_homing_fraction=0.25, seed=11
    )


@pytest.fixture
def service_catalog():
    """The standard service catalog."""
    return ServiceCatalog.standard()


@pytest.fixture
def function_catalog():
    """The standard network function catalog."""
    return FunctionCatalog.standard()


@pytest.fixture
def inventory(small_fabric):
    """An empty machine inventory over the small fabric."""
    return MachineInventory(small_fabric)


@pytest.fixture
def populated_inventory(medium_fabric, service_catalog):
    """Inventory with 6 placed VMs each of web, map-reduce and sns."""
    inv = MachineInventory(medium_fabric)
    engine = VmPlacementEngine(
        inv, strategy=PlacementStrategy.SERVICE_AFFINITY, seed=3
    )
    for service_name in ("web", "map-reduce", "sns"):
        for _ in range(6):
            engine.place(inv.create_vm(service_catalog.get(service_name)))
    return inv
