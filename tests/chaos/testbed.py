"""Deterministic testbed builders for the chaos suite.

Plain functions rather than fixtures: the property tests build a fresh
stateful testbed *per generated example* (pytest fixtures are created
once per test function, which would leak orchestrator state between
Hypothesis examples), and the replay tests need two bit-identical
builds side by side.
"""

from __future__ import annotations

from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.orchestrator import NetworkOrchestrator
from repro.nfv.functions import FunctionCatalog
from repro.topology.generators import build_alvc_fabric
from repro.virtualization.machines import MachineInventory
from repro.virtualization.services import STANDARD_SERVICES, ServiceCatalog
from repro.virtualization.vm_placement import VmPlacementEngine


def build_inventory(
    *,
    seed: int = 0,
    n_services: int = 2,
    n_racks: int = 4,
    servers_per_rack: int = 4,
    n_ops: int = 6,
    vms_per_service: int = 6,
) -> tuple[MachineInventory, list[str]]:
    """A small populated fabric: ``(inventory, service names)``."""
    fabric = build_alvc_fabric(
        n_racks=n_racks,
        servers_per_rack=servers_per_rack,
        n_ops=n_ops,
        seed=seed,
    )
    inventory = MachineInventory(fabric)
    catalog = ServiceCatalog.standard()
    services = [service.name for service in STANDARD_SERVICES[:n_services]]
    engine = VmPlacementEngine(inventory, seed=seed)
    for name in services:
        for _ in range(vms_per_service):
            engine.place(inventory.create_vm(catalog.get(name)))
    return inventory, services


def build_orchestrator(
    *, seed: int = 0, n_services: int = 2, **inventory_options
) -> tuple[NetworkOrchestrator, list[str]]:
    """An orchestrator with one cluster and one live chain per service.

    Chain ids are ``chain-{index}`` where ``index`` matches the returned
    service list, so tests can map degraded chains back to clusters.
    """
    inventory, services = build_inventory(
        seed=seed, n_services=n_services, **inventory_options
    )
    orchestrator = NetworkOrchestrator(inventory, placement_seed=seed)
    functions = FunctionCatalog.standard()
    for index, service in enumerate(services):
        orchestrator.cluster_manager.create_cluster(service)
        orchestrator.provision_chain(
            ChainRequest(
                tenant="t",
                chain=NetworkFunctionChain.from_names(
                    f"chain-{index}", ("firewall", "nat"), functions
                ),
                service=service,
            )
        )
    return orchestrator, services
