"""RecoveryPolicy: bounded retry, virtual backoff, give-up semantics."""

import pytest

from repro.chaos import RecoveryPolicy
from repro.exceptions import ALVCError, ValidationError


def test_first_try_success_spends_no_delay():
    policy = RecoveryPolicy(max_attempts=3)
    outcome = policy.run(lambda: "done")
    assert outcome.succeeded
    assert outcome.attempts == 1
    assert outcome.total_delay == 0.0
    assert outcome.result == "done"
    assert outcome.error is None


def test_retries_until_success():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ALVCError("not yet")
        return calls["n"]

    policy = RecoveryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0)
    outcome = policy.run(flaky)
    assert outcome.succeeded
    assert outcome.attempts == 3
    assert outcome.result == 3
    # two retries: 1.0 + 2.0 virtual seconds of backoff
    assert outcome.total_delay == pytest.approx(3.0)


def test_give_up_reports_instead_of_raising():
    def always_fails():
        raise ALVCError("permanently broken")

    policy = RecoveryPolicy(max_attempts=3, jitter=0.0)
    outcome = policy.run(always_fails)
    assert not outcome.succeeded
    assert outcome.attempts == 3
    assert outcome.result is None
    assert "permanently broken" in outcome.error


def test_non_retryable_errors_propagate():
    policy = RecoveryPolicy(max_attempts=5)

    def boom():
        raise KeyError("not an ALVCError")

    with pytest.raises(KeyError):
        policy.run(boom)


def test_delays_are_deterministic_and_capped():
    policy = RecoveryPolicy(
        max_attempts=6,
        base_delay=1.0,
        backoff=3.0,
        jitter=0.2,
        max_delay=10.0,
        seed=9,
    )
    first, second = policy.delays(), policy.delays()
    assert first == second  # the jitter stream re-seeds per call
    assert len(first) == 5
    assert all(delay <= 10.0 for delay in first)
    # exponential growth until the cap bites
    assert first[0] < first[1] < first[2]


def test_run_matches_advertised_delays():
    policy = RecoveryPolicy(
        max_attempts=4, base_delay=0.5, backoff=2.0, jitter=0.3, seed=5
    )

    def always_fails():
        raise ALVCError("nope")

    outcome = policy.run(always_fails)
    assert outcome.total_delay == pytest.approx(sum(policy.delays()))


def test_single_attempt_policy_never_delays():
    policy = RecoveryPolicy(max_attempts=1)
    assert policy.delays() == []
    outcome = policy.run(lambda: (_ for _ in ()).throw(ALVCError("x")))
    assert not outcome.succeeded
    assert outcome.attempts == 1
    assert outcome.total_delay == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"backoff": 0.5},
        {"jitter": 1.5},
        {"max_delay": 0.1, "base_delay": 1.0},
    ],
)
def test_policy_validates_parameters(kwargs):
    with pytest.raises(ValidationError):
        RecoveryPolicy(**kwargs)
