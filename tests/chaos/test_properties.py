"""Randomized chaos schedules vs the subsystem's four invariants.

Each Hypothesis example draws a fresh seeded Poisson fault schedule and
replays it through a fresh orchestrator + simulator, then checks:

(a) **isolation** — no OPS crash ever impacts more clusters than
    :func:`repro.analysis.failure_domains.blast_radius_of` predicted;
(b) **coverage** — every successfully-repaired AL still passes
    :meth:`AlReconfigurator.verify` (covers all of its machines through
    live switches) and cluster OPS sets stay pairwise disjoint;
(c) **engine parity** — the incremental and from-scratch fair-share
    engines produce bit-identical completion streams under the same
    failure churn, and the legacy reference loop agrees on every
    discrete outcome (who completed/dropped/rerouted, in what order,
    over which paths) with completion times equal to float tolerance
    (the legacy loop accumulates progress eagerly at every event, so
    last-ULP divergence is expected — the same contract the simulator's
    own parity suite enforces);
(d) **conservation** — every injected flow either completes or is
    explicitly reported dropped; nothing vanishes.

``derandomize=True`` keeps CI deterministic: the suite is a fixed set of
200+ generated schedules, not a lottery.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, RecoveryPolicy, run_chaos
from repro.core.cluster import ClusterManager
from repro.core.reconfiguration import AlReconfigurator
from repro.sim.event_simulator import EventDrivenFlowSimulator
from repro.sim.traffic import TrafficGenerator

from tests.chaos.testbed import build_inventory, build_orchestrator

_SETTINGS = dict(deadline=None, derandomize=True)

# One generated schedule is defined by these draws; the fabric seed is
# kept to a small set so Hypothesis explores schedules, not topologies.
fabric_seeds = st.integers(min_value=0, max_value=2)
chaos_seeds = st.integers(min_value=0, max_value=10_000)
rates = st.floats(min_value=0.1, max_value=0.8, allow_nan=False)
durations = st.floats(min_value=5.0, max_value=25.0, allow_nan=False)
repairs = st.sampled_from([None, 4.0])


def _chaos_run(fabric_seed, chaos_seed, rate, duration, repair_after):
    orchestrator, services = build_orchestrator(seed=fabric_seed)
    inventory = orchestrator.cluster_manager.inventory
    injector = FaultInjector(inventory.network, seed=chaos_seed)
    injector.schedule(
        duration=duration, rate=rate, repair_after=repair_after
    )
    flows = TrafficGenerator(inventory, seed=chaos_seed).flows(8)
    report = run_chaos(
        orchestrator,
        injector.events(),
        flows,
        policy=RecoveryPolicy(max_attempts=2, seed=chaos_seed),
        seed=chaos_seed,
    )
    return orchestrator, services, flows, report


# ----------------------------------------------------------------------
# (a) blast radius never exceeds the prediction
# ----------------------------------------------------------------------
@given(fabric_seeds, chaos_seeds, rates, durations, repairs)
@settings(max_examples=60, **_SETTINGS)
def test_blast_radius_never_exceeds_prediction(
    fabric_seed, chaos_seed, rate, duration, repair_after
):
    _, _, _, report = _chaos_run(
        fabric_seed, chaos_seed, rate, duration, repair_after
    )
    for observation in report.blast_radii:
        assert observation.predicted_clusters <= 1  # OPS disjointness
        assert (
            observation.observed_clusters <= observation.predicted_clusters
        )
    assert report.isolation_held


# ----------------------------------------------------------------------
# (b) post-recovery ALs verify and stay disjoint
# ----------------------------------------------------------------------
@given(fabric_seeds, chaos_seeds, rates, durations, repairs)
@settings(max_examples=60, **_SETTINGS)
def test_repaired_layers_cover_and_stay_disjoint(
    fabric_seed, chaos_seed, rate, duration, repair_after
):
    orchestrator, services, _, report = _chaos_run(
        fabric_seed, chaos_seed, rate, duration, repair_after
    )
    manager = orchestrator.cluster_manager
    inventory = manager.inventory
    degraded = set(report.degraded_chains)
    # chain-{i} runs over services[i] (see testbed), so a cluster is
    # fully healthy iff its chain is not degraded.
    healthy = [
        manager.cluster_of_service(service)
        for index, service in enumerate(services)
        if f"chain-{index}" not in degraded
    ]
    for cluster in healthy:
        # no corpse left selected
        assert not (cluster.al_switches & orchestrator.failed_ops)
        attachments = {
            vm: inventory.tors_of_vm(vm) for vm in sorted(cluster.vm_ids)
        }
        AlReconfigurator(
            inventory.network,
            cluster.abstraction_layer,
            attachments,
            failed_ops=orchestrator.failed_ops,
        ).verify()  # raises CoverInfeasibleError on a coverage hole
    # the paper's disjointness rule survives the churn
    clusters = manager.clusters()
    for index, first in enumerate(clusters):
        for second in clusters[index + 1 :]:
            assert not (first.al_switches & second.al_switches)


# ----------------------------------------------------------------------
# (c) all three fair-share engines agree under failure churn
# ----------------------------------------------------------------------
@given(fabric_seeds, chaos_seeds, rates, durations, repairs)
@settings(max_examples=40, **_SETTINGS)
def test_engines_bit_identical_under_failure_churn(
    fabric_seed, chaos_seed, rate, duration, repair_after
):
    inventory, services = build_inventory(seed=fabric_seed)
    clusters = ClusterManager(inventory)
    for service in services:
        clusters.create_cluster(service)
    injector = FaultInjector(inventory.network, seed=chaos_seed)
    injector.schedule(
        duration=duration, rate=rate, repair_after=repair_after
    )
    schedule = injector.events()
    flows = TrafficGenerator(inventory, seed=chaos_seed).flows(8)

    reports = {}
    for engine in ("incremental", "from_scratch", "legacy", "vector"):
        simulator = EventDrivenFlowSimulator(
            inventory, clusters, engines={"sim_engine": engine}
        )
        reports[engine] = simulator.run(flows, failures=schedule)
    baseline = reports["incremental"]
    # incremental vs from-scratch vs vector: bit-for-bit
    for engine in ("from_scratch", "vector"):
        assert reports[engine].completed == baseline.completed
        assert reports[engine].dropped == baseline.dropped
        assert reports[engine].reroutes == baseline.reroutes
    # legacy reference loop: identical discrete outcomes, float-tolerant
    # completion times (it accumulates progress eagerly at every event)
    legacy = reports["legacy"]
    assert legacy.dropped == baseline.dropped
    assert legacy.reroutes == baseline.reroutes
    assert len(legacy.completed) == len(baseline.completed)
    for ours, theirs in zip(baseline.completed, legacy.completed):
        assert ours.flow_id == theirs.flow_id
        assert ours.hops == theirs.hops
        assert ours.arrival_time == theirs.arrival_time
        assert math.isclose(
            ours.completion_time, theirs.completion_time, rel_tol=1e-9
        )


# ----------------------------------------------------------------------
# (d) flow conservation: completed + dropped = injected
# ----------------------------------------------------------------------
@given(fabric_seeds, chaos_seeds, rates, durations, repairs)
@settings(max_examples=60, **_SETTINGS)
def test_every_flow_is_accounted_for(
    fabric_seed, chaos_seed, rate, duration, repair_after
):
    _, _, flows, report = _chaos_run(
        fabric_seed, chaos_seed, rate, duration, repair_after
    )
    flow_ids = [flow.flow_id for flow in flows]
    assert report.unaccounted_flows(flow_ids) == set()
    assert report.flows_completed + report.flows_dropped == len(flow_ids)
