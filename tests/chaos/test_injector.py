"""FaultInjector: manual primitives, random schedules, determinism."""

import pytest

from repro.chaos import FaultInjector, FaultKind
from repro.exceptions import ValidationError
from repro.observability.runtime import Telemetry

from tests.chaos.testbed import build_inventory


@pytest.fixture
def network():
    inventory, _ = build_inventory()
    return inventory.network


# ----------------------------------------------------------------------
# Manual scheduling
# ----------------------------------------------------------------------
def test_crash_node_infers_kind_from_role(network):
    injector = FaultInjector(network)
    ops = sorted(network.optical_switches())[0]
    tor = sorted(network.tors())[0]
    server = sorted(network.servers())[0]
    assert injector.crash_node(1.0, ops).kind is FaultKind.OPS_CRASH
    assert injector.crash_node(2.0, tor).kind is FaultKind.TOR_CRASH
    assert injector.crash_node(3.0, server).kind is FaultKind.SERVER_CRASH
    assert len(injector) == 3


def test_unknown_targets_rejected(network):
    injector = FaultInjector(network)
    with pytest.raises(ValidationError):
        injector.crash_node(0.0, "no-such-node")
    with pytest.raises(ValidationError):
        injector.cut_link(0.0, "no", "such-link")
    assert len(injector) == 0


def test_flap_link_emits_cut_repair_pairs(network):
    injector = FaultInjector(network)
    edge = sorted(tuple(sorted(e)) for e in network.graph.edges())[0]
    events = injector.flap_link(10.0, *edge, period=2.0, cycles=3)
    assert len(events) == 6
    cuts = [e for e in events if e.kind is FaultKind.LINK_CUT]
    repairs = [e for e in events if e.kind is FaultKind.LINK_REPAIR]
    assert [e.time for e in cuts] == [10.0, 12.0, 14.0]
    assert [e.time for e in repairs] == [11.0, 13.0, 15.0]


def test_flap_link_validates_period_and_cycles(network):
    injector = FaultInjector(network)
    edge = sorted(tuple(sorted(e)) for e in network.graph.edges())[0]
    with pytest.raises(ValidationError):
        injector.flap_link(0.0, *edge, period=0.0, cycles=1)
    with pytest.raises(ValidationError):
        injector.flap_link(0.0, *edge, period=1.0, cycles=0)


def test_rack_outage_is_correlated(network):
    injector = FaultInjector(network)
    tor = sorted(network.tors())[0]
    servers = network.servers_under(tor)
    events = injector.rack_outage(5.0, tor, repair_after=3.0)
    crashes = [e for e in events if e.kind is not FaultKind.NODE_REPAIR]
    repairs = [e for e in events if e.kind is FaultKind.NODE_REPAIR]
    assert {e.target for e in crashes} == {tor, *servers}
    assert all(e.time == 5.0 for e in crashes)  # same instant
    assert {e.target for e in repairs} == {tor, *servers}
    assert all(e.time == 8.0 for e in repairs)


def test_rack_outage_rejects_non_tor(network):
    injector = FaultInjector(network)
    ops = sorted(network.optical_switches())[0]
    with pytest.raises(ValidationError):
        injector.rack_outage(0.0, ops)


# ----------------------------------------------------------------------
# Random scheduling
# ----------------------------------------------------------------------
def test_schedule_is_deterministic_per_seed(network):
    first = FaultInjector(network, seed=42)
    second = FaultInjector(network, seed=42)
    other = FaultInjector(network, seed=43)
    kwargs = dict(duration=50.0, rate=0.4, repair_after=5.0)
    assert first.schedule(**kwargs) == second.schedule(**kwargs)
    assert first.events() == second.events()
    assert first.events() != other.schedule(**kwargs)


def test_schedule_never_targets_a_corpse(network):
    injector = FaultInjector(network, seed=7)
    events = injector.schedule(duration=200.0, rate=0.5)  # no repairs
    down_nodes: set = set()
    down_links: set = set()
    for event in sorted(events, key=lambda e: e.time):
        if event.kind in (
            FaultKind.OPS_CRASH,
            FaultKind.TOR_CRASH,
            FaultKind.SERVER_CRASH,
        ):
            assert event.target not in down_nodes
            down_nodes.add(event.target)
        elif event.kind is FaultKind.LINK_CUT:
            link = frozenset(event.target)
            assert link not in down_links
            assert not (link & down_nodes)
            down_links.add(link)


def test_schedule_respects_protected_nodes(network):
    shielded = sorted(network.optical_switches())[0]
    injector = FaultInjector(network, seed=3)
    events = injector.schedule(
        duration=300.0,
        rate=0.5,
        kinds=(FaultKind.OPS_CRASH,),
        repair_after=1.0,
        protected=(shielded,),
    )
    assert events  # the schedule is non-trivial
    assert all(event.target != shielded for event in events)


def test_schedule_validates_arguments(network):
    injector = FaultInjector(network)
    with pytest.raises(ValidationError):
        injector.schedule(duration=0.0, rate=1.0)
    with pytest.raises(ValidationError):
        injector.schedule(duration=1.0, rate=0.0)
    with pytest.raises(ValidationError):
        injector.schedule(duration=1.0, rate=1.0, kinds=())
    with pytest.raises(ValidationError):
        injector.schedule(
            duration=1.0, rate=1.0, kinds=(FaultKind.NODE_REPAIR,)
        )
    with pytest.raises(ValidationError):
        injector.schedule(duration=1.0, rate=1.0, severity_range=(0.0, 2.0))
    with pytest.raises(ValidationError):
        injector.schedule(duration=1.0, rate=1.0, repair_after=-1.0)


def test_events_sorted_and_clearable(network):
    injector = FaultInjector(network, seed=1)
    injector.schedule(duration=40.0, rate=0.5)
    times = [event.time for event in injector.events()]
    assert times == sorted(times)
    injector.clear()
    assert injector.events() == []


def test_injector_counts_faults_in_telemetry(network):
    telemetry = Telemetry.enabled_instance()
    injector = FaultInjector(network, seed=1, telemetry=telemetry)
    ops = sorted(network.optical_switches())[0]
    injector.crash_node(0.0, ops)
    family = telemetry.snapshot()["metrics"]["alvc_faults_injected_total"]
    assert any(
        entry["labels"] == {"kind": "ops_crash"} and entry["value"] == 1
        for entry in family["series"]
    )
