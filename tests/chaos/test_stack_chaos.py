"""AlvcStack.inject_faults — the facade entry to chaos experiments."""

import pytest

from repro.chaos import ChaosReport, RecoveryPolicy
from repro.exceptions import ValidationError
from repro.stack import AlvcStack


def _stack(seed: int = 3) -> AlvcStack:
    stack = AlvcStack.build(
        n_racks=4, servers_per_rack=4, n_ops=6, seed=seed
    )
    stack.provision(("firewall", "nat"), service="web")
    return stack


def test_random_mode_runs_and_reports():
    report = _stack().inject_faults(
        seed=3,
        rate=0.4,
        duration=30.0,
        repair_after=5.0,
        n_flows=15,
        policy=RecoveryPolicy(max_attempts=2, seed=3),
    )
    assert isinstance(report, ChaosReport)
    assert report.seed == 3
    assert report.faults_injected > 0
    assert report.simulation is not None


def test_random_mode_is_deterministic():
    kwargs = dict(seed=3, rate=0.4, duration=30.0, n_flows=15)
    assert _stack().inject_faults(**kwargs) == _stack().inject_faults(
        **kwargs
    )


def test_explicit_schedule_mode():
    stack = _stack()
    ops = sorted(stack.fabric.optical_switches())[0]
    report = stack.inject_faults([(1.0, ops)], seed=9)
    assert report.faults_injected == 1
    assert len(report.recoveries) == 1


def test_rejects_both_and_neither():
    stack = _stack()
    ops = sorted(stack.fabric.optical_switches())[0]
    with pytest.raises(ValidationError):
        stack.inject_faults([(1.0, ops)], rate=0.5)
    with pytest.raises(ValidationError):
        stack.inject_faults()
