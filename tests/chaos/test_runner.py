"""ChaosRunner end-to-end + the deterministic-replay acceptance test."""

import pytest

from repro.chaos import (
    ChaosRunner,
    FaultEvent,
    FaultInjector,
    FaultKind,
    RecoveryPolicy,
    run_chaos,
)
from repro.exceptions import ValidationError
from repro.sim.traffic import TrafficGenerator

from tests.chaos.testbed import build_orchestrator


def _assigned_ops(orchestrator, service):
    cluster = orchestrator.cluster_manager.cluster_of_service(service)
    return sorted(cluster.al_switches)[0]


# ----------------------------------------------------------------------
# Control-plane pass
# ----------------------------------------------------------------------
def test_ops_crash_recovers_and_contains_blast_radius():
    orchestrator, services = build_orchestrator()
    ops = _assigned_ops(orchestrator, services[0])
    flows = TrafficGenerator(
        orchestrator.cluster_manager.inventory, seed=0
    ).flows(10)

    report = run_chaos(
        orchestrator,
        [FaultEvent(time=1.0, kind=FaultKind.OPS_CRASH, target=ops)],
        flows,
        policy=RecoveryPolicy(max_attempts=3),
        seed=0,
    )

    assert report.faults_injected == 1
    (recovery,) = report.recoveries
    assert recovery.failed == ops
    assert recovery.cluster is not None
    assert recovery.recovered
    assert report.mttr >= 0.0
    (observation,) = report.blast_radii
    assert observation.predicted_clusters <= 1
    assert observation.within_prediction
    assert report.isolation_held
    # the repaired layer no longer contains the corpse
    repaired = orchestrator.cluster_manager.cluster_of_service(services[0])
    assert ops not in repaired.al_switches
    # data plane ran and conserved flows
    assert report.simulation is not None
    assert report.unaccounted_flows([f.flow_id for f in flows]) == set()


def test_crash_of_free_ops_is_a_cheap_recovery():
    orchestrator, _ = build_orchestrator()
    free = sorted(orchestrator.cluster_manager.free_ops())[0]
    report = run_chaos(orchestrator, [(0.5, free)])
    (recovery,) = report.recoveries
    assert recovery.cluster is None
    assert recovery.recovered
    assert recovery.switches_touched == 0
    (observation,) = report.blast_radii
    assert observation.predicted_clusters == 0
    assert observation.observed_clusters == 0


def test_duplicate_crash_is_a_no_op():
    orchestrator, services = build_orchestrator()
    ops = _assigned_ops(orchestrator, services[0])
    report = run_chaos(orchestrator, [(1.0, ops), (2.0, ops)])
    assert report.faults_injected == 2
    assert len(report.recoveries) == 1


def test_node_repair_returns_ops_to_service():
    orchestrator, services = build_orchestrator()
    ops = _assigned_ops(orchestrator, services[0])
    schedule = [
        FaultEvent(time=1.0, kind=FaultKind.OPS_CRASH, target=ops),
        FaultEvent(time=9.0, kind=FaultKind.NODE_REPAIR, target=ops),
    ]
    report = run_chaos(orchestrator, schedule)
    assert len(report.recoveries) == 1
    assert orchestrator.failed_ops == frozenset()


def test_legacy_tuples_and_malformed_entries():
    orchestrator, services = build_orchestrator()
    ops = _assigned_ops(orchestrator, services[0])
    runner = ChaosRunner(orchestrator)
    with pytest.raises(ValidationError):
        runner.run([object()])
    with pytest.raises(ValidationError):
        runner.run([(1.0, "no-such-node")])
    report = runner.run([(1.0, ops)])
    assert report.recoveries[0].failed == ops


def test_empty_schedule_and_no_flows_reports_empty():
    orchestrator, _ = build_orchestrator()
    report = run_chaos(orchestrator, [])
    assert report.faults_injected == 0
    assert report.simulation is None
    assert report.mttr == 0.0
    assert report.unaccounted_flows(["f1"]) == {"f1"}
    assert report.summary()["faults"] == 0.0
    assert report.to_rows() == []


# ----------------------------------------------------------------------
# The acceptance test: bit-for-bit deterministic replay
# ----------------------------------------------------------------------
def _one_full_run(seed: int):
    orchestrator, _ = build_orchestrator(seed=seed)
    inventory = orchestrator.cluster_manager.inventory
    injector = FaultInjector(inventory.network, seed=seed)
    injector.schedule(duration=30.0, rate=0.4, repair_after=6.0)
    flows = TrafficGenerator(inventory, seed=seed).flows(25)
    return run_chaos(
        orchestrator,
        injector.events(),
        flows,
        policy=RecoveryPolicy(max_attempts=3, seed=seed),
        seed=seed,
    )


def test_identically_seeded_runs_replay_bit_for_bit():
    first = _one_full_run(seed=5)
    second = _one_full_run(seed=5)
    assert first == second  # the whole frozen report compares equal
    assert first.simulation.completed == second.simulation.completed
    assert first.simulation.dropped == second.simulation.dropped
    assert first.to_rows() == second.to_rows()
    assert first.summary() == second.summary()


def test_different_seeds_diverge():
    assert _one_full_run(seed=5) != _one_full_run(seed=6)
