"""Tests for the comparison baselines."""

import pytest

from repro.baselines import (
    FlatNetworkBaseline,
    all_electronic_placement,
    optimal_abstraction_layer,
    random_abstraction_layer,
)
from repro.core.abstraction_layer import AlConstructor
from repro.core.chaining import NetworkFunctionChain
from repro.nfv.functions import FunctionCatalog
from repro.sdn.updates import UpdateEvent, UpdateKind
from repro.sim.traffic import TrafficGenerator


class TestRandomAl:
    def test_valid_cover(self, small_fabric):
        layer = random_abstraction_layer(
            small_fabric, "cluster-x", small_fabric.servers(), seed=0
        )
        for server in small_fabric.servers():
            assert set(small_fabric.tors_of_server(server)) & layer.tor_ids

    def test_seed_controls_outcome(self, medium_fabric):
        outcomes = {
            tuple(
                sorted(
                    random_abstraction_layer(
                        medium_fabric,
                        "cluster-x",
                        medium_fabric.servers(),
                        seed=seed,
                    ).ops_ids
                )
            )
            for seed in range(8)
        }
        assert len(outcomes) > 1

    def test_respects_available_ops(self, paper_dcn):
        layer = random_abstraction_layer(
            paper_dcn,
            "cluster-x",
            paper_dcn.servers(),
            seed=0,
            available_ops=["ops-0", "ops-2", "ops-3"],
        )
        assert layer.ops_ids <= {"ops-0", "ops-2", "ops-3"}


class TestOptimalAl:
    def test_minimum_on_paper_example(self, paper_dcn):
        layer = optimal_abstraction_layer(
            paper_dcn, "cluster-x", paper_dcn.servers()
        )
        assert layer.size == 2

    def test_never_worse_than_greedy(self, small_fabric):
        exact = optimal_abstraction_layer(
            small_fabric, "cluster-x", small_fabric.servers()
        )
        greedy = AlConstructor(small_fabric).construct_for_servers(
            "cluster-x", small_fabric.servers()
        )
        assert exact.size <= greedy.size

    def test_never_worse_than_random(self, small_fabric):
        exact = optimal_abstraction_layer(
            small_fabric, "cluster-x", small_fabric.servers()
        )
        for seed in range(5):
            random_layer = random_abstraction_layer(
                small_fabric, "cluster-x", small_fabric.servers(), seed=seed
            )
            assert exact.size <= random_layer.size


class TestFlatNetwork:
    def test_runs_flows(self, populated_inventory):
        baseline = FlatNetworkBaseline(populated_inventory)
        generator = TrafficGenerator(populated_inventory, seed=0)
        flows = generator.flows(50)
        report = baseline.run_flows(flows)
        assert report.flows == 50
        # Without clusters only co-located flows (single-node paths) can
        # count as confined; nothing that crosses the fabric does.
        colocated = sum(
            1
            for flow in flows
            if populated_inventory.host_of(flow.source)
            == populated_inventory.host_of(flow.destination)
        )
        assert report.al_confined_flows == colocated

    def test_update_cost_covers_core(self, populated_inventory):
        baseline = FlatNetworkBaseline(populated_inventory)
        event = UpdateEvent(
            kind=UpdateKind.VM_ARRIVAL,
            vm="vm-0",
            server=populated_inventory.network.servers()[0],
        )
        cost = baseline.update_cost(event)
        assert cost >= len(populated_inventory.network.optical_switches())

    def test_total_update_cost(self, populated_inventory):
        baseline = FlatNetworkBaseline(populated_inventory)
        servers = populated_inventory.network.servers()
        events = [
            UpdateEvent(
                kind=UpdateKind.VM_DEPARTURE, vm=f"vm-{i}", server=servers[i]
            )
            for i in range(3)
        ]
        total = baseline.total_update_cost(events)
        assert total == sum(baseline.update_cost(e) for e in events)


class TestAllElectronicPlacement:
    def test_every_position_electronic(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0", ("firewall", "dpi", "nat"), function_catalog
        )
        placement = all_electronic_placement(chain)
        assert placement.optical_count == 0
        assert placement.conversions == 3

    def test_merge_semantics_option(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0", ("firewall", "nat"), function_catalog
        )
        merged = all_electronic_placement(chain, merge_consecutive=True)
        assert merged.conversions == 1
