"""Tests for multi-DC federation."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.federation import (
    InterDcLink,
    federate,
    site_node,
    site_of,
)
from repro.topology.generators import build_alvc_fabric
from repro.topology.validation import validate_topology


@pytest.fixture
def two_sites():
    east = build_alvc_fabric(n_racks=3, servers_per_rack=2, n_ops=3, seed=1)
    west = build_alvc_fabric(n_racks=2, servers_per_rack=2, n_ops=2, seed=2)
    return {"east": east, "west": west}


@pytest.fixture
def federation(two_sites):
    return federate(
        two_sites,
        [InterDcLink("east", "ops-0", "west", "ops-0")],
    )


class TestHelpers:
    def test_site_node_format(self):
        assert site_node("east", "ops-1") == "east/ops-1"

    def test_site_of_roundtrip(self):
        assert site_of(site_node("west", "server-3")) == "west"

    def test_site_of_rejects_unprefixed(self):
        with pytest.raises(TopologyError):
            site_of("server-3")


class TestInterDcLink:
    def test_same_site_rejected(self):
        with pytest.raises(TopologyError):
            InterDcLink("east", "ops-0", "east", "ops-1")

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(TopologyError):
            InterDcLink("east", "ops-0", "west", "ops-0", bandwidth_gbps=0)


class TestFederate:
    def test_node_census_is_union(self, two_sites, federation):
        expected = sum(
            site.graph.number_of_nodes() for site in two_sites.values()
        )
        assert federation.graph.number_of_nodes() == expected

    def test_links_preserved_plus_inter_dc(self, two_sites, federation):
        intra = sum(
            site.graph.number_of_edges() for site in two_sites.values()
        )
        assert federation.graph.number_of_edges() == intra + 1

    def test_validates(self, federation):
        assert validate_topology(federation).ok

    def test_inter_dc_link_is_optical(self, federation):
        link = federation.link_of("east/ops-0", "west/ops-0")
        assert link.bandwidth_gbps == 100.0

    def test_specs_renamed(self, federation):
        spec = federation.spec_of("east/server-0")
        assert spec.server_id == "east/server-0"

    def test_queries_work_across_namespace(self, two_sites, federation):
        expected = [
            site_node("west", tor)
            for tor in two_sites["west"].tors_of_server("server-0")
        ]
        assert federation.tors_of_server("west/server-0") == expected

    def test_disconnected_federation_rejected(self, two_sites):
        with pytest.raises(TopologyError, match="disconnected"):
            federate(two_sites, [])

    def test_unknown_site_rejected(self, two_sites):
        with pytest.raises(TopologyError):
            federate(
                two_sites,
                [InterDcLink("east", "ops-0", "mars", "ops-0")],
            )

    def test_unknown_endpoint_rejected(self, two_sites):
        with pytest.raises(TopologyError):
            federate(
                two_sites,
                [InterDcLink("east", "ops-99", "west", "ops-0")],
            )

    def test_non_ops_endpoint_rejected(self, two_sites):
        with pytest.raises(TopologyError):
            federate(
                two_sites,
                [InterDcLink("east", "tor-0", "west", "ops-0")],
            )

    def test_bad_site_name_rejected(self, two_sites):
        renamed = {"ea/st": two_sites["east"]}
        with pytest.raises(TopologyError):
            federate(renamed, [])

    def test_empty_federation_rejected(self):
        with pytest.raises(TopologyError):
            federate({}, [])

    def test_single_site_needs_no_links(self, two_sites):
        merged = federate({"east": two_sites["east"]}, [])
        assert validate_topology(merged).ok


class TestCrossSiteClustering:
    def test_cluster_spanning_sites(self, federation):
        """A service spread over both sites gets one AL across the
        federation's optical cores — the distributed architecture of
        the paper's Section IV.B."""
        from repro.core.abstraction_layer import AlConstructor
        from repro.virtualization.machines import MachineInventory
        from repro.virtualization.services import ServiceCatalog
        from repro.sdn.routing import shortest_path_in_al

        inventory = MachineInventory(federation)
        web = ServiceCatalog.standard().get("web")
        east_vm = inventory.create_vm(web)
        west_vm = inventory.create_vm(web)
        inventory.place(east_vm, "east/server-0")
        inventory.place(west_vm, "west/server-0")

        constructor = AlConstructor(federation)
        layer = constructor.construct(
            "cluster-geo",
            {
                east_vm.vm_id: inventory.tors_of_vm(east_vm.vm_id),
                west_vm.vm_id: inventory.tors_of_vm(west_vm.vm_id),
            },
        )
        sites_in_al = {node.split("/")[0] for node in layer.ops_ids}
        assert sites_in_al == {"east", "west"}
        # The AL must actually connect the two VMs (via the inter-DC
        # link) for intra-cluster routing to stay inside the slice.
        al_with_bridge = set(layer.ops_ids)
        path = shortest_path_in_al(
            federation,
            "east/server-0",
            "west/server-0",
            al_with_bridge | {"east/ops-0", "west/ops-0"},
        )
        assert path[0] == "east/server-0"
        assert path[-1] == "west/server-0"
