"""Tests for TopologyBuilder."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.builder import TopologyBuilder
from repro.topology.elements import ResourceVector


class TestOpticalCore:
    def test_count_must_be_positive(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().add_optical_core(0)

    def test_all_optoelectronic_by_default(self):
        builder = TopologyBuilder()
        builder.add_optical_core(3)
        builder.add_rack(servers=1, uplinks=["ops-0"])
        dcn = builder.build()
        assert len(dcn.optoelectronic_routers()) == 3

    def test_optoelectronic_every_two(self):
        builder = TopologyBuilder()
        builder.add_optical_core(4, optoelectronic_every=2)
        builder.add_rack(servers=1, uplinks=["ops-0"])
        dcn = builder.build()
        assert dcn.optoelectronic_routers() == ["ops-0", "ops-2"]

    def test_optoelectronic_none(self):
        builder = TopologyBuilder()
        builder.add_optical_core(3, optoelectronic_every=0)
        builder.add_rack(servers=1, uplinks=["ops-0"])
        dcn = builder.build()
        assert dcn.optoelectronic_routers() == []

    def test_full_mesh_interconnect(self):
        builder = TopologyBuilder()
        switches = builder.add_optical_core(4, interconnect="full_mesh")
        builder.add_rack(servers=1, uplinks=[switches[0]])
        dcn = builder.build()
        core = dcn.optical_core()
        assert core.number_of_edges() == 6  # C(4, 2)

    def test_ring_interconnect(self):
        builder = TopologyBuilder()
        switches = builder.add_optical_core(5, interconnect="ring")
        builder.add_rack(servers=1, uplinks=[switches[0]])
        dcn = builder.build()
        core = dcn.optical_core()
        assert core.number_of_edges() == 5
        assert all(core.degree(node) == 2 for node in core)

    def test_ring_needs_three_switches(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().add_optical_core(2, interconnect="ring")

    def test_torus_interconnect(self):
        builder = TopologyBuilder()
        switches = builder.add_optical_core(9, interconnect="torus")
        builder.add_rack(servers=1, uplinks=[switches[0]])
        dcn = builder.build()
        core = dcn.optical_core()
        # 2D torus: every node has degree 4 (wrap-around), 2*n edges...
        # for a 3x3 torus, rows and columns wrap with 3 nodes: degree 4.
        assert all(core.degree(node) == 4 for node in core)

    def test_torus_requires_square_count(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().add_optical_core(6, interconnect="torus")

    def test_unknown_layout_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().add_optical_core(4, interconnect="dragonfly")


class TestRacks:
    def test_rack_needs_servers(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(1)
        with pytest.raises(TopologyError):
            builder.add_rack(servers=0, uplinks=core)

    def test_rack_needs_uplinks(self):
        builder = TopologyBuilder()
        builder.add_optical_core(1)
        with pytest.raises(TopologyError):
            builder.add_rack(servers=2, uplinks=[])

    def test_rack_returns_tor_and_servers(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(2)
        tor, servers = builder.add_rack(servers=3, uplinks=core)
        dcn = builder.build()
        assert dcn.servers_under(tor) == sorted(servers)
        assert dcn.ops_of_tor(tor) == ["ops-0", "ops-1"]

    def test_rack_index_assigned_to_specs(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(1)
        builder.add_rack(servers=1, uplinks=core)
        tor, servers = builder.add_rack(servers=1, uplinks=core)
        dcn = builder.build()
        assert dcn.spec_of(tor).rack == 1
        assert dcn.spec_of(servers[0]).rack == 1

    def test_extra_tors_dual_home_servers(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(1)
        first_tor, _ = builder.add_rack(servers=1, uplinks=core)
        _, servers = builder.add_rack(
            servers=2, uplinks=core, extra_tors=[first_tor]
        )
        dcn = builder.build()
        for server in servers:
            assert len(dcn.tors_of_server(server)) == 2

    def test_custom_server_capacity(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(1)
        capacity = ResourceVector(cpu_cores=4, memory_gb=8, storage_gb=100)
        _, servers = builder.add_rack(
            servers=1, uplinks=core, server_capacity=capacity
        )
        dcn = builder.build()
        assert dcn.spec_of(servers[0]).capacity == capacity


class TestBuildOnce:
    def test_build_twice_rejected(self):
        builder = TopologyBuilder()
        builder.add_optical_core(1)
        builder.add_rack(servers=1, uplinks=["ops-0"])
        builder.build()
        with pytest.raises(TopologyError):
            builder.build()


class TestHypercube:
    def test_hypercube_degrees(self):
        builder = TopologyBuilder()
        switches = builder.add_optical_core(8, interconnect="hypercube")
        builder.add_rack(servers=1, uplinks=[switches[0]])
        dcn = builder.build()
        core = dcn.optical_core()
        # 3-cube: every node has degree 3, 12 edges.
        assert all(core.degree(node) == 3 for node in core)
        assert core.number_of_edges() == 12

    def test_hypercube_connected(self):
        import networkx as nx

        builder = TopologyBuilder()
        switches = builder.add_optical_core(16, interconnect="hypercube")
        builder.add_rack(servers=1, uplinks=[switches[0]])
        core = builder.build().optical_core()
        assert nx.is_connected(core)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().add_optical_core(6, interconnect="hypercube")

    def test_single_switch_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().add_optical_core(1, interconnect="hypercube")
