"""Tests for topology generators, including the Fig. 4 fixture."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.generators import (
    build_alvc_fabric,
    build_fat_tree,
    build_leaf_spine,
    paper_example_topology,
)
from repro.topology.validation import validate_topology


class TestPaperExample:
    def test_census(self, paper_dcn):
        summary = paper_dcn.summary()
        assert summary["servers"] == 6
        assert summary["tors"] == 4
        assert summary["optical_switches"] == 4

    def test_validates(self, paper_dcn):
        assert validate_topology(paper_dcn).ok

    def test_tor0_has_four_incoming_two_outgoing(self, paper_dcn):
        # The figure's "ToR 1": four machines, two OPS uplinks.
        assert len(paper_dcn.servers_under("tor-0")) == 4
        assert len(paper_dcn.ops_of_tor("tor-0")) == 2

    def test_tor1_machines_subset_of_tor0(self, paper_dcn):
        # "machines against this switch are already connected by ToR 1".
        tor1_machines = set(paper_dcn.servers_under("tor-1"))
        tor0_machines = set(paper_dcn.servers_under("tor-0"))
        assert tor1_machines <= tor0_machines

    def test_tor2_covers_the_rest(self, paper_dcn):
        covered = set(paper_dcn.servers_under("tor-0")) | set(
            paper_dcn.servers_under("tor-2")
        )
        assert covered == set(paper_dcn.servers())

    def test_weights_strictly_decreasing(self, paper_dcn):
        weights = [paper_dcn.tor_weight(tor) for tor in paper_dcn.tors()]
        assert weights == sorted(weights, reverse=True)
        assert len(set(weights)) == len(weights)

    def test_all_switches_optoelectronic(self, paper_dcn):
        assert (
            paper_dcn.optoelectronic_routers()
            == paper_dcn.optical_switches()
        )

    def test_deterministic(self):
        first = paper_example_topology()
        second = paper_example_topology()
        assert first.summary() == second.summary()
        assert set(first.graph.edges) == set(second.graph.edges)


class TestAlvcFabric:
    def test_dimensions(self):
        dcn = build_alvc_fabric(
            n_racks=5, servers_per_rack=3, n_ops=4, seed=0
        )
        summary = dcn.summary()
        assert summary["servers"] == 15
        assert summary["tors"] == 5
        assert summary["optical_switches"] == 4

    def test_validates(self):
        dcn = build_alvc_fabric(n_racks=6, servers_per_rack=4, n_ops=3, seed=1)
        assert validate_topology(dcn).ok

    def test_deterministic_per_seed(self):
        first = build_alvc_fabric(n_racks=4, servers_per_rack=4, n_ops=4, seed=5)
        second = build_alvc_fabric(n_racks=4, servers_per_rack=4, n_ops=4, seed=5)
        assert set(first.graph.edges) == set(second.graph.edges)

    def test_different_seeds_differ(self):
        first = build_alvc_fabric(
            n_racks=8, servers_per_rack=4, n_ops=6, seed=1,
            dual_homing_fraction=0.5,
        )
        second = build_alvc_fabric(
            n_racks=8, servers_per_rack=4, n_ops=6, seed=2,
            dual_homing_fraction=0.5,
        )
        assert set(first.graph.edges) != set(second.graph.edges)

    def test_every_tor_has_uplinks(self):
        dcn = build_alvc_fabric(
            n_racks=4, servers_per_rack=2, n_ops=4, tor_uplinks=3, seed=0
        )
        for tor in dcn.tors():
            assert len(dcn.ops_of_tor(tor)) == 3

    def test_uplinks_clamped_to_core_size(self):
        dcn = build_alvc_fabric(
            n_racks=2, servers_per_rack=2, n_ops=2, tor_uplinks=10, seed=0
        )
        for tor in dcn.tors():
            assert len(dcn.ops_of_tor(tor)) == 2

    def test_dual_homing_creates_multi_tor_servers(self):
        dcn = build_alvc_fabric(
            n_racks=6,
            servers_per_rack=8,
            n_ops=4,
            dual_homing_fraction=1.0,
            seed=0,
        )
        assert all(
            len(dcn.tors_of_server(server)) == 2 for server in dcn.servers()
        )

    def test_no_dual_homing_when_zero(self):
        dcn = build_alvc_fabric(
            n_racks=6,
            servers_per_rack=8,
            n_ops=4,
            dual_homing_fraction=0.0,
            seed=0,
        )
        assert all(
            len(dcn.tors_of_server(server)) == 1 for server in dcn.servers()
        )

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            build_alvc_fabric(n_racks=0, servers_per_rack=1, n_ops=1)

    def test_invalid_dual_homing_rejected(self):
        with pytest.raises(TopologyError):
            build_alvc_fabric(dual_homing_fraction=1.5)

    def test_core_layout_ring(self):
        dcn = build_alvc_fabric(
            n_racks=2, servers_per_rack=2, n_ops=4, core_layout="ring", seed=0
        )
        core = dcn.optical_core()
        assert core.number_of_edges() == 4

    def test_optoelectronic_every(self):
        dcn = build_alvc_fabric(
            n_racks=2,
            servers_per_rack=2,
            n_ops=4,
            optoelectronic_every=2,
            seed=0,
        )
        assert len(dcn.optoelectronic_routers()) == 2


class TestLeafSpine:
    def test_full_bipartite_uplinks(self):
        dcn = build_leaf_spine(n_leaf=3, n_spine=2, servers_per_leaf=4)
        for tor in dcn.tors():
            assert len(dcn.ops_of_tor(tor)) == 2

    def test_validates(self):
        assert validate_topology(build_leaf_spine()).ok


class TestFatTree:
    def test_server_count(self):
        tree = build_fat_tree(4)
        servers = [n for n, l in tree.nodes(data="layer") if l == "server"]
        assert len(servers) == 16  # k^3/4

    def test_layer_census(self):
        tree = build_fat_tree(4)
        layers = {}
        for _, layer in tree.nodes(data="layer"):
            layers[layer] = layers.get(layer, 0) + 1
        assert layers == {"core": 4, "agg": 8, "edge": 8, "server": 16}

    def test_odd_arity_rejected(self):
        with pytest.raises(TopologyError):
            build_fat_tree(3)

    def test_zero_arity_rejected(self):
        with pytest.raises(TopologyError):
            build_fat_tree(0)

    def test_connected(self):
        import networkx as nx

        assert nx.is_connected(build_fat_tree(4))

    def test_server_degree_is_one(self):
        tree = build_fat_tree(4)
        for node, layer in tree.nodes(data="layer"):
            if layer == "server":
                assert tree.degree(node) == 1
