"""Tests for the DataCenterNetwork graph wrapper."""

import pytest

from repro.exceptions import (
    DuplicateEntityError,
    TopologyError,
    UnknownEntityError,
)
from repro.ids import NodeKind
from repro.topology.datacenter import DataCenterNetwork
from repro.topology.elements import (
    Domain,
    LinkSpec,
    OpticalSwitchSpec,
    ResourceVector,
    ServerSpec,
    TorSpec,
)


@pytest.fixture
def tiny():
    """server-0 — tor-0 — ops-0, plus an optoelectronic ops-1."""
    dcn = DataCenterNetwork("tiny")
    dcn.add_server(ServerSpec(server_id="server-0"))
    dcn.add_tor(TorSpec(tor_id="tor-0"))
    dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-0"))
    dcn.add_optical_switch(
        OpticalSwitchSpec(
            ops_id="ops-1", compute=ResourceVector(cpu_cores=2, memory_gb=4)
        )
    )
    dcn.connect("server-0", "tor-0")
    dcn.connect("tor-0", "ops-0")
    dcn.connect("tor-0", "ops-1")
    return dcn


class TestConstruction:
    def test_duplicate_node_rejected(self, tiny):
        with pytest.raises(DuplicateEntityError):
            tiny.add_server(ServerSpec(server_id="server-0"))

    def test_duplicate_across_kinds_rejected(self, tiny):
        with pytest.raises(DuplicateEntityError):
            tiny.add_tor(TorSpec(tor_id="server-0"))

    def test_self_loop_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.connect("tor-0", "tor-0")

    def test_server_to_server_rejected(self, tiny):
        tiny.add_server(ServerSpec(server_id="server-1"))
        with pytest.raises(TopologyError):
            tiny.connect("server-0", "server-1")

    def test_server_to_ops_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.connect("server-0", "ops-0")

    def test_connect_unknown_node_raises(self, tiny):
        with pytest.raises(UnknownEntityError):
            tiny.connect("server-0", "tor-99")


class TestDomainInference:
    def test_server_tor_link_is_electronic(self, tiny):
        assert tiny.link_of("server-0", "tor-0").domain is Domain.ELECTRONIC

    def test_tor_ops_link_is_optical(self, tiny):
        assert tiny.link_of("tor-0", "ops-0").domain is Domain.OPTICAL

    def test_ops_ops_link_is_optical(self, tiny):
        tiny.connect("ops-0", "ops-1")
        assert tiny.link_of("ops-0", "ops-1").domain is Domain.OPTICAL

    def test_explicit_link_spec_preserved(self, tiny):
        tiny.add_server(ServerSpec(server_id="server-1"))
        custom = LinkSpec(domain=Domain.ELECTRONIC, bandwidth_gbps=40.0)
        tiny.connect("server-1", "tor-0", link=custom)
        assert tiny.link_of("server-1", "tor-0").bandwidth_gbps == 40.0

    def test_link_of_missing_edge_raises(self, tiny):
        with pytest.raises(UnknownEntityError):
            tiny.link_of("ops-0", "ops-1")


class TestQueries:
    def test_kind_of(self, tiny):
        assert tiny.kind_of("server-0") is NodeKind.SERVER
        assert tiny.kind_of("tor-0") is NodeKind.TOR
        assert tiny.kind_of("ops-0") is NodeKind.OPS

    def test_kind_of_unknown_raises(self, tiny):
        with pytest.raises(UnknownEntityError):
            tiny.kind_of("nonexistent")

    def test_spec_of_returns_dataclass(self, tiny):
        assert tiny.spec_of("server-0").server_id == "server-0"

    def test_servers_sorted(self, tiny):
        tiny.add_server(ServerSpec(server_id="server-1"))
        assert tiny.servers() == ["server-0", "server-1"]

    def test_optoelectronic_routers_filters_compute(self, tiny):
        assert tiny.optoelectronic_routers() == ["ops-1"]

    def test_tors_of_server(self, tiny):
        assert tiny.tors_of_server("server-0") == ["tor-0"]

    def test_tors_of_server_wrong_kind_raises(self, tiny):
        with pytest.raises(TopologyError):
            tiny.tors_of_server("tor-0")

    def test_servers_under(self, tiny):
        assert tiny.servers_under("tor-0") == ["server-0"]

    def test_servers_under_wrong_kind_raises(self, tiny):
        with pytest.raises(TopologyError):
            tiny.servers_under("ops-0")

    def test_ops_of_tor(self, tiny):
        assert tiny.ops_of_tor("tor-0") == ["ops-0", "ops-1"]

    def test_tors_of_ops(self, tiny):
        assert tiny.tors_of_ops("ops-0") == ["tor-0"]

    def test_tors_of_ops_wrong_kind_raises(self, tiny):
        with pytest.raises(TopologyError):
            tiny.tors_of_ops("tor-0")

    def test_has_node(self, tiny):
        assert tiny.has_node("server-0")
        assert not tiny.has_node("server-99")


class TestWeights:
    def test_tor_weight_counts_in_and_out(self, tiny):
        # 1 server + 2 OPS uplinks.
        assert tiny.tor_weight("tor-0") == 3

    def test_ops_weight_is_degree(self, tiny):
        assert tiny.ops_weight("ops-0") == 1
        tiny.connect("ops-0", "ops-1")
        assert tiny.ops_weight("ops-0") == 2

    def test_paper_example_weights(self, paper_dcn):
        # Fig. 4: ToR 1 has four incoming and two outgoing connections.
        weights = {tor: paper_dcn.tor_weight(tor) for tor in paper_dcn.tors()}
        assert weights == {"tor-0": 6, "tor-1": 5, "tor-2": 4, "tor-3": 3}


class TestViews:
    def test_optical_core_contains_only_ops(self, tiny):
        core = tiny.optical_core()
        assert set(core.nodes) == {"ops-0", "ops-1"}

    def test_optical_core_is_a_copy(self, tiny):
        core = tiny.optical_core()
        core.add_node("intruder")
        assert not tiny.has_node("intruder")

    def test_graph_view_is_read_only(self, tiny):
        with pytest.raises(Exception):
            tiny.graph.add_node("intruder")

    def test_summary_counts(self, tiny):
        summary = tiny.summary()
        assert summary["servers"] == 1
        assert summary["tors"] == 1
        assert summary["optical_switches"] == 2
        assert summary["optoelectronic_routers"] == 1
        assert summary["links"] == 3
        assert summary["optical_links"] == 2
        assert summary["electronic_links"] == 1

    def test_edges_yield_linkspecs(self, tiny):
        edges = list(tiny.edges())
        assert len(edges) == 3
        assert all(isinstance(link, LinkSpec) for _, _, link in edges)


class TestParallelLinks:
    """Reconnecting an already-connected pair forms a trunk (a LAG)
    instead of silently overwriting the first link's spec."""

    def test_reconnect_aggregates_bandwidth(self, tiny):
        dcn = tiny
        assert dcn.link_of("tor-0", "ops-0").bandwidth_gbps == 10.0
        dcn.connect(
            "tor-0",
            "ops-0",
            LinkSpec(domain=Domain.OPTICAL, bandwidth_gbps=40.0),
        )
        trunk = dcn.link_of("tor-0", "ops-0")
        assert trunk.bandwidth_gbps == 50.0
        assert trunk.domain is Domain.OPTICAL

    def test_parallel_count_tracked(self, tiny):
        assert tiny.parallel_links("tor-0", "ops-0") == 1
        tiny.connect("tor-0", "ops-0")
        tiny.connect("tor-0", "ops-0")
        assert tiny.parallel_links("tor-0", "ops-0") == 3

    def test_parallel_links_missing_edge_raises(self, tiny):
        with pytest.raises(UnknownEntityError):
            tiny.parallel_links("server-0", "ops-0")

    def test_domain_mismatch_rejected(self, tiny):
        with pytest.raises(TopologyError):
            tiny.connect(
                "tor-0",
                "ops-0",
                LinkSpec(domain=Domain.ELECTRONIC, bandwidth_gbps=10.0),
            )

    def test_trunks_iterates_counts(self, tiny):
        tiny.connect("tor-0", "ops-0")
        by_pair = {
            frozenset((a, b)): (link, count)
            for a, b, link, count in tiny.trunks()
        }
        link, count = by_pair[frozenset(("tor-0", "ops-0"))]
        assert count == 2
        assert link.bandwidth_gbps == 20.0
        _, single = by_pair[frozenset(("server-0", "tor-0"))]
        assert single == 1

    def test_parallel_links_do_not_add_edges(self, tiny):
        before = tiny.summary()["links"]
        tiny.connect("tor-0", "ops-0")
        assert tiny.summary()["links"] == before


class TestAccessorCaching:
    """Memoized accessors must never serve stale adjacency or weights."""

    def test_weights_update_after_late_connect(self, tiny):
        # Warm every cache first.
        assert tiny.tor_weight("tor-0") == 3  # 1 server + 2 OPS uplinks
        assert tiny.ops_weight("ops-0") == 1
        assert tiny.tors_of_server("server-0") == ["tor-0"]
        # A late topology change must invalidate the memo tables.
        tiny.add_server(ServerSpec(server_id="server-1"))
        tiny.connect("server-1", "tor-0")
        assert tiny.tor_weight("tor-0") == 4
        assert tiny.servers_under("tor-0") == ["server-0", "server-1"]

    def test_kind_lists_update_after_late_add(self, tiny):
        assert tiny.servers() == ["server-0"]
        tiny.add_server(ServerSpec(server_id="server-1"))
        assert tiny.servers() == ["server-0", "server-1"]

    def test_attachment_map_updates_after_late_connect(self, tiny):
        assert tiny.server_attachment_map() == {"server-0": ("tor-0",)}
        tiny.add_tor(TorSpec(tor_id="tor-1"))
        tiny.connect("server-0", "tor-1")
        assert tiny.server_attachment_map() == {
            "server-0": ("tor-0", "tor-1")
        }

    def test_parallel_link_merge_invalidates(self, tiny):
        assert tiny.ops_of_tor("tor-0") == ["ops-0", "ops-1"]
        before = tiny.tor_weight("tor-0")
        # Reconnecting an existing pair aggregates a trunk; adjacency is
        # unchanged but the cache must still be dropped safely.
        tiny.connect("tor-0", "ops-0")
        assert tiny.ops_of_tor("tor-0") == ["ops-0", "ops-1"]
        assert tiny.tor_weight("tor-0") == before

    def test_set_caching_returns_previous_state(self, tiny):
        assert tiny.caching_enabled
        assert tiny.set_caching(False) is True
        assert not tiny.caching_enabled
        assert tiny.set_caching(True) is False
        assert tiny.caching_enabled

    def test_disabled_caching_matches_enabled(self, tiny):
        cached = (
            tiny.tors_of_server("server-0"),
            tiny.ops_of_tor("tor-0"),
            tiny.tor_weight("tor-0"),
            tiny.server_attachment_map(),
        )
        tiny.set_caching(False)
        uncached = (
            tiny.tors_of_server("server-0"),
            tiny.ops_of_tor("tor-0"),
            tiny.tor_weight("tor-0"),
            tiny.server_attachment_map(),
        )
        assert cached == uncached

    def test_cached_accessors_validate_kind_and_existence(self, tiny):
        tiny.tors_of_server("server-0")  # warm
        with pytest.raises(TopologyError):
            tiny.tors_of_server("tor-0")
        with pytest.raises(UnknownEntityError):
            tiny.tors_of_server("server-404")

    def test_returned_lists_are_fresh_copies(self, tiny):
        first = tiny.ops_of_tor("tor-0")
        first.append("ops-tampered")
        assert tiny.ops_of_tor("tor-0") == ["ops-0", "ops-1"]
