"""Tests for topology serialization."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.serialization import (
    load_topology,
    save_topology,
    topology_from_json,
    topology_to_json,
)


def _same_fabric(left, right) -> bool:
    if left.summary() != right.summary():
        return False
    if set(left.graph.nodes) != set(right.graph.nodes):
        return False
    left_edges = {
        (tuple(sorted((a, b))), link.domain, link.bandwidth_gbps)
        for a, b, link in left.edges()
    }
    right_edges = {
        (tuple(sorted((a, b))), link.domain, link.bandwidth_gbps)
        for a, b, link in right.edges()
    }
    if left_edges != right_edges:
        return False
    return all(
        left.spec_of(node) == right.spec_of(node)
        for node in left.graph.nodes
    )


class TestRoundTrip:
    def test_paper_example(self, paper_dcn):
        restored = topology_from_json(topology_to_json(paper_dcn))
        assert _same_fabric(paper_dcn, restored)

    def test_generated_fabric(self, medium_fabric):
        restored = topology_from_json(topology_to_json(medium_fabric))
        assert _same_fabric(medium_fabric, restored)

    def test_file_round_trip(self, small_fabric, tmp_path):
        path = save_topology(small_fabric, tmp_path / "fabric.json")
        assert _same_fabric(small_fabric, load_topology(path))

    def test_restored_fabric_is_usable(self, paper_dcn):
        from repro.core.abstraction_layer import AlConstructor

        restored = topology_from_json(topology_to_json(paper_dcn))
        layer = AlConstructor(restored).construct_for_servers(
            "cluster-x", restored.servers()
        )
        assert sorted(layer.ops_ids) == ["ops-0", "ops-2"]

    def test_name_preserved(self, paper_dcn):
        restored = topology_from_json(topology_to_json(paper_dcn))
        assert restored.name == paper_dcn.name


class TestErrors:
    def test_malformed_json(self):
        with pytest.raises(TopologyError):
            topology_from_json("not json")

    def test_wrong_version(self):
        with pytest.raises(TopologyError):
            topology_from_json('{"version": 99}')

    def test_non_object(self):
        with pytest.raises(TopologyError):
            topology_from_json("[]")

    def test_missing_fields(self):
        with pytest.raises(TopologyError):
            topology_from_json(
                '{"version": 1, "servers": [{"server_id": "server-0"}]}'
            )

    def test_invalid_link_domain(self, paper_dcn):
        import json

        payload = json.loads(topology_to_json(paper_dcn))
        payload["links"][0]["domain"] = "quantum"
        with pytest.raises(TopologyError):
            topology_from_json(json.dumps(payload))
