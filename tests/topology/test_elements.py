"""Tests for topology value types (ResourceVector, specs, links)."""

import pytest

from repro.topology.elements import (
    DEFAULT_OPTOELECTRONIC_CAPACITY,
    DEFAULT_SERVER_CAPACITY,
    Domain,
    LinkSpec,
    OpticalSwitchSpec,
    ResourceVector,
    ServerSpec,
    TorSpec,
)


class TestResourceVector:
    def test_default_is_zero(self):
        assert ResourceVector().is_zero()

    def test_zero_factory(self):
        assert ResourceVector.zero() == ResourceVector(0, 0, 0)

    def test_addition(self):
        total = ResourceVector(1, 2, 3) + ResourceVector(4, 5, 6)
        assert total == ResourceVector(5, 7, 9)

    def test_subtraction(self):
        left = ResourceVector(4, 5, 6) - ResourceVector(1, 2, 3)
        assert left == ResourceVector(3, 3, 3)

    def test_subtraction_below_zero_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1, 1) - ResourceVector(2, 0, 0)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(cpu_cores=-1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(memory_gb=float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(storage_gb=float("inf"))

    def test_scaled(self):
        assert ResourceVector(2, 4, 8).scaled(0.5) == ResourceVector(1, 2, 4)

    def test_scaled_by_zero(self):
        assert ResourceVector(2, 4, 8).scaled(0).is_zero()

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1, 1).scaled(-1)

    def test_fits_within_true(self):
        assert ResourceVector(1, 1, 1).fits_within(ResourceVector(2, 2, 2))

    def test_fits_within_exact_boundary(self):
        assert ResourceVector(2, 2, 2).fits_within(ResourceVector(2, 2, 2))

    def test_fits_within_false_on_any_axis(self):
        capacity = ResourceVector(2, 2, 2)
        assert not ResourceVector(3, 0, 0).fits_within(capacity)
        assert not ResourceVector(0, 3, 0).fits_within(capacity)
        assert not ResourceVector(0, 0, 3).fits_within(capacity)

    def test_total(self):
        vectors = [ResourceVector(1, 0, 0), ResourceVector(0, 2, 0)]
        assert ResourceVector.total(vectors) == ResourceVector(1, 2, 0)

    def test_total_of_empty(self):
        assert ResourceVector.total([]).is_zero()

    def test_immutable(self):
        vector = ResourceVector(1, 1, 1)
        with pytest.raises(AttributeError):
            vector.cpu_cores = 5


class TestDomain:
    def test_other_flips(self):
        assert Domain.ELECTRONIC.other is Domain.OPTICAL
        assert Domain.OPTICAL.other is Domain.ELECTRONIC

    def test_str(self):
        assert str(Domain.OPTICAL) == "optical"


class TestSpecs:
    def test_server_spec_default_capacity(self):
        spec = ServerSpec(server_id="server-0")
        assert spec.capacity.cpu_cores > 0

    def test_tor_spec_defaults(self):
        spec = TorSpec(tor_id="tor-0")
        assert spec.port_count == 48

    def test_plain_ops_is_not_optoelectronic(self):
        spec = OpticalSwitchSpec(ops_id="ops-0")
        assert not spec.is_optoelectronic

    def test_ops_with_compute_is_optoelectronic(self):
        spec = OpticalSwitchSpec(
            ops_id="ops-0", compute=DEFAULT_OPTOELECTRONIC_CAPACITY
        )
        assert spec.is_optoelectronic

    def test_optoelectronic_default_below_server(self):
        # The paper: optoelectronic routers have *limited* capability.
        assert DEFAULT_OPTOELECTRONIC_CAPACITY.fits_within(
            DEFAULT_SERVER_CAPACITY
        )
        assert (
            DEFAULT_OPTOELECTRONIC_CAPACITY.cpu_cores
            < DEFAULT_SERVER_CAPACITY.cpu_cores
        )


class TestLinkSpec:
    def test_default_bandwidth(self):
        link = LinkSpec(domain=Domain.OPTICAL)
        assert link.bandwidth_gbps == 10.0

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(domain=Domain.ELECTRONIC, bandwidth_gbps=0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(domain=Domain.ELECTRONIC, bandwidth_gbps=-5)
