"""Tests for topology structural validation."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.datacenter import DataCenterNetwork
from repro.topology.elements import OpticalSwitchSpec, ServerSpec, TorSpec
from repro.topology.validation import validate_topology


def _valid_fabric() -> DataCenterNetwork:
    dcn = DataCenterNetwork()
    dcn.add_server(ServerSpec(server_id="server-0"))
    dcn.add_tor(TorSpec(tor_id="tor-0"))
    dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-0"))
    dcn.connect("server-0", "tor-0")
    dcn.connect("tor-0", "ops-0")
    return dcn


class TestValidFabric:
    def test_valid_fabric_passes(self):
        report = validate_topology(_valid_fabric())
        assert report.ok
        assert report.problems == ()

    def test_raise_if_invalid_noop_when_valid(self):
        validate_topology(_valid_fabric()).raise_if_invalid()

    def test_generated_fabrics_pass(self, small_fabric, medium_fabric):
        assert validate_topology(small_fabric).ok
        assert validate_topology(medium_fabric).ok


class TestInvalidFabrics:
    def test_orphan_server_detected(self):
        dcn = _valid_fabric()
        dcn.add_server(ServerSpec(server_id="server-1"))
        report = validate_topology(dcn)
        assert not report.ok
        assert any("server-1" in problem for problem in report.problems)

    def test_tor_without_servers_detected(self):
        dcn = _valid_fabric()
        dcn.add_tor(TorSpec(tor_id="tor-1"))
        dcn.connect("tor-1", "ops-0")
        report = validate_topology(dcn)
        assert any("tor-1 has no servers" in p for p in report.problems)

    def test_tor_without_uplink_detected(self):
        dcn = DataCenterNetwork()
        dcn.add_server(ServerSpec(server_id="server-0"))
        dcn.add_tor(TorSpec(tor_id="tor-0"))
        dcn.connect("server-0", "tor-0")
        report = validate_topology(dcn)
        assert any("no OPS uplink" in p for p in report.problems)

    def test_isolated_ops_detected(self):
        dcn = _valid_fabric()
        dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-9"))
        report = validate_topology(dcn)
        assert any("ops-9 is isolated" in p for p in report.problems)

    def test_disconnected_fabric_detected(self):
        dcn = _valid_fabric()
        # Second island.
        dcn.add_server(ServerSpec(server_id="server-1"))
        dcn.add_tor(TorSpec(tor_id="tor-1"))
        dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-1"))
        dcn.connect("server-1", "tor-1")
        dcn.connect("tor-1", "ops-1")
        report = validate_topology(dcn)
        assert any("disconnected" in p for p in report.problems)

    def test_raise_if_invalid_raises(self):
        dcn = _valid_fabric()
        dcn.add_server(ServerSpec(server_id="server-1"))
        with pytest.raises(TopologyError, match="invalid topology"):
            validate_topology(dcn).raise_if_invalid()

    def test_multiple_problems_accumulate(self):
        dcn = _valid_fabric()
        dcn.add_server(ServerSpec(server_id="server-1"))
        dcn.add_optical_switch(OpticalSwitchSpec(ops_id="ops-9"))
        report = validate_topology(dcn)
        assert len(report.problems) >= 2
