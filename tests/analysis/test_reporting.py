"""Tests for table/series rendering."""

from repro.analysis.reporting import format_value, render_series, render_table


class TestFormatValue:
    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_bool_not_treated_as_int(self):
        assert format_value(True) == "True"

    def test_float_four_significant_digits(self):
        assert format_value(3.14159) == "3.142"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_large_float_scientific(self):
        assert "e" in format_value(1.5e7)

    def test_tiny_float_scientific(self):
        assert "e" in format_value(1.5e-5)

    def test_string_passthrough(self):
        assert format_value("web") == "web"


class TestRenderTable:
    def test_alignment(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 22},
        ]
        text = render_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_title(self):
        text = render_table([{"x": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_empty_rows_with_title(self):
        text = render_table([], title="Empty")
        assert text.startswith("Empty")

    def test_column_order_from_first_row(self):
        rows = [{"b": 1, "a": 2}]
        header = render_table(rows).splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_explicit_columns(self):
        rows = [{"b": 1, "a": 2}]
        header = render_table(rows, columns=["a", "b"]).splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = render_table(rows)
        assert text  # no KeyError; second row just lacks the cell


class TestRenderSeries:
    def test_two_columns(self):
        text = render_series(
            [(1, 10), (2, 20)], x_label="size", y_label="time"
        )
        lines = text.splitlines()
        assert lines[0].startswith("size")
        assert "time" in lines[0]
        assert len(lines) == 4
