"""Tests for topology metrics."""

import pytest

from repro.analysis.topology_metrics import (
    bisection_bandwidth_estimate,
    core_layout_comparison,
    fabric_metrics,
    mean_tor_oversubscription,
)
from repro.exceptions import TopologyError
from repro.topology.builder import TopologyBuilder
from repro.topology.elements import LinkSpec, Domain


class TestFabricMetrics:
    def test_counts_match_summary(self, small_fabric):
        metrics = fabric_metrics(small_fabric)
        summary = small_fabric.summary()
        assert metrics["servers"] == summary["servers"]
        assert metrics["switches"] == (
            summary["tors"] + summary["optical_switches"]
        )
        assert metrics["links"] == summary["links"]

    def test_diameter_at_least_mean_path(self, small_fabric):
        metrics = fabric_metrics(small_fabric)
        assert metrics["diameter"] >= metrics["mean_server_path"]
        assert metrics["mean_server_path"] >= 1.0

    def test_switches_per_server(self, small_fabric):
        metrics = fabric_metrics(small_fabric)
        assert metrics["switches_per_server"] == pytest.approx(
            metrics["switches"] / metrics["servers"]
        )

    def test_deterministic(self, small_fabric):
        assert fabric_metrics(small_fabric, seed=5) == fabric_metrics(
            small_fabric, seed=5
        )

    def test_empty_fabric_rejected(self):
        from repro.topology.datacenter import DataCenterNetwork

        with pytest.raises(TopologyError):
            fabric_metrics(DataCenterNetwork())


class TestOversubscription:
    def test_known_ratio(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(1)
        # 4 servers x 10 Gbps down, 1 uplink x 10 Gbps: ratio 4.
        builder.add_rack(servers=4, uplinks=core)
        dcn = builder.build()
        assert mean_tor_oversubscription(dcn) == pytest.approx(4.0)

    def test_one_to_one(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(2)
        builder.add_rack(servers=2, uplinks=core)
        dcn = builder.build()
        assert mean_tor_oversubscription(dcn) == pytest.approx(1.0)


class TestBisection:
    def test_two_rack_fabric_cut_is_core_links(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(1)
        builder.add_rack(servers=2, uplinks=core)
        builder.add_rack(servers=2, uplinks=core)
        dcn = builder.build()
        # Any even split of the two racks cuts exactly one ToR uplink
        # (10 Gbps default).
        assert bisection_bandwidth_estimate(dcn) == pytest.approx(10.0)

    def test_richer_core_raises_bisection(self, small_fabric):
        from repro.topology.generators import build_alvc_fabric

        thin = build_alvc_fabric(
            n_racks=4, servers_per_rack=4, n_ops=4, tor_uplinks=1, seed=3
        )
        fat = build_alvc_fabric(
            n_racks=4, servers_per_rack=4, n_ops=4, tor_uplinks=4, seed=3
        )
        assert bisection_bandwidth_estimate(
            fat
        ) >= bisection_bandwidth_estimate(thin)

    def test_single_rack(self):
        builder = TopologyBuilder()
        core = builder.add_optical_core(1)
        builder.add_rack(servers=3, uplinks=core)
        dcn = builder.build()
        assert bisection_bandwidth_estimate(dcn) == pytest.approx(30.0)


class TestCoreLayoutComparison:
    def test_row_per_layout(self):
        rows = core_layout_comparison(
            ("none", "ring"), n_racks=4, servers_per_rack=2, n_ops=4
        )
        assert [row["core_layout"] for row in rows] == ["none", "ring"]

    def test_interconnect_shrinks_diameter(self):
        rows = core_layout_comparison(
            ("none", "full_mesh"),
            n_racks=8,
            servers_per_rack=2,
            n_ops=8,
        )
        by_layout = {row["core_layout"]: row for row in rows}
        assert (
            by_layout["full_mesh"]["diameter"]
            <= by_layout["none"]["diameter"]
        )
        assert by_layout["full_mesh"]["links"] > by_layout["none"]["links"]
