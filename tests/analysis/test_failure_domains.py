"""Tests for blast-radius analysis."""

import pytest

from repro.analysis.failure_domains import (
    blast_radius_of,
    failure_domain_report,
    worst_case_blast_radius,
)
from repro.core.cluster import ClusterManager


@pytest.fixture
def clustered(populated_inventory):
    manager = ClusterManager(populated_inventory)
    for service in ("web", "map-reduce", "sns"):
        manager.create_cluster(service)
    return manager


class TestBlastRadius:
    def test_owned_switch_affects_exactly_one(self, clustered):
        cluster = clustered.cluster_of_service("web")
        ops = sorted(cluster.al_switches)[0]
        radius = blast_radius_of(clustered, ops)
        assert radius.alvc_clusters_affected == 1
        assert radius.affected_cluster == "cluster-web"
        assert radius.flat_clusters_affected == 3

    def test_free_switch_affects_none(self, clustered):
        free = sorted(clustered.free_ops())
        assert free, "fixture expects unassigned switches"
        radius = blast_radius_of(clustered, free[0])
        assert radius.alvc_clusters_affected == 0
        assert radius.affected_cluster is None

    def test_isolation_gain(self, clustered):
        cluster = clustered.cluster_of_service("sns")
        ops = sorted(cluster.al_switches)[0]
        radius = blast_radius_of(clustered, ops)
        assert radius.isolation_gain == 2  # 3 flat - 1 alvc


class TestReport:
    def test_row_per_switch(self, clustered):
        rows = failure_domain_report(clustered)
        network = clustered.inventory.network
        assert len(rows) == len(network.optical_switches())

    def test_disjointness_invariant(self, clustered):
        rows = failure_domain_report(clustered)
        # The architectural guarantee: no switch failure touches more
        # than one cluster.
        assert all(row["alvc_affected"] <= 1 for row in rows)

    def test_owned_count_matches_al_sizes(self, clustered):
        rows = failure_domain_report(clustered)
        owned = sum(1 for row in rows if row["owner"] != "(free)")
        total_al = sum(
            len(cluster.al_switches) for cluster in clustered.clusters()
        )
        assert owned == total_al


class TestWorstCase:
    def test_worst_case_bounded_by_one(self, clustered):
        worst = worst_case_blast_radius(clustered)
        assert worst.alvc_clusters_affected == 1
        assert worst.flat_clusters_affected == 3

    def test_no_clusters_no_impact(self, populated_inventory):
        manager = ClusterManager(populated_inventory)
        worst = worst_case_blast_radius(manager)
        assert worst.alvc_clusters_affected == 0
        assert worst.flat_clusters_affected == 0


class TestWorstCaseOverlappingClusters:
    """Clusters may overlap at the ToR layer (shared racks) — the blast
    radius bound must come from OPS disjointness alone."""

    @pytest.fixture
    def overlapping(self, populated_inventory):
        # Round-robin placement interleaves services across the same racks,
        # so the resulting ALs share ToRs while their OPS sets stay
        # disjoint by construction.
        from repro.virtualization.machines import MachineInventory
        from repro.virtualization.services import ServiceCatalog
        from repro.virtualization.vm_placement import (
            PlacementStrategy,
            VmPlacementEngine,
        )

        inventory = MachineInventory(populated_inventory.network)
        catalog = ServiceCatalog.standard()
        engine = VmPlacementEngine(
            inventory, strategy=PlacementStrategy.ROUND_ROBIN, seed=3
        )
        for service in ("web", "map-reduce", "sns"):
            for _ in range(6):
                engine.place(inventory.create_vm(catalog.get(service)))
        manager = ClusterManager(inventory)
        for service in ("web", "map-reduce", "sns"):
            manager.create_cluster(service)
        return manager

    def test_fixture_actually_overlaps(self, overlapping):
        clusters = overlapping.clusters()
        shared_tors = any(
            first.tor_switches & second.tor_switches
            for index, first in enumerate(clusters)
            for second in clusters[index + 1 :]
        )
        assert shared_tors, "expected ToR-level overlap between clusters"

    def test_ops_stay_disjoint_despite_tor_overlap(self, overlapping):
        clusters = overlapping.clusters()
        for index, first in enumerate(clusters):
            for second in clusters[index + 1 :]:
                assert not (first.al_switches & second.al_switches)

    def test_worst_case_still_one_cluster(self, overlapping):
        worst = worst_case_blast_radius(overlapping)
        assert worst.alvc_clusters_affected == 1
        assert worst.affected_cluster is not None
        assert worst.flat_clusters_affected == 3
        assert worst.isolation_gain == 2

    def test_worst_case_tiebreak_is_deterministic(self, overlapping):
        assert worst_case_blast_radius(
            overlapping
        ) == worst_case_blast_radius(overlapping)
