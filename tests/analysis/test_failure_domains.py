"""Tests for blast-radius analysis."""

import pytest

from repro.analysis.failure_domains import (
    blast_radius_of,
    failure_domain_report,
    worst_case_blast_radius,
)
from repro.core.cluster import ClusterManager


@pytest.fixture
def clustered(populated_inventory):
    manager = ClusterManager(populated_inventory)
    for service in ("web", "map-reduce", "sns"):
        manager.create_cluster(service)
    return manager


class TestBlastRadius:
    def test_owned_switch_affects_exactly_one(self, clustered):
        cluster = clustered.cluster_of_service("web")
        ops = sorted(cluster.al_switches)[0]
        radius = blast_radius_of(clustered, ops)
        assert radius.alvc_clusters_affected == 1
        assert radius.affected_cluster == "cluster-web"
        assert radius.flat_clusters_affected == 3

    def test_free_switch_affects_none(self, clustered):
        free = sorted(clustered.free_ops())
        assert free, "fixture expects unassigned switches"
        radius = blast_radius_of(clustered, free[0])
        assert radius.alvc_clusters_affected == 0
        assert radius.affected_cluster is None

    def test_isolation_gain(self, clustered):
        cluster = clustered.cluster_of_service("sns")
        ops = sorted(cluster.al_switches)[0]
        radius = blast_radius_of(clustered, ops)
        assert radius.isolation_gain == 2  # 3 flat - 1 alvc


class TestReport:
    def test_row_per_switch(self, clustered):
        rows = failure_domain_report(clustered)
        network = clustered.inventory.network
        assert len(rows) == len(network.optical_switches())

    def test_disjointness_invariant(self, clustered):
        rows = failure_domain_report(clustered)
        # The architectural guarantee: no switch failure touches more
        # than one cluster.
        assert all(row["alvc_affected"] <= 1 for row in rows)

    def test_owned_count_matches_al_sizes(self, clustered):
        rows = failure_domain_report(clustered)
        owned = sum(1 for row in rows if row["owner"] != "(free)")
        total_al = sum(
            len(cluster.al_switches) for cluster in clustered.clusters()
        )
        assert owned == total_al


class TestWorstCase:
    def test_worst_case_bounded_by_one(self, clustered):
        worst = worst_case_blast_radius(clustered)
        assert worst.alvc_clusters_affected == 1
        assert worst.flat_clusters_affected == 3

    def test_no_clusters_no_impact(self, populated_inventory):
        manager = ClusterManager(populated_inventory)
        worst = worst_case_blast_radius(manager)
        assert worst.alvc_clusters_affected == 0
        assert worst.flat_clusters_affected == 0
