"""Tests for the experiment harness (shapes and invariants of E1-E12)."""

import pytest

from repro.analysis import experiments as exp


class TestStandardTestbed:
    def test_vm_counts(self):
        inventory, catalog, services = exp.standard_testbed(
            n_services=2, vms_per_service=5
        )
        assert len(services) == 2
        for service in services:
            assert len(inventory.vms_of_service(service)) == 5
        assert all(
            inventory.is_placed(vm.vm_id) for vm in inventory.all_vms()
        )


class TestE1Clustering:
    def test_structure(self):
        result = exp.experiment_fig1_clustering(n_flows=100)
        assert {row["architecture"] for row in result["traffic"]} == {
            "al-vc",
            "flat",
        }
        assert len(result["census"]) == 3

    def test_alvc_confines_more(self):
        result = exp.experiment_fig1_clustering(n_flows=150)
        by_arch = {
            row["architecture"]: row for row in result["traffic"]
        }
        assert (
            by_arch["al-vc"]["al_confined_flows"]
            >= by_arch["flat"]["al_confined_flows"]
        )


class TestE2Topology:
    def test_pairs_of_rows_per_scale(self):
        rows = exp.experiment_fig2_topology(scales=((4, 4, 4),))
        assert len(rows) == 2
        assert rows[0]["fabric"].startswith("alvc")
        assert rows[1]["fabric"].startswith("fat-tree")

    def test_alvc_has_optical_links_baseline_does_not(self):
        rows = exp.experiment_fig2_topology(scales=((4, 4, 4),))
        assert rows[0]["optical_links"] > 0
        assert rows[1]["optical_links"] == 0


class TestE3Clusters:
    def test_disjoint_totals(self):
        rows = exp.experiment_fig3_clusters(n_services=3)
        per_cluster = [row for row in rows if row["cluster"].startswith("cluster")]
        total_row = next(row for row in rows if row["cluster"] == "TOTAL")
        assert total_row["al_size"] == sum(
            row["al_size"] for row in per_cluster
        )


class TestE4Fig4:
    def test_worked_example_matches_paper(self):
        result = exp.experiment_fig4_worked_example()
        assert result["tor_selected"] == ["tor-0", "tor-2"]
        assert result["tor_considered"] == ["tor-0", "tor-1", "tor-2"]
        assert result["tor_weights"]["tor-0"] == 6
        assert result["al"] == ["ops-0", "ops-2"]
        assert result["al_size"] == 2

    def test_strategy_sweep_shape(self):
        rows = exp.experiment_fig4_strategy_sweep(
            scales=((4, 4),), seeds=(0, 1), include_exact=False
        )
        strategies = {row["strategy"] for row in rows}
        assert strategies == {
            "vertex_cover_greedy",
            "marginal_greedy",
            "random",
        }

    def test_greedy_beats_random_on_average(self):
        rows = exp.experiment_fig4_strategy_sweep(
            scales=((8, 8),), seeds=(0, 1, 2, 3), include_exact=False
        )
        by_strategy = {row["strategy"]: row for row in rows}
        assert (
            by_strategy["vertex_cover_greedy"]["mean_al_size"]
            <= by_strategy["random"]["mean_al_size"]
        )


class TestE5NfcPaths:
    def test_three_chains(self):
        rows = exp.experiment_fig5_nfc_paths()
        assert [row["chain"] for row in rows] == ["blue", "black", "green"]
        for row in rows:
            assert row["path_len"] >= 0
            assert row["conversions"] >= 0


class TestE6Orchestration:
    def test_action_census(self):
        rows = exp.experiment_fig6_orchestration()
        metrics = {row["metric"]: row["value"] for row in rows}
        assert metrics["action:provision"] == 3
        assert metrics["action:delete"] == 2
        assert metrics["action:upgrade"] == 1
        assert metrics["live_chains"] == 1


class TestE7Slicing:
    def test_rejection_after_exhaustion(self):
        rows = exp.experiment_fig7_slicing(n_services=7, n_ops=4)
        outcomes = [row["outcome"] for row in rows]
        assert any(outcome.startswith("rejected") for outcome in outcomes)
        # Accepted count never decreases.
        accepted = [row["accepted_total"] for row in rows]
        assert accepted == sorted(accepted)


class TestE8Placement:
    def test_worked_example(self):
        result = exp.experiment_fig8_worked_example()
        assert result["before_conversions"] == 2
        assert result["after_conversions"] == 1
        assert result["saved"] == 1
        assert result["after_optical"] == 2

    def test_sweep_monotone_in_capacity(self):
        rows = exp.experiment_fig8_sweep(
            chain_lengths=(4,),
            capacity_scales=(0.0, 1.0),
            seeds=(0,),
        )
        greedy = {
            row["capacity_scale"]: row
            for row in rows
            if row["algorithm"] == "greedy"
        }
        assert (
            greedy[1.0]["mean_conversions"] <= greedy[0.0]["mean_conversions"]
        )

    def test_optimal_never_worse_than_greedy(self):
        rows = exp.experiment_fig8_sweep(
            chain_lengths=(4, 6),
            capacity_scales=(0.5, 1.0),
            seeds=(0, 1),
        )
        greedy = {
            (row["chain_len"], row["capacity_scale"]): row["mean_conversions"]
            for row in rows
            if row["algorithm"] == "greedy"
        }
        optimal = {
            (row["chain_len"], row["capacity_scale"]): row["mean_conversions"]
            for row in rows
            if row["algorithm"] == "optimal"
        }
        for key, greedy_value in greedy.items():
            assert optimal[key] <= greedy_value + 1e-9

    def test_all_electronic_is_upper_bound(self):
        rows = exp.experiment_fig8_sweep(
            chain_lengths=(4,), capacity_scales=(1.0,), seeds=(0,)
        )
        by_algorithm = {row["algorithm"]: row for row in rows}
        ceiling = by_algorithm["all_electronic"]["mean_conversions"]
        for name, row in by_algorithm.items():
            assert row["mean_conversions"] <= ceiling + 1e-9


class TestE9OptimalityGap:
    def test_gaps_at_least_one(self):
        rows = exp.experiment_e9_optimality_gap(instances=4)
        for row in rows:
            assert row["gap_vs_exact"] >= 1.0 - 1e-9

    def test_greedy_gap_below_random(self):
        rows = exp.experiment_e9_optimality_gap(instances=6)
        gaps = {row["strategy"]: row["gap_vs_exact"] for row in rows}
        assert gaps["vertex_cover_greedy"] <= gaps["random"] + 1e-9


class TestE10UpdateCost:
    def test_alvc_cheaper(self):
        rows = exp.experiment_e10_update_cost(n_events=30)
        total = next(row for row in rows if row["event_kind"] == "ALL")
        assert total["mean_alvc_touched"] < total["mean_flat_touched"]
        assert 0 < total["reduction"] <= 1


class TestE11Scalability:
    def test_rows_per_scale(self):
        rows = exp.experiment_e11_scalability(scales=((4, 8, 4), (8, 8, 8)))
        assert len(rows) == 2
        assert rows[0]["servers"] == 32
        assert all(row["construct_ms"] >= 0 for row in rows)

    def test_al_size_bounded_by_core(self):
        rows = exp.experiment_e11_scalability(scales=((8, 16, 8),))
        assert rows[0]["al_size"] <= rows[0]["ops"]


class TestE12Energy:
    def test_energy_monotone_nonincreasing(self):
        rows = exp.experiment_e12_energy(
            capacity_scales=(0.0, 1.0, 4.0), n_flows=50
        )
        energies = [row["energy_joules"] for row in rows]
        assert energies == sorted(energies, reverse=True)

    def test_zero_capacity_no_saving(self):
        rows = exp.experiment_e12_energy(capacity_scales=(0.0,), n_flows=20)
        assert rows[0]["energy_saving"] == 0.0

    def test_saving_fraction_bounds(self):
        rows = exp.experiment_e12_energy(n_flows=30)
        for row in rows:
            assert 0.0 <= row["energy_saving"] <= 1.0


class TestE13Reconfiguration:
    def test_incremental_never_worse(self):
        rows = exp.experiment_e13_reconfiguration(churn_events=20)
        by_policy = {row["policy"]: row for row in rows}
        assert (
            by_policy["incremental"]["total_touched"]
            <= by_policy["rebuild"]["total_touched"]
        )

    def test_zero_cost_events_counted(self):
        rows = exp.experiment_e13_reconfiguration(churn_events=20)
        incremental = next(
            row for row in rows if row["policy"] == "incremental"
        )
        assert 0 <= incremental["zero_cost_events"] <= incremental["events"]


class TestE14ChainTraffic:
    def test_optical_strictly_cheaper(self):
        rows = exp.experiment_e14_chain_traffic(n_flows=40)
        by_placement = {row["placement"]: row for row in rows}
        optical = by_placement["greedy-optical"]
        electronic = by_placement["all-electronic"]
        assert optical["conversion_cost"] < electronic["conversion_cost"]
        assert optical["energy_joules"] < electronic["energy_joules"]

    def test_processing_cost_independent_of_placement(self):
        rows = exp.experiment_e14_chain_traffic(n_flows=40)
        costs = {row["processing_cost"] for row in rows}
        assert len(costs) == 1


class TestE15FlowCompletion:
    def test_load_monotonicity(self):
        rows = exp.experiment_e15_flow_completion(
            arrival_rates=(10.0, 160.0), n_flows=60
        )
        alvc = {
            row["arrival_rate"]: row["mean_fct"]
            for row in rows
            if row["architecture"] == "al-vc"
        }
        assert alvc[160.0] >= alvc[10.0]

    def test_both_architectures_reported(self):
        rows = exp.experiment_e15_flow_completion(
            arrival_rates=(20.0,), n_flows=40
        )
        assert {row["architecture"] for row in rows} == {"al-vc", "flat"}


class TestE17OperationalMigration:
    def test_consistency(self):
        rows = exp.experiment_e17_operational_migration(n_migrations=10)
        row = rows[0]
        assert row["isolation_violations"] == 0
        assert row["chains_rerouted"] == row["migrations"]
        assert row["mean_switches_touched"] >= 0


class TestE18FailureContinuity:
    def test_conservation(self):
        rows = exp.experiment_e18_failure_continuity(
            n_flows=60, n_failures_sweep=(0, 1)
        )
        for row in rows:
            assert row["completed"] + row["dropped"] == 60

    def test_baseline_clean(self):
        rows = exp.experiment_e18_failure_continuity(
            n_flows=40, n_failures_sweep=(0,)
        )
        assert rows[0]["dropped"] == 0
        assert rows[0]["reroutes"] == 0
