"""Tests for experiment-row export."""

import pytest

from repro.analysis.export import (
    load_rows,
    rows_to_csv,
    rows_to_json,
    save_rows,
)

ROWS = [
    {"strategy": "greedy", "al_size": 3, "gap": 1.15},
    {"strategy": "random", "al_size": 5, "gap": 1.4},
]


class TestCsv:
    def test_header_and_rows(self):
        text = rows_to_csv(ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "strategy,al_size,gap"
        assert lines[1] == "greedy,3,1.15"
        assert len(lines) == 3

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_union_of_columns(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        lines = rows_to_csv(rows).strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"


class TestJson:
    def test_roundtrip_via_loads(self):
        import json

        assert json.loads(rows_to_json(ROWS)) == ROWS

    def test_non_serializable_values_stringified(self):
        rows = [{"value": frozenset({"x"})}]
        text = rows_to_json(rows)
        assert "x" in text


class TestFiles:
    def test_save_and_load_json(self, tmp_path):
        path = save_rows(ROWS, tmp_path / "out.json")
        assert load_rows(path) == ROWS

    def test_save_and_load_csv(self, tmp_path):
        path = save_rows(ROWS, tmp_path / "out.csv")
        loaded = load_rows(path)
        # CSV is typeless: values come back as strings.
        assert loaded[0] == {"strategy": "greedy", "al_size": "3",
                             "gap": "1.15"}

    def test_unsupported_extension_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_rows(ROWS, tmp_path / "out.xlsx")
        with pytest.raises(ValueError):
            load_rows(tmp_path / "out.parquet")

    def test_experiment_rows_export(self, tmp_path):
        from repro.analysis.experiments import experiment_e11_scalability

        rows = experiment_e11_scalability(scales=((4, 8, 4),))
        path = save_rows(rows, tmp_path / "e11.csv")
        assert len(load_rows(path)) == len(rows)


class TestReportGeneration:
    def test_subset_report(self):
        from repro.analysis.report import generate_report

        text = generate_report(include=("e11",))
        assert "e11" in text
        assert "servers" in text
        assert "fig4" not in text

    def test_unknown_id_rejected(self):
        from repro.analysis.report import generate_report

        with pytest.raises(ValueError):
            generate_report(include=("nope",))

    def test_write_report(self, tmp_path):
        from repro.analysis.report import write_report

        target = write_report(tmp_path / "r.md", include=("e16",))
        assert "core_layout" in target.read_text()
