"""Tests for statistics helpers."""

import pytest

from repro.analysis.stats import describe, ratio


class TestDescribe:
    def test_basic(self):
        summary = describe([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_population_std(self):
        summary = describe([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary["std"] == pytest.approx(2.0)

    def test_empty(self):
        summary = describe([])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

    def test_single_value(self):
        summary = describe([5.0])
        assert summary["std"] == 0.0


class TestRatio:
    def test_normal(self):
        assert ratio(1, 2) == 0.5

    def test_zero_denominator(self):
        assert ratio(1, 0) == 0.0
