"""AlvcStack facade: parity with the hand-wired pipeline, telemetry
acceptance (all five provision stages traced), zero-cost disabled mode,
and the normalized-verb deprecation shims."""

import pytest

from repro import AlvcStack
from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.orchestrator import NetworkOrchestrator
from repro.exceptions import UnknownEntityError
from repro.nfv.functions import FunctionCatalog
from repro.observability.runtime import Telemetry
from repro.topology.generators import paper_example_topology
from repro.virtualization.machines import MachineInventory
from repro.virtualization.services import ServiceCatalog
from repro.virtualization.vm_placement import VmPlacementEngine

PROVISION_STAGES = (
    "provision.cluster_lookup",
    "provision.slice_allocation",
    "provision.placement_solve",
    "provision.deploy",
    "provision.route",
)


def _hand_wired_provision(seed: int = 5):
    """The pre-facade six-object dance on the Fig. 4 fixture."""
    dcn = paper_example_topology()
    inventory = MachineInventory(dcn)
    services = ServiceCatalog.standard()
    engine = VmPlacementEngine(inventory, seed=seed)
    for _ in range(4):
        engine.place(inventory.create_vm(services.get("web")))
    orchestrator = NetworkOrchestrator(
        inventory,
        placement_seed=seed,
        telemetry=Telemetry.disabled_instance(),
    )
    orchestrator.cluster_manager.create_cluster("web")
    chain = NetworkFunctionChain.from_names(
        "chain-parity", ("firewall", "nat"), FunctionCatalog.standard()
    )
    return orchestrator.provision_chain(
        ChainRequest(tenant="tenant-0", chain=chain, service="web")
    )


class TestFacadeParity:
    def test_same_outcome_as_hand_wired_pipeline_on_fig4_fixture(self):
        expected = _hand_wired_provision(seed=5)

        stack = AlvcStack.build(
            fabric=paper_example_topology(), seed=5, telemetry=False
        )
        stack.populate("web", vms=4)
        live = stack.provision(
            ("firewall", "nat"),
            service="web",
            tenant="tenant-0",
            chain_id="chain-parity",
        )

        assert live.path == expected.path
        assert live.conversions == expected.conversions
        assert live.cluster.al_switches == expected.cluster.al_switches
        assert live.cluster.tor_switches == expected.cluster.tor_switches
        assert live.placement.optical_count == expected.placement.optical_count
        assert [
            (placed.function.name, placed.host, placed.domain)
            for placed in live.placement.assignments
        ] == [
            (placed.function.name, placed.host, placed.domain)
            for placed in expected.placement.assignments
        ]

    def test_chain_object_and_name_sequence_are_equivalent(self):
        functions = FunctionCatalog.standard()
        chain = NetworkFunctionChain.from_names(
            "chain-x", ("firewall", "nat"), functions
        )
        by_object = AlvcStack.build(seed=2, telemetry=False)
        by_names = AlvcStack.build(seed=2, telemetry=False)
        live_object = by_object.provision(chain, service="web")
        live_names = by_names.provision(
            ("firewall", "nat"), service="web", chain_id="chain-x"
        )
        assert live_object.path == live_names.path
        assert live_object.conversions == live_names.conversions

    def test_provision_bootstraps_cluster_and_vms(self):
        stack = AlvcStack.build(seed=1, telemetry=False, vms_per_service=6)
        live = stack.provision(("nat",), service="web")
        assert len(live.cluster.vm_ids) == 6
        assert stack.inventory.vms_of_service("web")

    def test_plan_never_bootstraps(self):
        stack = AlvcStack.build(seed=1, telemetry=False)
        plan = stack.plan(("nat",), service="web")
        assert not plan.feasible
        assert any("no cluster" in problem for problem in plan.problems)
        with pytest.raises(UnknownEntityError):
            stack.orchestrator.cluster_manager.cluster_of_service("web")

    def test_teardown_all(self):
        stack = AlvcStack.build(seed=1, telemetry=False)
        stack.provision(("nat",), service="web")
        stack.provision(("firewall",), service="sns")
        assert stack.teardown() == 2
        assert stack.chains() == []


class TestTelemetryAcceptance:
    def test_provision_traces_all_five_pipeline_stages(self):
        stack = AlvcStack.build(seed=1, telemetry="json")
        stack.provision(("firewall", "nat"), service="web")
        stats = stack.telemetry.tracer.stats()
        for stage in PROVISION_STAGES:
            assert stage in stats, f"missing stage span {stage}"
            assert stats[stage].count == 1
        assert stats["provision_chain"].count == 1

    def test_acceptance_counters_present(self):
        stack = AlvcStack.build(seed=1, telemetry=True)
        stack.provision(("firewall", "nat"), service="web")
        metrics = stack.telemetry.registry.snapshot()
        assert "alvc_placement_conversions_saved_total" in metrics
        assert "alvc_cover_skips_total" in metrics
        assert "alvc_sdn_rules_installed_total" in metrics

    def test_snapshot_json_round_trip(self):
        import json

        stack = AlvcStack.build(seed=1, telemetry="json")
        stack.provision(("nat",), service="web")
        decoded = json.loads(stack.telemetry.to_json())
        assert set(decoded) == {"metrics", "tracing"}

    def test_disabled_telemetry_allocates_zero_metrics(self):
        stack = AlvcStack.build(seed=1, telemetry=False)
        stack.provision(("firewall", "nat"), service="web")
        stack.teardown()
        telemetry = stack.telemetry
        assert not telemetry.enabled
        assert telemetry.registry.series_count() == 0
        assert telemetry.registry.snapshot() == {}
        assert telemetry.tracer.finished_spans() == []

    def test_disabled_stack_shares_noop_singletons(self):
        stack = AlvcStack.build(seed=1, telemetry="off")
        registry = stack.telemetry.registry
        assert registry.counter("a_total") is registry.counter("b_total")


class TestDeprecationShims:
    def test_orchestrator_delete_chain_warns_and_works(self):
        stack = AlvcStack.build(seed=1, telemetry=False)
        live = stack.provision(("nat",), service="web")
        with pytest.warns(DeprecationWarning, match="teardown_chain"):
            stack.orchestrator.delete_chain(live.chain_id)
        assert stack.chains() == []
        # The action log keeps the paper's lifecycle verb.
        assert ("delete", live.chain_id) in stack.orchestrator.action_log()
