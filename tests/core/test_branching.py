"""Tests for branching (complex processing order) chains."""

import networkx as nx
import pytest

from repro.core.branching import (
    Branch,
    BranchingChain,
    BranchingPlacement,
    BranchingPlacementSolver,
)
from repro.core.placement import PlacementAlgorithm
from repro.exceptions import ChainValidationError
from repro.nfv.functions import FunctionCatalog
from repro.optical.conversion import ConversionModel
from repro.topology.elements import ResourceVector


CATALOG = FunctionCatalog.standard()


def F(name):
    return CATALOG.get(name)


def make_chain():
    """firewall -> LB, then 70% [nat], 30% [dpi, proxy]."""
    return BranchingChain(
        chain_id="chain-b",
        common=(F("firewall"), F("load-balancer")),
        branches=(
            Branch("fast", (F("nat"),), 0.7),
            Branch("deep", (F("dpi"), F("proxy")), 0.3),
        ),
    )


class TestValidation:
    def test_valid_chain(self):
        chain = make_chain()
        assert len(chain.branches) == 2

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ChainValidationError):
            BranchingChain(
                chain_id="x",
                common=(),
                branches=(
                    Branch("a", (F("nat"),), 0.5),
                    Branch("b", (F("nat"),), 0.4),
                ),
            )

    def test_needs_a_branch(self):
        with pytest.raises(ChainValidationError):
            BranchingChain(chain_id="x", common=(F("nat"),), branches=())

    def test_duplicate_branch_names_rejected(self):
        with pytest.raises(ChainValidationError):
            BranchingChain(
                chain_id="x",
                common=(),
                branches=(
                    Branch("a", (F("nat"),), 0.5),
                    Branch("a", (F("dpi"),), 0.5),
                ),
            )

    def test_empty_branch_rejected(self):
        with pytest.raises(ChainValidationError):
            Branch("a", (), 1.0)

    def test_fraction_bounds(self):
        with pytest.raises(ChainValidationError):
            Branch("a", (F("nat"),), 0.0)
        with pytest.raises(ChainValidationError):
            Branch("a", (F("nat"),), 1.5)


class TestLinearPaths:
    def test_linear_path_concatenates(self):
        chain = make_chain()
        deep = chain.linear_path("deep")
        assert deep.function_names == (
            "firewall",
            "load-balancer",
            "dpi",
            "proxy",
        )

    def test_unknown_branch_rejected(self):
        with pytest.raises(ChainValidationError):
            make_chain().linear_path("nope")


class TestForwardingGraph:
    def test_dag_with_split(self):
        graph = make_chain().forwarding_graph()
        assert nx.is_directed_acyclic_graph(graph)
        assert graph.out_degree("split") == 2
        assert graph.in_degree("egress") == 2

    def test_prefix_precedes_split(self):
        graph = make_chain().forwarding_graph()
        assert nx.has_path(graph, "ingress", "split")
        assert nx.has_path(graph, "split", "egress")

    def test_immediate_branching(self):
        chain = BranchingChain(
            chain_id="x",
            common=(),
            branches=(Branch("only", (F("nat"),), 1.0),),
        )
        graph = chain.forwarding_graph()
        assert graph.has_edge("ingress", "split")


class TestPlacement:
    def _pool(self, cpu=4.0):
        return {
            "ops-0": ResourceVector(cpu, 16, 64),
            "ops-1": ResourceVector(cpu, 16, 64),
        }

    def test_full_capacity_zero_conversions_on_light_chain(self):
        chain = BranchingChain(
            chain_id="x",
            common=(F("firewall"),),
            branches=(
                Branch("a", (F("nat"),), 0.6),
                Branch("b", (F("load-balancer"),), 0.4),
            ),
        )
        placement = BranchingPlacementSolver(self._pool()).solve(chain)
        assert placement.expected_conversions() == 0.0
        assert placement.optical_count() == 3

    def test_expected_conversions_weighting(self):
        # DPI never fits: the deep branch pays conversions per its share.
        chain = make_chain()
        placement = BranchingPlacementSolver(self._pool()).solve(chain)
        # common: 0 conversions; fast: 0; deep: 1 (dpi electronic, proxy
        # optical).
        assert placement.expected_conversions() == pytest.approx(0.3)

    def test_no_capacity_everything_electronic(self):
        chain = make_chain()
        placement = BranchingPlacementSolver({}).solve(chain)
        # common 2 + 0.7*1 + 0.3*2 = 3.3
        assert placement.expected_conversions() == pytest.approx(3.3)
        assert placement.optical_count() == 0

    def test_branches_share_capacity(self):
        # One router fitting exactly one NAT: the higher-traffic branch
        # gets it.
        chain = BranchingChain(
            chain_id="x",
            common=(),
            branches=(
                Branch("big", (F("nat"),), 0.8),
                Branch("small", (F("nat"),), 0.2),
            ),
        )
        capacity = {"ops-0": ResourceVector(0.5, 1, 2)}
        placement = BranchingPlacementSolver(capacity).solve(chain)
        assert placement.branch_placements["big"].optical_count == 1
        assert placement.branch_placements["small"].optical_count == 0

    def test_expected_cost_linear_in_flow(self):
        chain = make_chain()
        placement = BranchingPlacementSolver({}).solve(chain)
        model = ConversionModel(cost_per_gb=1.0)
        assert placement.expected_cost(model, 2e9) == pytest.approx(
            2 * placement.expected_cost(model, 1e9)
        )

    def test_all_electronic_algorithm(self):
        chain = make_chain()
        placement = BranchingPlacementSolver(self._pool()).solve(
            chain, PlacementAlgorithm.ALL_ELECTRONIC
        )
        assert placement.optical_count() == 0

    def test_empty_common_prefix(self):
        chain = BranchingChain(
            chain_id="x",
            common=(),
            branches=(Branch("only", (F("nat"),), 1.0),),
        )
        placement = BranchingPlacementSolver(self._pool()).solve(chain)
        assert placement.common_placement is None
        assert placement.expected_conversions() == 0.0
