"""Bitset-vs-set cover kernel parity and kernel-selection controls.

The bitset kernels must be an *implementation detail*: every public
cover function returns a bit-for-bit identical :class:`CoverResult`
(selection, full decision trace, universe) whichever kernel runs, and
infeasible instances raise the same :class:`CoverInfeasibleError` with
the same ``uncovered`` set.  The parity suite below generates several
hundred randomized instances across universe sizes straddling
:data:`~repro.core.algorithms.BITSET_KERNEL_THRESHOLD`.
"""

import random

import pytest

from repro.core import algorithms
from repro.core.algorithms import (
    BITSET_KERNEL_THRESHOLD,
    greedy_marginal_cover,
    greedy_max_weight_cover,
    natural_sort_key,
    random_cover,
    set_default_kernel,
    use_kernel,
)
from repro.exceptions import CoverInfeasibleError, ValidationError


def _random_instance(rng: random.Random, universe_size: int):
    """One feasible random cover instance (universe, candidates, weights)."""
    universe = frozenset(f"m-{i}" for i in range(universe_size))
    n_candidates = rng.randint(2, max(3, universe_size // 2))
    members = list(universe)
    candidates = {}
    for index in range(n_candidates):
        size = rng.randint(1, max(1, universe_size // 2))
        candidates[f"tor-{index}"] = frozenset(rng.sample(members, size))
    # Guarantee feasibility: one candidate sweeps up the leftovers.
    covered = frozenset().union(*candidates.values())
    leftovers = universe - covered
    if leftovers:
        victim = f"tor-{rng.randrange(n_candidates)}"
        candidates[victim] = candidates[victim] | leftovers
    weights = {name: rng.randint(1, 12) for name in candidates}
    return universe, candidates, weights


#: (universe size, instances at that size) — sizes straddle the auto
#: threshold so both sides of the heuristic are exercised.
_GRID = ((6, 30), (20, 30), (63, 10), (64, 10), (96, 20), (160, 10))


class TestKernelParity:
    """~330 generated instances x 3 algorithms, set vs bitset."""

    @pytest.mark.parametrize("universe_size,count", _GRID)
    def test_greedy_max_weight_parity(self, universe_size, count):
        rng = random.Random(universe_size)
        for _ in range(count):
            universe, candidates, weights = _random_instance(
                rng, universe_size
            )
            reference = greedy_max_weight_cover(
                universe, candidates, weights, kernel="set"
            )
            bitset = greedy_max_weight_cover(
                universe, candidates, weights, kernel="bitset"
            )
            assert bitset == reference

    @pytest.mark.parametrize("universe_size,count", _GRID)
    def test_greedy_marginal_parity(self, universe_size, count):
        rng = random.Random(1000 + universe_size)
        for _ in range(count):
            universe, candidates, _ = _random_instance(rng, universe_size)
            reference = greedy_marginal_cover(
                universe, candidates, kernel="set"
            )
            bitset = greedy_marginal_cover(
                universe, candidates, kernel="bitset"
            )
            assert bitset == reference

    @pytest.mark.parametrize("universe_size,count", _GRID)
    def test_random_cover_parity(self, universe_size, count):
        rng = random.Random(2000 + universe_size)
        for trial in range(count):
            universe, candidates, _ = _random_instance(rng, universe_size)
            reference = random_cover(
                universe, candidates, random.Random(trial), kernel="set"
            )
            bitset = random_cover(
                universe, candidates, random.Random(trial), kernel="bitset"
            )
            assert bitset == reference

    def test_infeasible_parity(self):
        rng = random.Random(7)
        for _ in range(30):
            universe, candidates, weights = _random_instance(rng, 24)
            universe = universe | frozenset({"ghost-1", "ghost-2"})
            errors = {}
            for kernel in ("set", "bitset"):
                with pytest.raises(CoverInfeasibleError) as info:
                    greedy_max_weight_cover(
                        universe, candidates, weights, kernel=kernel
                    )
                errors[kernel] = info.value.uncovered
            assert errors["set"] == errors["bitset"]
            assert {"ghost-1", "ghost-2"} <= errors["bitset"]

    def test_marginal_exhaustion_parity(self):
        # Feasibility can also fail mid-run semantics-wise: candidates
        # exist but none add new elements.  Both kernels must report the
        # same uncovered remainder up front.
        universe = frozenset(f"m-{i}" for i in range(70))
        candidates = {
            "tor-0": frozenset({"m-0", "m-1"}),
            "tor-1": frozenset({"m-1", "m-2"}),
        }
        uncovered = {}
        for kernel in ("set", "bitset"):
            with pytest.raises(CoverInfeasibleError) as info:
                greedy_marginal_cover(universe, candidates, kernel=kernel)
            uncovered[kernel] = info.value.uncovered
        assert uncovered["set"] == uncovered["bitset"]
        assert uncovered["set"] == universe - frozenset(
            {"m-0", "m-1", "m-2"}
        )

    @pytest.mark.parametrize(
        "cover",
        [
            lambda u, c, kernel: greedy_max_weight_cover(u, c, {}, kernel=kernel),
            lambda u, c, kernel: greedy_marginal_cover(u, c, kernel=kernel),
            lambda u, c, kernel: random_cover(
                u, c, random.Random(0), kernel=kernel
            ),
        ],
        ids=["max_weight", "marginal", "random"],
    )
    def test_empty_candidates_empty_universe_parity(self, cover):
        # Degenerate regression: with no candidates at all, the set
        # kernel used to return an empty cover while the bitset kernel
        # diverged.  Both must now return the identical empty,
        # feasibility-checked result.
        results = {
            kernel: cover(frozenset(), {}, kernel) for kernel in ("set", "bitset")
        }
        assert results["set"] == results["bitset"]
        assert results["set"].selected == ()
        assert results["set"].steps == ()
        assert results["set"].universe == frozenset()

    @pytest.mark.parametrize(
        "cover",
        [
            lambda u, c, kernel: greedy_max_weight_cover(u, c, {}, kernel=kernel),
            lambda u, c, kernel: greedy_marginal_cover(u, c, kernel=kernel),
            lambda u, c, kernel: random_cover(
                u, c, random.Random(0), kernel=kernel
            ),
        ],
        ids=["max_weight", "marginal", "random"],
    )
    def test_empty_candidates_nonempty_universe_parity(self, cover):
        universe = frozenset({"m-0", "m-1"})
        uncovered = {}
        for kernel in ("set", "bitset"):
            with pytest.raises(CoverInfeasibleError) as info:
                cover(universe, {}, kernel)
            uncovered[kernel] = info.value.uncovered
        assert uncovered["set"] == uncovered["bitset"] == universe

    def test_empty_candidates_rng_stream_untouched(self):
        # The degenerate guard must short-circuit *before* the random
        # shuffle so it never consumes randomness (rng-stream parity
        # with callers that share one Random across covers).
        rng = random.Random(42)
        random_cover(frozenset(), {}, rng)
        assert rng.random() == random.Random(42).random()


class TestInfeasibilityReporting:
    """The interning pass doubles as the feasibility check: the error
    must still name the *exact* uncovered set, not just "infeasible"."""

    def test_bitset_reports_exact_uncovered_set(self):
        universe = frozenset(f"m-{i}" for i in range(10))
        candidates = {
            "tor-0": frozenset({"m-0", "m-1", "m-2"}),
            "tor-1": frozenset({"m-2", "m-3"}),
        }
        with pytest.raises(CoverInfeasibleError) as info:
            greedy_max_weight_cover(
                universe,
                candidates,
                {"tor-0": 2, "tor-1": 1},
                kernel="bitset",
            )
        assert info.value.uncovered == frozenset(
            f"m-{i}" for i in range(4, 10)
        )

    def test_feasibility_checked_before_weights(self):
        # Both kernels agree on error precedence: an infeasible
        # instance raises CoverInfeasibleError even when weights are
        # also missing.
        universe = frozenset({"m-0", "ghost"})
        candidates = {"tor-0": frozenset({"m-0"})}
        for kernel in ("set", "bitset"):
            with pytest.raises(CoverInfeasibleError):
                greedy_max_weight_cover(
                    universe, candidates, {}, kernel=kernel
                )

    def test_missing_weights_parity(self):
        universe = frozenset({"m-0", "m-1"})
        candidates = {
            "tor-1": frozenset({"m-0"}),
            "tor-0": frozenset({"m-1"}),
        }
        messages = {}
        for kernel in ("set", "bitset"):
            with pytest.raises(ValidationError) as info:
                greedy_max_weight_cover(
                    universe, candidates, {}, kernel=kernel
                )
            messages[kernel] = str(info.value)
        assert messages["set"] == messages["bitset"]
        assert messages["set"].index("tor-0") < messages["set"].index(
            "tor-1"
        )


class TestKernelSelection:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValidationError):
            greedy_marginal_cover(
                {"a"}, {"s": frozenset({"a"})}, kernel="simd"
            )

    def test_set_default_kernel_validates(self):
        with pytest.raises(ValidationError):
            set_default_kernel("gpu")

    def test_set_default_kernel_returns_previous(self):
        previous = set_default_kernel("bitset")
        try:
            assert previous == "auto"
            assert set_default_kernel("auto") == "bitset"
        finally:
            set_default_kernel("auto")

    def test_use_kernel_restores(self):
        with use_kernel("bitset") as active:
            assert active == "bitset"
            assert algorithms._default_kernel == "bitset"
        assert algorithms._default_kernel == "auto"

    def test_auto_keeps_single_pass_covers_on_set(self):
        big = frozenset(range(BITSET_KERNEL_THRESHOLD * 2))
        assert algorithms._resolve_kernel("auto", big) == "set"

    def test_auto_promotes_amortized_covers_above_threshold(self):
        big = frozenset(range(BITSET_KERNEL_THRESHOLD))
        small = frozenset(range(BITSET_KERNEL_THRESHOLD - 1))
        assert (
            algorithms._resolve_kernel("auto", big, amortized=True)
            == "bitset"
        )
        assert (
            algorithms._resolve_kernel("auto", small, amortized=True)
            == "set"
        )

    def test_explicit_kernel_wins_over_default(self):
        with use_kernel("set"):
            assert (
                algorithms._resolve_kernel("bitset", frozenset({"a"}))
                == "bitset"
            )

    def test_default_kernel_applies_to_auto_call_sites(self):
        universe = frozenset(f"m-{i}" for i in range(8))
        candidates = {
            "tor-0": frozenset(f"m-{i}" for i in range(5)),
            "tor-1": frozenset(f"m-{i}" for i in range(3, 8)),
        }
        with use_kernel("bitset"):
            forced = greedy_marginal_cover(universe, candidates)
        reference = greedy_marginal_cover(universe, candidates, kernel="set")
        assert forced == reference


class TestNaturalSortKeyEdges:
    """Edge cases beyond the happy paths in test_algorithms."""

    def test_empty_string(self):
        assert sorted(["tor-1", ""], key=natural_sort_key) == ["", "tor-1"]

    def test_bare_prefix_vs_indexed(self):
        # "tor" has no numeric suffix: it sorts after every indexed id
        # sharing the prefix.
        assert sorted(["tor", "tor-2", "tor-10"], key=natural_sort_key) == [
            "tor-2",
            "tor-10",
            "tor",
        ]

    def test_multi_dash_ids(self):
        items = ["dc-1-tor-10", "dc-1-tor-2"]
        assert sorted(items, key=natural_sort_key) == [
            "dc-1-tor-2",
            "dc-1-tor-10",
        ]

    def test_non_string_ids(self):
        # Plain integer ids order numerically, not by their string form
        # (which would put 10 before 2).
        assert sorted([10, 2], key=natural_sort_key) == [2, 10]

    def test_mixed_int_and_string_ids(self):
        # The regression this pins: mixed id populations used to raise
        # TypeError (comparing ("10", ...) against ("tor", 10, ...)
        # shapes).  Every key now has the same (str, int, int, str)
        # shape, ints sort before prefixed ids, and numeric order wins
        # within each group.
        mixed = ["tor-10", 2, "tor-2", 10, "ops-1", 3]
        assert sorted(mixed, key=natural_sort_key) == [
            2,
            3,
            10,
            "ops-1",
            "tor-2",
            "tor-10",
        ]

    def test_bool_ids_keep_string_keying(self):
        # bools are ints in python; keep them on the generic string
        # path so True/False don't interleave with numeric ids.
        assert natural_sort_key(True) == natural_sort_key("True")

    def test_numeric_suffix_with_leading_zeros(self):
        assert sorted(["tor-010", "tor-2"], key=natural_sort_key) == [
            "tor-2",
            "tor-010",
        ]

    def test_stable_for_equal_keys(self):
        assert natural_sort_key("ops-3") == natural_sort_key("ops-3")
