"""Failed commands leave no trace — the replay-parity contract.

A journaled stack only journals *committed* commands; a provision that
fails mid-deploy must therefore roll back every side effect — VNF
lifecycle entries, carrier VMs, pool reservations, and every id it
drew from the vnf/vm/slice allocators — or the live stack drifts from
what replaying its journal produces.  Long churn runs (the workload
soaks) hit these paths constantly; these are the direct regression
tests.
"""

from __future__ import annotations

import pytest

from repro.exceptions import PlacementError, SlicingError
from repro.service.snapshot import state_digest
from repro.stack import AlvcStack


def _build(tmp_path=None, **overrides):
    build = dict(
        n_racks=2,
        servers_per_rack=2,
        n_ops=4,
        seed=3,
        vms_per_service=2,
        exclusive_chains=False,
    )
    if tmp_path is not None:
        build.update(journal=tmp_path / "journal.alvc", sync="off")
    build.update(overrides)
    return AlvcStack.build(**build)


class TestFailedProvisionIsTraceless:
    def _fail_second_vnf(self, stack, monkeypatch):
        """Make the second VNF deploy of the next provision fail.

        Patches both deploy paths with a shared counter — the solver
        is free to place either VNF optically or electronically.
        """
        nfv = stack.orchestrator.nfv_manager
        real = (nfv.deploy_optical, nfv.deploy_electronic)
        calls = {"n": 0}

        def _gate():
            calls["n"] += 1
            if calls["n"] == 2:
                raise PlacementError("forced mid-deploy failure")

        def flaky_optical(function_name, *, ops):
            _gate()
            return real[0](function_name, ops=ops)

        def flaky_electronic(function_name, *, server):
            _gate()
            return real[1](function_name, server=server)

        monkeypatch.setattr(nfv, "deploy_optical", flaky_optical)
        monkeypatch.setattr(nfv, "deploy_electronic", flaky_electronic)
        return nfv, real

    def test_retry_after_failure_reuses_the_rolled_back_ids(
        self, monkeypatch
    ):
        stack = _build()
        nfv, real = self._fail_second_vnf(stack, monkeypatch)
        with pytest.raises(PlacementError):
            stack.provision(("firewall", "nat"), service="web")
        # The failed attempt must not leave TERMINATED lifecycle
        # ghosts or stale instances: the retry re-allocates the very
        # same vnf ids, and `create` refuses duplicates.
        monkeypatch.setattr(nfv, "deploy_optical", real[0])
        monkeypatch.setattr(nfv, "deploy_electronic", real[1])
        live = stack.provision(
            ("firewall", "nat"), service="web", chain_id="retry"
        )
        assert live.vnf_ids == ("vnf-0", "vnf-1")
        assert nfv.lifecycle.live_vnfs() == ["vnf-0", "vnf-1"]

    def test_failure_releases_the_carrier_vm_and_capacity(
        self, monkeypatch
    ):
        stack = _build()
        inventory = stack.inventory
        # Bootstrap the cluster first so the failed provision's only
        # side effects are the deploy's own.
        stack.provision(("dpi",), service="web", chain_id="warm")
        stack.teardown("warm")
        used_before = {
            server: inventory.used_capacity(server)
            for server in stack.fabric.servers()
        }
        nfv, _ = self._fail_second_vnf(stack, monkeypatch)
        with pytest.raises(PlacementError):
            stack.provision(("firewall", "nat"), service="web")
        assert {
            server: inventory.used_capacity(server)
            for server in stack.fabric.servers()
        } == used_before
        assert not any(
            vm.service == "nfv-infra" for vm in inventory.placed_vms()
        )

    def test_live_and_replayed_stacks_stay_digest_identical(
        self, monkeypatch, tmp_path
    ):
        """The workload-soak divergence, reduced to its kernel.

        Replay never sees failed commands, so a failure that burned a
        vnf/vm/slice id on the live stack (without rewinding) makes the
        retry's ids — all digest-visible — differ between live and
        replay.
        """
        stack = _build(tmp_path)
        nfv, real = self._fail_second_vnf(stack, monkeypatch)
        with pytest.raises(PlacementError):
            stack.provision(("firewall", "nat"), service="web")
        monkeypatch.setattr(nfv, "deploy_optical", real[0])
        monkeypatch.setattr(nfv, "deploy_electronic", real[1])
        stack.provision(("firewall", "nat"), service="web")
        live_digest = state_digest(stack)
        stack.journal.close()
        restored = AlvcStack.restore(tmp_path / "journal.alvc")
        try:
            assert state_digest(restored) == live_digest
        finally:
            restored.journal.close()

    def test_slice_id_allocator_rewinds_with_the_released_slice(
        self, monkeypatch
    ):
        stack = _build()
        nfv, real = self._fail_second_vnf(stack, monkeypatch)
        with pytest.raises(PlacementError):
            stack.provision(("firewall", "nat"), service="web")
        monkeypatch.setattr(nfv, "deploy_optical", real[0])
        monkeypatch.setattr(nfv, "deploy_electronic", real[1])
        live = stack.provision(("firewall", "nat"), service="web")
        # Without the rewind the failed attempt burns slice-0 and the
        # retry lands on slice-1 — an id replay would never skip.
        assert live.optical_slice.slice_id == "slice-0"


class TestSliceAllocatorRewind:
    def test_release_alone_burns_the_id_rewind_returns_it(self):
        stack = _build()
        allocator = stack.orchestrator.slice_allocator
        marks = allocator.id_marks()
        live = stack.provision(("dpi",), service="web", chain_id="probe")
        first_id = live.optical_slice.slice_id
        stack.teardown("probe")
        assert allocator.slices() == []
        # release() keeps the cursor monotonic (live ids must never be
        # re-issued) — rewinding past the mark is the explicit opt-in
        # for the nothing-was-journaled case.
        allocator.rewind_ids(marks)
        reused = stack.provision(("dpi",), service="web", chain_id="again")
        assert reused.optical_slice.slice_id == first_id


class TestRepairVsSliceConflict:
    def test_extend_refused_degrades_instead_of_crashing(self, monkeypatch):
        """An AL repair whose adopted OPS overlaps a live slice.

        Cluster bookkeeping frees an OPS as soon as an AL drops it, but
        the owning slice keeps its wavelengths until the chain tears
        down — so a *repair* can try to adopt an OPS another slice
        still holds.  The orchestrator must refuse the repair (degrade
        the chains) rather than crash or, worse, break isolation.
        """
        stack = _build()
        live = stack.provision(("firewall", "nat"), service="web")
        victim_ops = sorted(live.cluster.al_switches)[0]

        def refuse(slice_id, extra_switches):
            raise SlicingError("forced overlap")

        monkeypatch.setattr(
            stack.orchestrator.slice_allocator, "extend", refuse
        )
        recovery = stack.orchestrator.handle_ops_failure(victim_ops)
        assert not recovery.recovered
        assert live.chain_id in recovery.degraded_chains
        # Isolation survived the refused repair.
        stack.orchestrator.slice_allocator.verify_isolation()
