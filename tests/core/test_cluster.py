"""Tests for virtual clusters and the cluster manager."""

import pytest

from repro.core.cluster import ClusterManager
from repro.exceptions import (
    CoverInfeasibleError,
    DuplicateEntityError,
    TopologyError,
    UnknownEntityError,
)


@pytest.fixture
def manager(populated_inventory):
    return ClusterManager(populated_inventory)


class TestCreateCluster:
    def test_cluster_contains_service_vms(self, manager, populated_inventory):
        cluster = manager.create_cluster("web")
        expected = {
            vm.vm_id for vm in populated_inventory.vms_of_service("web")
        }
        assert cluster.vm_ids == expected
        assert cluster.service == "web"
        assert len(cluster) == len(expected)

    def test_cluster_id_derived_from_service(self, manager):
        cluster = manager.create_cluster("web")
        assert cluster.cluster_id == "cluster-web"

    def test_al_constructed(self, manager):
        cluster = manager.create_cluster("web")
        assert cluster.al_switches
        assert cluster.tor_switches

    def test_duplicate_service_rejected(self, manager):
        manager.create_cluster("web")
        with pytest.raises(DuplicateEntityError):
            manager.create_cluster("web")

    def test_unknown_service_rejected(self, manager):
        with pytest.raises(TopologyError):
            manager.create_cluster("nonexistent-service")

    def test_explicit_vm_subset(self, manager, populated_inventory):
        vms = [
            vm.vm_id
            for vm in populated_inventory.vms_of_service("web")[:3]
        ]
        cluster = manager.create_cluster("web", vms=vms)
        assert cluster.vm_ids == set(vms)

    def test_explicit_vm_wrong_service_rejected(
        self, manager, populated_inventory
    ):
        sns_vm = populated_inventory.vms_of_service("sns")[0]
        with pytest.raises(TopologyError):
            manager.create_cluster("web", vms=[sns_vm.vm_id])

    def test_unplaced_vms_excluded_by_default(
        self, manager, populated_inventory, service_catalog
    ):
        floating = populated_inventory.create_vm(service_catalog.get("web"))
        cluster = manager.create_cluster("web")
        assert floating.vm_id not in cluster.vm_ids


class TestDisjointness:
    def test_ops_not_shared_between_clusters(self, manager):
        web = manager.create_cluster("web")
        mr = manager.create_cluster("map-reduce")
        sns = manager.create_cluster("sns")
        assert not (web.al_switches & mr.al_switches)
        assert not (web.al_switches & sns.al_switches)
        assert not (mr.al_switches & sns.al_switches)

    def test_owner_tracking(self, manager):
        web = manager.create_cluster("web")
        for ops in web.al_switches:
            assert manager.owner_of_ops(ops) == "cluster-web"
        free = manager.free_ops()
        assert not (free & web.al_switches)

    def test_exhaustion_raises_cover_infeasible(
        self, small_fabric, service_catalog
    ):
        from repro.virtualization.machines import MachineInventory
        from repro.virtualization.vm_placement import (
            PlacementStrategy,
            VmPlacementEngine,
        )

        # One VM per rack for each of many services: every cluster spans
        # all 4 ToRs, quickly consuming the 4 OPSs.
        inventory = MachineInventory(small_fabric)
        engine = VmPlacementEngine(
            inventory, PlacementStrategy.ROUND_ROBIN
        )
        services = ["web", "sns", "database", "map-reduce", "backup"]
        for name in services:
            for _ in range(4):
                engine.place(inventory.create_vm(service_catalog.get(name)))
        manager = ClusterManager(inventory)
        with pytest.raises(CoverInfeasibleError):
            for name in services:
                manager.create_cluster(name)


class TestDissolveAndRebuild:
    def test_dissolve_frees_ops(self, manager):
        web = manager.create_cluster("web")
        manager.dissolve_cluster("web")
        assert web.al_switches <= manager.free_ops()
        with pytest.raises(UnknownEntityError):
            manager.cluster_of_service("web")

    def test_dissolve_unknown_raises(self, manager):
        with pytest.raises(UnknownEntityError):
            manager.dissolve_cluster("web")

    def test_rebuild_after_churn(self, manager, populated_inventory):
        manager.create_cluster("web")
        # Migrate a web VM somewhere else, then rebuild.
        vm = populated_inventory.vms_of_service("web")[0]
        current = populated_inventory.host_of(vm.vm_id)
        target = next(
            server
            for server in populated_inventory.network.servers()
            if server != current
            and vm.demand.fits_within(
                populated_inventory.remaining_capacity(server)
            )
        )
        populated_inventory.migrate(vm.vm_id, target)
        rebuilt = manager.rebuild_cluster("web")
        assert set(populated_inventory.network.tors_of_server(target)) & (
            rebuilt.tor_switches
        )


class TestQueries:
    def test_cluster_of_vm(self, manager, populated_inventory):
        manager.create_cluster("web")
        vm = populated_inventory.vms_of_service("web")[0]
        assert manager.cluster_of_vm(vm.vm_id).service == "web"

    def test_cluster_of_vm_unknown_raises(self, manager):
        with pytest.raises(UnknownEntityError):
            manager.cluster_of_vm("vm-999")

    def test_clusters_sorted(self, manager):
        manager.create_cluster("web")
        manager.create_cluster("map-reduce")
        names = [cluster.cluster_id for cluster in manager.clusters()]
        assert names == sorted(names)

    def test_census(self, manager):
        manager.create_cluster("web")
        census = manager.census()
        assert census["cluster-web"]["vms"] == 6
        assert census["cluster-web"]["al_switches"] >= 1


class TestCreateAllClusters:
    def test_creates_every_present_service(self, manager):
        created = manager.create_all_clusters()
        assert {cluster.service for cluster in created} == {
            "web",
            "map-reduce",
            "sns",
        }

    def test_skips_existing_clusters(self, manager):
        manager.create_cluster("web")
        created = manager.create_all_clusters()
        assert "web" not in {cluster.service for cluster in created}
        assert len(manager.clusters()) == 3

    def test_skips_services_with_only_unplaced_vms(
        self, manager, populated_inventory, service_catalog
    ):
        populated_inventory.create_vm(service_catalog.get("backup"))
        created = manager.create_all_clusters()
        assert "backup" not in {cluster.service for cluster in created}

    def test_deterministic_order(self, manager):
        created = manager.create_all_clusters()
        names = [cluster.service for cluster in created]
        assert names == sorted(names)
