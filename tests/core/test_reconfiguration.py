"""Tests for incremental AL reconfiguration and failure repair."""

import pytest

from repro.core.abstraction_layer import AlConstructor
from repro.core.reconfiguration import (
    AlReconfigurator,
    full_rebuild_cost,
)
from repro.exceptions import CoverInfeasibleError, TopologyError


@pytest.fixture
def setup(paper_dcn):
    """The Fig. 4 AL over servers 0-3 (tor-0 only), ready to grow."""
    servers = ["server-0", "server-1", "server-2", "server-3"]
    attachments = {
        server: paper_dcn.tors_of_server(server) for server in servers
    }
    layer = AlConstructor(paper_dcn).construct(
        "cluster-r", attachments
    )
    reconfigurator = AlReconfigurator(paper_dcn, layer, attachments)
    return paper_dcn, reconfigurator


class TestAddVm:
    def test_zero_cost_when_tor_already_selected(self, setup):
        dcn, reconfigurator = setup
        # A new machine on tor-0, which the AL already selected.
        result = reconfigurator.add_vm(
            "vm-new", ["tor-0"], available_ops=[]
        )
        assert result.cost == 0
        assert result.touched_switches == frozenset()
        reconfigurator.verify()

    def test_extension_through_existing_ops(self, setup):
        dcn, reconfigurator = setup
        layer = reconfigurator.layer
        # server-5 attaches to tor-2 and tor-3; if either uplinks to an
        # AL OPS, only the ToR is touched.
        result = reconfigurator.add_vm(
            "server-5",
            dcn.tors_of_server("server-5"),
            available_ops=set(dcn.optical_switches()) - layer.ops_ids,
        )
        assert 1 <= result.cost <= 2
        reconfigurator.verify()

    def test_extension_adds_new_ops_when_needed(self, paper_dcn):
        # AL over server-0..3 selects tor-0 and one of its uplinks; a
        # machine only on tor-2 (uplinks ops-2/ops-3) needs a new OPS.
        servers = ["server-0", "server-1", "server-2", "server-3"]
        attachments = {
            server: paper_dcn.tors_of_server(server) for server in servers
        }
        layer = AlConstructor(paper_dcn).construct("cluster-r", attachments)
        assert layer.ops_ids <= {"ops-0", "ops-1"}
        reconfigurator = AlReconfigurator(paper_dcn, layer, attachments)
        result = reconfigurator.add_vm(
            "server-4", ["tor-2"], available_ops={"ops-2", "ops-3"}
        )
        assert "tor-2" in result.layer.tor_ids
        assert result.layer.ops_ids & {"ops-2", "ops-3"}
        assert result.cost == 2  # the ToR and one fresh OPS
        reconfigurator.verify()

    def test_duplicate_machine_rejected(self, setup):
        _, reconfigurator = setup
        with pytest.raises(TopologyError):
            reconfigurator.add_vm("server-0", ["tor-0"], available_ops=[])

    def test_machine_without_tors_infeasible(self, setup):
        _, reconfigurator = setup
        with pytest.raises(CoverInfeasibleError):
            reconfigurator.add_vm("vm-x", [], available_ops=[])

    def test_unreachable_extension_infeasible(self, setup):
        _, reconfigurator = setup
        with pytest.raises(CoverInfeasibleError):
            # tor-2's uplinks are ops-2/ops-3; none available, none in AL.
            reconfigurator.add_vm("vm-x", ["tor-2"], available_ops=[])

    def test_failed_add_does_not_pollute_membership(self, setup):
        _, reconfigurator = setup
        before = reconfigurator.machines
        with pytest.raises(CoverInfeasibleError):
            reconfigurator.add_vm("vm-x", ["tor-2"], available_ops=[])
        assert reconfigurator.machines == before


class TestRemoveVm:
    def test_prunes_unneeded_tor_and_ops(self, paper_dcn):
        # Cover servers of tor-0 plus server-4 (tor-2 only); removing
        # server-4 should drop tor-2 and its OPS.
        servers = ["server-0", "server-1", "server-2", "server-3", "server-4"]
        attachments = {
            server: paper_dcn.tors_of_server(server) for server in servers
        }
        layer = AlConstructor(paper_dcn).construct("cluster-r", attachments)
        reconfigurator = AlReconfigurator(paper_dcn, layer, attachments)
        assert "tor-2" in layer.tor_ids
        result = reconfigurator.remove_vm("server-4")
        assert "tor-2" not in result.layer.tor_ids
        assert result.cost >= 1
        reconfigurator.verify()

    def test_removing_redundant_machine_keeps_layer(self, setup):
        _, reconfigurator = setup
        before = reconfigurator.layer
        result = reconfigurator.remove_vm("server-1")
        assert result.layer.tor_ids == before.tor_ids
        assert result.cost == 0
        reconfigurator.verify()

    def test_remove_unknown_rejected(self, setup):
        _, reconfigurator = setup
        with pytest.raises(TopologyError):
            reconfigurator.remove_vm("vm-ghost")


class TestOpsFailure:
    def test_failed_ops_replaced(self, setup):
        dcn, reconfigurator = setup
        failed = sorted(reconfigurator.layer.ops_ids)[0]
        available = set(dcn.optical_switches()) - reconfigurator.layer.ops_ids
        result = reconfigurator.handle_ops_failure(failed, available)
        assert failed not in result.layer.ops_ids
        assert failed in result.touched_switches
        reconfigurator.verify()

    def test_failure_of_foreign_switch_rejected(self, setup):
        _, reconfigurator = setup
        foreign = "ops-3"
        if foreign in reconfigurator.layer.ops_ids:
            foreign = "ops-2"
        with pytest.raises(TopologyError):
            reconfigurator.handle_ops_failure(foreign, [])

    def test_unrecoverable_failure_raises(self, paper_dcn):
        # AL over tor-0's servers; if both its uplinks are gone and no
        # substitutes exist, coverage cannot be restored.
        servers = ["server-0", "server-3"]
        attachments = {s: ["tor-0"] for s in servers}
        layer = AlConstructor(paper_dcn).construct("cluster-r", attachments)
        reconfigurator = AlReconfigurator(paper_dcn, layer, attachments)
        failed = sorted(layer.ops_ids)[0]
        # Only offer switches that do not uplink tor-0.
        non_uplinks = set(paper_dcn.optical_switches()) - set(
            paper_dcn.ops_of_tor("tor-0")
        )
        with pytest.raises(CoverInfeasibleError):
            reconfigurator.handle_ops_failure(failed, non_uplinks)


class TestVerify:
    def test_verify_detects_broken_layer(self, setup):
        import dataclasses

        dcn, reconfigurator = setup
        # Corrupt the layer: drop all OPSs.
        reconfigurator._layer = dataclasses.replace(
            reconfigurator.layer, ops_ids=frozenset()
        )
        with pytest.raises(CoverInfeasibleError):
            reconfigurator.verify()


class TestFullRebuildBaseline:
    def test_rebuild_reports_symmetric_difference(self, paper_dcn):
        servers = ["server-0", "server-1", "server-2", "server-3"]
        attachments = {
            server: paper_dcn.tors_of_server(server) for server in servers
        }
        layer = AlConstructor(paper_dcn).construct("cluster-r", attachments)
        # Same membership: rebuild yields the same layer, zero touched.
        result = full_rebuild_cost(
            paper_dcn, layer, attachments, available_ops=[]
        )
        assert result.rebuilt
        assert result.cost == 0

    def test_incremental_cheaper_or_equal_on_growth(self, medium_fabric):
        servers = medium_fabric.servers()
        initial = servers[: len(servers) // 2]
        attachments = {
            server: medium_fabric.tors_of_server(server)
            for server in initial
        }
        layer = AlConstructor(medium_fabric).construct(
            "cluster-r", attachments
        )
        reconfigurator = AlReconfigurator(
            medium_fabric, layer, attachments
        )
        available = set(medium_fabric.optical_switches()) - layer.ops_ids
        incremental_total = 0
        for server in servers[len(servers) // 2:]:
            result = reconfigurator.add_vm(
                server,
                medium_fabric.tors_of_server(server),
                available_ops=available,
            )
            available -= result.layer.ops_ids
            incremental_total += result.cost
        reconfigurator.verify()
        # Rebuild from scratch with full membership for comparison.
        full_attachments = {
            server: medium_fabric.tors_of_server(server)
            for server in servers
        }
        rebuild = full_rebuild_cost(
            medium_fabric,
            layer,
            full_attachments,
            available_ops=set(medium_fabric.optical_switches())
            - layer.ops_ids,
        )
        # Incremental repair touches no more switches than a rebuild's
        # churn across this growth episode.
        assert incremental_total <= rebuild.cost + len(
            rebuild.layer.ops_ids
        ) + len(rebuild.layer.tor_ids)


class TestStickyFailures:
    """Regression: a failed OPS must never re-enter a candidate pool,
    even when the caller's ``available_ops`` still lists it (cluster
    bookkeeping knows nothing about dead hardware)."""

    @pytest.fixture
    def reconfigurator(self, paper_dcn):
        servers = ["server-0", "server-1", "server-2", "server-3"]
        attachments = {
            server: paper_dcn.tors_of_server(server) for server in servers
        }
        layer = AlConstructor(paper_dcn).construct("cluster-r", attachments)
        return AlReconfigurator(paper_dcn, layer, attachments)

    def test_failed_ops_never_reselected(self, reconfigurator, paper_dcn):
        failed = sorted(reconfigurator.layer.ops_ids)[0]
        # The caller's pool *includes* the corpse — the regression.
        pool = set(paper_dcn.optical_switches())
        result = reconfigurator.handle_ops_failure(failed, pool)
        assert failed not in result.layer.ops_ids
        assert reconfigurator.failed_ops == frozenset({failed})
        reconfigurator.verify()

    def test_earlier_failures_stay_excluded(self, medium_fabric):
        # A larger fabric (8 OPSs) so two successive failures stay
        # repairable; the corpses must both stay out of the pool even
        # though the caller keeps offering them.
        servers = sorted(medium_fabric.servers())[:8]
        attachments = {
            server: medium_fabric.tors_of_server(server)
            for server in servers
        }
        layer = AlConstructor(medium_fabric).construct(
            "cluster-m", attachments
        )
        reconfigurator = AlReconfigurator(medium_fabric, layer, attachments)
        pool = set(medium_fabric.optical_switches())
        first = sorted(reconfigurator.layer.ops_ids)[0]
        reconfigurator.handle_ops_failure(first, pool)
        second = sorted(reconfigurator.layer.ops_ids)[0]
        result = reconfigurator.handle_ops_failure(second, pool)
        assert first not in result.layer.ops_ids
        assert second not in result.layer.ops_ids
        assert reconfigurator.failed_ops == frozenset({first, second})
        reconfigurator.verify()

    def test_add_vm_excludes_failed_ops(self, reconfigurator, paper_dcn):
        failed = sorted(reconfigurator.layer.ops_ids)[0]
        reconfigurator.handle_ops_failure(
            failed, set(paper_dcn.optical_switches())
        )
        result = reconfigurator.add_vm(
            "server-5",
            paper_dcn.tors_of_server("server-5"),
            available_ops=set(paper_dcn.optical_switches()),
        )
        assert failed not in result.layer.ops_ids

    def test_constructor_seeding_for_mid_incident_rebuilds(
        self, reconfigurator, paper_dcn
    ):
        dead = sorted(paper_dcn.optical_switches())[-1]
        servers = ["server-0", "server-1", "server-2", "server-3"]
        attachments = {
            server: paper_dcn.tors_of_server(server) for server in servers
        }
        seeded = AlReconfigurator(
            paper_dcn,
            reconfigurator.layer,
            attachments,
            failed_ops=[dead],
        )
        assert seeded.failed_ops == frozenset({dead})
        result = seeded.add_vm(
            "server-5",
            paper_dcn.tors_of_server("server-5"),
            available_ops=set(paper_dcn.optical_switches()),
        )
        assert dead not in result.layer.ops_ids

    def test_mark_ops_repaired_restores_eligibility(
        self, reconfigurator, paper_dcn
    ):
        failed = sorted(reconfigurator.layer.ops_ids)[0]
        reconfigurator.handle_ops_failure(
            failed, set(paper_dcn.optical_switches())
        )
        reconfigurator.mark_ops_repaired(failed)
        assert reconfigurator.failed_ops == frozenset()
        with pytest.raises(TopologyError):
            reconfigurator.mark_ops_repaired(failed)  # only once

    def test_verify_flags_dead_but_selected_ops(self, reconfigurator):
        # Simulate a corpse left in the layer: record the failure
        # without repairing (the degraded-mode state).
        dead = sorted(reconfigurator.layer.ops_ids)[0]
        reconfigurator._failed.add(dead)
        with pytest.raises(CoverInfeasibleError):
            reconfigurator.verify()

    def test_exhaustion_still_raises(self, reconfigurator, paper_dcn):
        # Failing everything must eventually be infeasible, not loop.
        pool = set(paper_dcn.optical_switches())
        with pytest.raises(CoverInfeasibleError):
            for _ in range(len(pool) + 1):
                failed = sorted(reconfigurator.layer.ops_ids)[0]
                reconfigurator.handle_ops_failure(failed, pool)
