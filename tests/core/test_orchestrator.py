"""Tests for the network orchestrator (end-to-end NFC management)."""

import pytest

from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.orchestrator import NetworkOrchestrator
from repro.core.placement import PlacementAlgorithm
from repro.exceptions import DuplicateEntityError, UnknownEntityError
from repro.nfv.functions import FunctionCatalog
from repro.topology.elements import Domain


CATALOG = FunctionCatalog.standard()


@pytest.fixture
def orchestrator(populated_inventory):
    orch = NetworkOrchestrator(populated_inventory)
    for service in ("web", "map-reduce", "sns"):
        orch.cluster_manager.create_cluster(service)
    return orch


def make_request(names=("firewall", "nat"), service="web",
                 chain_id="chain-0"):
    chain = NetworkFunctionChain.from_names(chain_id, names, CATALOG)
    return ChainRequest(tenant="tenant-0", chain=chain, service=service)


class TestProvision:
    def test_basic_provision(self, orchestrator):
        live = orchestrator.provision_chain(make_request())
        assert live.chain_id == "chain-0"
        assert len(live.vnf_ids) == 2
        assert live.optical_slice.cluster == "cluster-web"
        assert orchestrator.chains() == [live]

    def test_light_functions_deploy_optically(self, orchestrator):
        live = orchestrator.provision_chain(make_request(("firewall", "nat")))
        assert live.placement.optical_count == 2
        assert live.conversions == 0
        for vnf in live.vnf_ids:
            instance = orchestrator.nfv_manager.instance_of(vnf)
            assert instance.domain is Domain.OPTICAL
            assert instance.host in live.cluster.al_switches

    def test_heavy_function_deploys_electronically(self, orchestrator):
        live = orchestrator.provision_chain(make_request(("dpi",)))
        instance = orchestrator.nfv_manager.instance_of(live.vnf_ids[0])
        assert instance.domain is Domain.ELECTRONIC
        assert instance.host.startswith("server")
        assert live.conversions == 1

    def test_path_stays_inside_al(self, orchestrator):
        live = orchestrator.provision_chain(make_request(("firewall", "dpi")))
        for node in live.path:
            if node.startswith("ops"):
                assert node in live.cluster.al_switches

    def test_flow_rules_installed(self, orchestrator):
        live = orchestrator.provision_chain(make_request(("firewall", "dpi")))
        if len(live.path) >= 2:
            assert orchestrator.sdn.has_flow(live.chain_id)

    def test_duplicate_chain_id_rejected(self, orchestrator):
        orchestrator.provision_chain(make_request())
        with pytest.raises(DuplicateEntityError):
            orchestrator.provision_chain(make_request(service="sns"))

    def test_one_chain_per_cluster(self, orchestrator):
        orchestrator.provision_chain(make_request())
        with pytest.raises(DuplicateEntityError):
            orchestrator.provision_chain(
                make_request(chain_id="chain-1", service="web")
            )

    def test_unknown_service_rejected(self, orchestrator):
        with pytest.raises(UnknownEntityError):
            orchestrator.provision_chain(make_request(service="backup"))

    def test_placement_algorithm_honoured(self, orchestrator):
        live = orchestrator.provision_chain(
            make_request(("firewall", "nat")),
            algorithm=PlacementAlgorithm.ALL_ELECTRONIC,
        )
        assert live.placement.optical_count == 0
        assert live.conversions == 2

    def test_slice_released_on_deploy_failure(self, orchestrator):
        # An impossible chain (no server fits 100 DPIs worth of demand
        # in a single VNF) must not leak its slice.
        from repro.nfv.functions import NetworkFunctionType
        from repro.topology.elements import ResourceVector

        giant = NetworkFunctionType(
            "giant", ResourceVector(cpu_cores=10_000)
        )
        chain = NetworkFunctionChain(
            chain_id="chain-giant", functions=(giant,)
        )
        request = ChainRequest(
            tenant="tenant-0", chain=chain, service="web"
        )
        with pytest.raises(Exception):
            orchestrator.provision_chain(request)
        # The web cluster can still get a slice afterwards.
        live = orchestrator.provision_chain(make_request())
        assert live.optical_slice.cluster == "cluster-web"


class TestLifecycle:
    def test_upgrade_touches_every_vnf(self, orchestrator):
        live = orchestrator.provision_chain(make_request())
        count = orchestrator.upgrade_chain(live.chain_id)
        assert count == 2
        events = orchestrator.nfv_manager.lifecycle.event_counts()
        assert events["updating"] == 2

    def test_modify_replaces_chain(self, orchestrator):
        orchestrator.provision_chain(make_request())
        new_chain = NetworkFunctionChain.from_names(
            "chain-0b", ("nat",), CATALOG
        )
        live = orchestrator.modify_chain("chain-0", new_chain)
        assert live.chain_id == "chain-0b"
        with pytest.raises(UnknownEntityError):
            orchestrator.chain("chain-0")

    def test_delete_cleans_everything(self, orchestrator):
        live = orchestrator.provision_chain(make_request(("firewall", "dpi")))
        pool_before = orchestrator.nfv_manager.pool.total_free()
        orchestrator.delete_chain(live.chain_id)
        assert orchestrator.chains() == []
        assert orchestrator.sdn.total_rules() == 0
        assert not orchestrator.sdn.has_flow(live.chain_id)
        # Optical capacity restored.
        assert (
            orchestrator.nfv_manager.pool.total_free().cpu_cores
            >= pool_before.cpu_cores
        )
        # Slice free again: re-provision succeeds.
        orchestrator.provision_chain(make_request(chain_id="chain-2"))

    def test_delete_unknown_raises(self, orchestrator):
        with pytest.raises(UnknownEntityError):
            orchestrator.delete_chain("chain-9")

    def test_action_log_order(self, orchestrator):
        live = orchestrator.provision_chain(make_request())
        orchestrator.upgrade_chain(live.chain_id)
        orchestrator.delete_chain(live.chain_id)
        actions = [action for action, _ in orchestrator.action_log()]
        assert actions == ["provision", "upgrade", "delete"]


class TestMultiTenant:
    def test_three_tenants_isolated(self, orchestrator):
        chains = []
        for index, service in enumerate(("web", "map-reduce", "sns")):
            chains.append(
                orchestrator.provision_chain(
                    make_request(
                        ("firewall",),
                        service=service,
                        chain_id=f"chain-{index}",
                    )
                )
            )
        orchestrator.slice_allocator.verify_isolation()
        switch_sets = [live.optical_slice.switches for live in chains]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (switch_sets[i] & switch_sets[j])


class TestSharedSliceMode:
    """Per-user/per-application chaining (Section IV.A): several chains
    over one cluster, sharing its optical slice."""

    @pytest.fixture
    def shared(self, populated_inventory):
        orch = NetworkOrchestrator(
            populated_inventory, exclusive_chains=False
        )
        orch.cluster_manager.create_cluster("web")
        return orch

    def test_two_chains_share_one_slice(self, shared):
        first = shared.provision_chain(make_request(chain_id="chain-a"))
        second = shared.provision_chain(
            make_request(("nat",), chain_id="chain-b")
        )
        assert (
            first.optical_slice.slice_id == second.optical_slice.slice_id
        )
        assert len(shared.slice_allocator.slices()) == 1

    def test_slice_survives_partial_deletion(self, shared):
        shared.provision_chain(make_request(chain_id="chain-a"))
        shared.provision_chain(make_request(("nat",), chain_id="chain-b"))
        shared.delete_chain("chain-a")
        assert len(shared.slice_allocator.slices()) == 1
        # The remaining chain is still live and addressable.
        assert shared.chain("chain-b")

    def test_slice_released_with_last_chain(self, shared):
        shared.provision_chain(make_request(chain_id="chain-a"))
        shared.provision_chain(make_request(("nat",), chain_id="chain-b"))
        shared.delete_chain("chain-a")
        shared.delete_chain("chain-b")
        assert shared.slice_allocator.slices() == []
        # A fresh chain re-allocates cleanly.
        shared.provision_chain(make_request(chain_id="chain-c"))

    def test_exclusive_mode_still_default(self, populated_inventory):
        orch = NetworkOrchestrator(populated_inventory)
        orch.cluster_manager.create_cluster("web")
        orch.provision_chain(make_request(chain_id="chain-a"))
        with pytest.raises(DuplicateEntityError):
            orch.provision_chain(make_request(("nat",), chain_id="chain-b"))


class TestPlanChain:
    """Dry-run admission control."""

    def test_feasible_plan(self, orchestrator):
        plan = orchestrator.plan_chain(make_request())
        assert plan.feasible
        assert plan.problems == ()
        assert plan.conversions == 0  # firewall + nat both go optical
        assert plan.placement.optical_count == 2

    def test_plan_does_not_mutate(self, orchestrator):
        pool_before = orchestrator.nfv_manager.pool.total_free()
        orchestrator.plan_chain(make_request(("firewall", "dpi")))
        assert orchestrator.nfv_manager.pool.total_free() == pool_before
        assert orchestrator.slice_allocator.slices() == []
        assert orchestrator.chains() == []

    def test_plan_then_provision_agrees(self, orchestrator):
        plan = orchestrator.plan_chain(make_request(("firewall", "dpi")))
        live = orchestrator.provision_chain(make_request(("firewall", "dpi")))
        assert plan.feasible
        assert plan.conversions == live.conversions

    def test_unknown_service_infeasible(self, orchestrator):
        plan = orchestrator.plan_chain(make_request(service="backup"))
        assert not plan.feasible
        assert any("no cluster" in problem for problem in plan.problems)

    def test_occupied_cluster_infeasible_in_exclusive_mode(
        self, orchestrator
    ):
        orchestrator.provision_chain(make_request())
        plan = orchestrator.plan_chain(
            make_request(chain_id="chain-x")
        )
        assert not plan.feasible
        assert any("already hosts" in problem for problem in plan.problems)

    def test_duplicate_chain_id_flagged(self, orchestrator):
        orchestrator.provision_chain(make_request())
        plan = orchestrator.plan_chain(make_request(service="sns"))
        assert not plan.feasible
        assert any("already in use" in p for p in plan.problems)

    def test_impossible_vnf_flagged(self, orchestrator):
        from repro.nfv.functions import NetworkFunctionType
        from repro.topology.elements import ResourceVector

        giant = NetworkFunctionType(
            "giant", ResourceVector(cpu_cores=10_000)
        )
        chain = NetworkFunctionChain(
            chain_id="chain-giant", functions=(giant,)
        )
        plan = orchestrator.plan_chain(
            ChainRequest(tenant="t", chain=chain, service="web")
        )
        assert not plan.feasible
        assert any("no server" in p for p in plan.problems)
        assert plan.conversions == 1  # placement preview still computed


class TestVmMigration:
    """Operational churn: migrate a VM, repair the AL, reroute chains."""

    def _far_server(self, inventory, vm):
        current = inventory.host_of(vm)
        current_rack = inventory.network.spec_of(current).rack
        demand = inventory.get(vm).demand
        return next(
            server
            for server in inventory.network.servers()
            if inventory.network.spec_of(server).rack != current_rack
            and demand.fits_within(inventory.remaining_capacity(server))
        )

    def test_migration_repairs_and_reroutes(
        self, orchestrator, populated_inventory
    ):
        live = orchestrator.provision_chain(make_request(("firewall", "dpi")))
        vm = sorted(live.cluster.vm_ids)[0]
        target = self._far_server(populated_inventory, vm)
        result = orchestrator.handle_vm_migration(vm, target)
        assert result["chains_rerouted"] == 1
        assert populated_inventory.host_of(vm) == target
        updated = orchestrator.chain(live.chain_id)
        # The repaired AL covers the new host's ToR.
        new_tors = set(populated_inventory.network.tors_of_server(target))
        assert new_tors & updated.cluster.tor_switches
        # Path OPS hops stay within the (extended) slice.
        for node in updated.path:
            if node.startswith("ops"):
                assert node in updated.optical_slice.switches
        orchestrator.slice_allocator.verify_isolation()

    def test_slice_extended_with_al(
        self, orchestrator, populated_inventory
    ):
        live = orchestrator.provision_chain(make_request())
        vm = sorted(live.cluster.vm_ids)[0]
        target = self._far_server(populated_inventory, vm)
        orchestrator.handle_vm_migration(vm, target)
        updated = orchestrator.chain(live.chain_id)
        assert (
            updated.cluster.al_switches <= updated.optical_slice.switches
        )

    def test_migration_without_chain(
        self, orchestrator, populated_inventory
    ):
        cluster = orchestrator.cluster_manager.cluster_of_service("sns")
        vm = sorted(cluster.vm_ids)[0]
        target = self._far_server(populated_inventory, vm)
        result = orchestrator.handle_vm_migration(vm, target)
        assert result["chains_rerouted"] == 0

    def test_same_rack_migration_touches_nothing(
        self, orchestrator, populated_inventory
    ):
        cluster = orchestrator.cluster_manager.cluster_of_service("web")
        vm = sorted(cluster.vm_ids)[0]
        current = populated_inventory.host_of(vm)
        rack = populated_inventory.network.spec_of(current).rack
        demand = populated_inventory.get(vm).demand
        sibling = next(
            (
                server
                for server in populated_inventory.network.servers()
                if server != current
                and populated_inventory.network.spec_of(server).rack == rack
                and demand.fits_within(
                    populated_inventory.remaining_capacity(server)
                )
            ),
            None,
        )
        if sibling is None:
            pytest.skip("no same-rack sibling with capacity")
        result = orchestrator.handle_vm_migration(vm, sibling)
        assert result["switches_touched"] == 0

    def test_migration_to_full_server_fails_cleanly(
        self, orchestrator, populated_inventory
    ):
        from repro.exceptions import PlacementError
        from repro.nfv.manager import NFV_INFRA_SERVICE

        cluster = orchestrator.cluster_manager.cluster_of_service("web")
        vm = sorted(cluster.vm_ids)[0]
        current = populated_inventory.host_of(vm)
        target = self._far_server(populated_inventory, vm)
        blocker = populated_inventory.create_vm(
            NFV_INFRA_SERVICE,
            populated_inventory.remaining_capacity(target),
        )
        populated_inventory.place(blocker, target)
        with pytest.raises(PlacementError):
            orchestrator.handle_vm_migration(vm, target)
        assert populated_inventory.host_of(vm) == current


class TestCostReport:
    def test_rows_per_live_chain(self, orchestrator):
        orchestrator.provision_chain(make_request(("firewall", "nat")))
        orchestrator.provision_chain(
            make_request(("dpi",), service="sns", chain_id="chain-1")
        )
        rows = orchestrator.cost_report()
        assert len(rows) == 2
        by_chain = {row["chain"]: row for row in rows}
        assert by_chain["chain-0"]["conversions_per_flow"] == 0
        assert by_chain["chain-0"]["cost_per_flow"] == 0
        assert by_chain["chain-1"]["conversions_per_flow"] == 1
        assert by_chain["chain-1"]["cost_per_flow"] > 0

    def test_empty_when_no_chains(self, orchestrator):
        assert orchestrator.cost_report() == []

    def test_custom_model_scales_cost(self, orchestrator):
        from repro.optical.conversion import ConversionModel

        orchestrator.provision_chain(make_request(("dpi",)))
        cheap = orchestrator.cost_report(ConversionModel(cost_per_gb=1.0))
        pricey = orchestrator.cost_report(ConversionModel(cost_per_gb=5.0))
        assert pricey[0]["cost_per_flow"] == pytest.approx(
            5 * cheap[0]["cost_per_flow"]
        )
