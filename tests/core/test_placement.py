"""Tests for the O/E/O-minimizing VNF placement solver."""

import pytest

from repro.core.chaining import NetworkFunctionChain
from repro.core.placement import (
    ChainPlacement,
    PlacedVnf,
    PlacementAlgorithm,
    PlacementSolver,
)
from repro.exceptions import PlacementError
from repro.nfv.functions import FunctionCatalog
from repro.optical.conversion import ConversionModel
from repro.topology.elements import Domain, ResourceVector


CATALOG = FunctionCatalog.standard()


def make_chain(names, chain_id="chain-t"):
    return NetworkFunctionChain.from_names(chain_id, names, CATALOG)


def pool(cpu=4, memory=8, storage=64, count=2):
    return {
        f"ops-{index}": ResourceVector(cpu, memory, storage)
        for index in range(count)
    }


class TestPlacedVnf:
    def test_optical_needs_host(self):
        with pytest.raises(PlacementError):
            PlacedVnf(0, CATALOG.get("nat"), Domain.OPTICAL, None)

    def test_electronic_forbids_host(self):
        with pytest.raises(PlacementError):
            PlacedVnf(0, CATALOG.get("nat"), Domain.ELECTRONIC, "ops-0")


class TestChainPlacement:
    def test_length_mismatch_rejected(self):
        chain = make_chain(("nat", "firewall"))
        with pytest.raises(PlacementError):
            ChainPlacement(
                chain=chain,
                assignments=(
                    PlacedVnf(0, CATALOG.get("nat"), Domain.ELECTRONIC, None),
                ),
            )

    def test_conversions_per_visit(self):
        chain = make_chain(("nat", "firewall", "proxy"))
        placement = ChainPlacement(
            chain=chain,
            assignments=(
                PlacedVnf(0, chain.functions[0], Domain.ELECTRONIC, None),
                PlacedVnf(1, chain.functions[1], Domain.OPTICAL, "ops-0"),
                PlacedVnf(2, chain.functions[2], Domain.ELECTRONIC, None),
            ),
        )
        assert placement.conversions == 2
        assert placement.optical_count == 1
        assert placement.conversions_saved() == 1

    def test_conversion_cost_and_energy(self):
        chain = make_chain(("nat",))
        placement = ChainPlacement(
            chain=chain,
            assignments=(
                PlacedVnf(0, chain.functions[0], Domain.ELECTRONIC, None),
            ),
        )
        model = ConversionModel(cost_per_gb=1.0, pj_per_bit=20.0)
        assert placement.conversion_cost(model, 1e9) == pytest.approx(1.0)
        assert placement.conversion_energy_joules(model, 1e9) == (
            pytest.approx(0.16)
        )

    def test_optical_hosts_map(self):
        chain = make_chain(("nat", "firewall"))
        placement = ChainPlacement(
            chain=chain,
            assignments=(
                PlacedVnf(0, chain.functions[0], Domain.OPTICAL, "ops-1"),
                PlacedVnf(1, chain.functions[1], Domain.ELECTRONIC, None),
            ),
        )
        assert placement.optical_hosts() == {0: "ops-1"}


class TestAllElectronic:
    def test_everything_electronic(self):
        solver = PlacementSolver(pool())
        placement = solver.solve(
            make_chain(("nat", "firewall")), PlacementAlgorithm.ALL_ELECTRONIC
        )
        assert placement.optical_count == 0
        assert placement.conversions == 2


class TestGreedyPerVisit:
    def test_packs_everything_that_fits(self):
        solver = PlacementSolver(pool())
        placement = solver.solve(make_chain(("nat", "firewall", "nat")))
        assert placement.optical_count == 3
        assert placement.conversions == 0

    def test_heavy_function_stays_electronic(self):
        solver = PlacementSolver(pool())
        placement = solver.solve(make_chain(("nat", "dpi", "firewall")))
        assert placement.conversions == 1
        domains = placement.domains()
        assert domains[1] is Domain.ELECTRONIC

    def test_empty_pool_places_nothing(self):
        solver = PlacementSolver({})
        placement = solver.solve(make_chain(("nat", "firewall")))
        assert placement.optical_count == 0

    def test_cheapest_first_under_scarcity(self):
        # Capacity for NAT (0.5 cpu) but not security-gateway (2 cpu).
        solver = PlacementSolver(pool(cpu=1, count=1))
        placement = solver.solve(
            make_chain(("security-gateway", "nat"))
        )
        assert placement.domains() == [Domain.ELECTRONIC, Domain.OPTICAL]

    def test_capacity_respected_across_positions(self):
        # One router with 1 cpu: only two 0.5-cpu NATs fit.
        solver = PlacementSolver(pool(cpu=1, memory=8, storage=64, count=1))
        placement = solver.solve(make_chain(("nat", "nat", "nat")))
        assert placement.optical_count == 2

    def test_optical_incapable_functions_never_moved(self):
        from repro.nfv.functions import NetworkFunctionType

        catalog = FunctionCatalog.standard()
        catalog.register(
            NetworkFunctionType(
                "legacy",
                ResourceVector(cpu_cores=0.1),
                optical_capable=False,
            )
        )
        chain = NetworkFunctionChain.from_names(
            "chain-l", ("legacy", "nat"), catalog
        )
        placement = PlacementSolver(pool()).solve(chain)
        assert placement.domains()[0] is Domain.ELECTRONIC
        assert placement.domains()[1] is Domain.OPTICAL


class TestGreedyMergedRuns:
    def test_whole_run_moves_together(self):
        solver = PlacementSolver(pool(), merge_consecutive=True)
        placement = solver.solve(make_chain(("nat", "firewall")))
        # Under excursion semantics the only way to save is to move the
        # entire [nat, firewall] run.
        assert placement.optical_count == 2
        assert placement.conversions == 0

    def test_unmovable_run_left_alone(self):
        # DPI pins the excursion: moving its neighbours saves nothing.
        solver = PlacementSolver(pool(), merge_consecutive=True)
        placement = solver.solve(make_chain(("nat", "dpi", "firewall")))
        assert placement.conversions == 1
        assert placement.optical_count == 0

    def test_from_scratch_single_excursion_is_already_optimal(self):
        # All-electronic is one excursion under merge semantics; with DPI
        # unpackable the excursion cannot be eliminated, so moving any
        # subset saves nothing and the greedy correctly moves nothing.
        solver = PlacementSolver(
            pool(cpu=1, count=1), merge_consecutive=True
        )
        chain = make_chain(("nat", "dpi", "security-gateway"))
        placement = solver.solve(chain)
        assert placement.optical_count == 0
        assert placement.conversions == 1

    def test_improve_moves_cheapest_feasible_run(self):
        # Before: [E, O, E] — two single-position runs around the optical
        # firewall.  Only NAT (0.5 cpu) fits the remaining capacity, so
        # exactly that run is eliminated.
        chain = make_chain(("nat", "firewall", "security-gateway"))
        before = ChainPlacement(
            chain=chain,
            assignments=(
                PlacedVnf(0, chain.functions[0], Domain.ELECTRONIC, None),
                PlacedVnf(1, chain.functions[1], Domain.OPTICAL, "ops-0"),
                PlacedVnf(2, chain.functions[2], Domain.ELECTRONIC, None),
            ),
            merge_consecutive=True,
        )
        solver = PlacementSolver(
            pool(cpu=1, count=1), merge_consecutive=True
        )
        after = solver.improve(before)
        assert after.domains() == [
            Domain.OPTICAL, Domain.OPTICAL, Domain.ELECTRONIC,
        ]
        assert before.conversions == 2
        assert after.conversions == 1


class TestRandomPlacement:
    def test_deterministic_per_seed(self):
        chain = make_chain(("nat", "firewall", "proxy"))
        first = PlacementSolver(pool(), seed=5).solve(
            chain, PlacementAlgorithm.RANDOM
        )
        second = PlacementSolver(pool(), seed=5).solve(
            chain, PlacementAlgorithm.RANDOM
        )
        assert first.optical_hosts() == second.optical_hosts()

    def test_respects_capacity(self):
        chain = make_chain(("nat",) * 6)
        placement = PlacementSolver(
            pool(cpu=1, count=1), seed=0
        ).solve(chain, PlacementAlgorithm.RANDOM)
        assert placement.optical_count <= 2


class TestOptimalPlacement:
    def test_matches_greedy_on_easy_instance(self):
        chain = make_chain(("nat", "firewall"))
        optimal = PlacementSolver(pool()).solve(
            chain, PlacementAlgorithm.OPTIMAL
        )
        greedy = PlacementSolver(pool()).solve(
            chain, PlacementAlgorithm.GREEDY
        )
        assert optimal.conversions == greedy.conversions == 0

    def test_never_worse_than_greedy(self):
        import random

        light = ("nat", "firewall", "load-balancer", "proxy",
                 "security-gateway")
        for seed in range(6):
            rng = random.Random(seed)
            names = tuple(rng.choice(light) for _ in range(5))
            chain = make_chain(names, chain_id=f"chain-{seed}")
            capacity = pool(cpu=rng.choice([1, 2, 4]), count=2)
            optimal = PlacementSolver(dict(capacity)).solve(
                chain, PlacementAlgorithm.OPTIMAL
            )
            greedy = PlacementSolver(dict(capacity)).solve(
                chain, PlacementAlgorithm.GREEDY
            )
            assert optimal.conversions <= greedy.conversions

    def test_prefers_fewer_optical_on_tie(self):
        # Everything fits, but zero conversions needs all positions; a tie
        # at equal conversions prefers fewer optical deployments.
        chain = make_chain(("nat",))
        placement = PlacementSolver(pool()).solve(
            chain, PlacementAlgorithm.OPTIMAL
        )
        assert placement.conversions == 0
        assert placement.optical_count == 1

    def test_position_limit(self):
        chain = make_chain(("nat",) * 15)
        with pytest.raises(PlacementError):
            PlacementSolver(pool()).solve(
                chain, PlacementAlgorithm.OPTIMAL
            )

    def test_bin_packing_split_across_routers(self):
        # Two 2-cpu routers; three VNFs of 1, 1, 2 cpu: feasible only by
        # packing {1, 1} together and {2} alone.
        capacity = {
            "ops-0": ResourceVector(2, 100, 100),
            "ops-1": ResourceVector(2, 100, 100),
        }
        chain = make_chain(("firewall", "load-balancer", "security-gateway"))
        placement = PlacementSolver(capacity).solve(
            chain, PlacementAlgorithm.OPTIMAL
        )
        assert placement.conversions == 0
        hosts = placement.optical_hosts()
        assert len(hosts) == 3


class TestImprove:
    def test_fig8_improvement(self):
        chain = make_chain(("nat", "firewall", "dpi"))
        firewall = CATALOG.get("firewall")
        before = ChainPlacement(
            chain=chain,
            assignments=(
                PlacedVnf(0, chain.functions[0], Domain.ELECTRONIC, None),
                PlacedVnf(1, firewall, Domain.OPTICAL, "ops-0"),
                PlacedVnf(2, chain.functions[2], Domain.ELECTRONIC, None),
            ),
        )
        remaining = {
            "ops-0": ResourceVector(4, 8, 64) - firewall.demand
        }
        after = PlacementSolver(remaining).improve(before)
        assert before.conversions == 2
        assert after.conversions == 1
        assert after.optical_count == 2

    def test_improve_keeps_existing_assignments(self):
        chain = make_chain(("nat", "firewall"))
        before = ChainPlacement(
            chain=chain,
            assignments=(
                PlacedVnf(0, chain.functions[0], Domain.OPTICAL, "ops-9"),
                PlacedVnf(1, chain.functions[1], Domain.ELECTRONIC, None),
            ),
        )
        after = PlacementSolver(pool()).improve(before)
        assert after.optical_hosts()[0] == "ops-9"
        assert after.optical_count == 2

    def test_improve_with_no_capacity_is_identity(self):
        chain = make_chain(("nat", "firewall"))
        before = PlacementSolver({}).solve(
            chain, PlacementAlgorithm.ALL_ELECTRONIC
        )
        after = PlacementSolver({}).improve(before)
        assert after.domains() == before.domains()

    def test_improve_merged_moves_whole_runs(self):
        chain = make_chain(("nat", "firewall", "dpi"))
        before = PlacementSolver({}, merge_consecutive=True).solve(
            chain, PlacementAlgorithm.ALL_ELECTRONIC
        )
        after = PlacementSolver(
            pool(), merge_consecutive=True
        ).improve(before)
        # The run [nat, firewall, dpi] contains DPI (unpackable), so
        # nothing moves under excursion semantics.
        assert after.optical_count == 0

    def test_improve_merged_rejects_tie_objective_moves(self):
        # Regression: moving either flanking VNF around the unpackable
        # DPI leaves the excursion count at 1 — a tie, not an
        # improvement.  Tie swaps used to be committed, burning
        # capacity and letting repeated improve() calls cycle.
        chain = make_chain(("nat", "dpi", "firewall"))
        base = PlacementSolver({}, merge_consecutive=True).solve(
            chain, PlacementAlgorithm.ALL_ELECTRONIC
        )
        solver = PlacementSolver(pool(), merge_consecutive=True)
        after = solver.improve(base)
        assert after.conversions == base.conversions
        assert after.optical_count == 0

    def test_improve_converges_on_repeated_calls(self):
        # Repeated improve() on one solver reaches a fixed point: the
        # second call sees the same placement and identical domains.
        chain = make_chain(("nat", "dpi", "firewall"))
        base = PlacementSolver({}, merge_consecutive=True).solve(
            chain, PlacementAlgorithm.ALL_ELECTRONIC
        )
        solver = PlacementSolver(pool(), merge_consecutive=True)
        once = solver.improve(base)
        twice = solver.improve(once)
        assert twice.domains() == once.domains()
        assert twice.optical_hosts() == once.optical_hosts()

    def test_improve_commits_consumed_capacity(self):
        # Regression: committed moves must be deducted from the
        # solver's own snapshot — a second improve() from the same
        # starting placement must not re-spend the capacity the first
        # call consumed.
        capacity = {"ops-0": ResourceVector(2, 4, 8)}  # one run's worth
        chain = make_chain(("nat", "firewall"))
        base = PlacementSolver({}, merge_consecutive=True).solve(
            chain, PlacementAlgorithm.ALL_ELECTRONIC
        )
        solver = PlacementSolver(capacity, merge_consecutive=True)
        first = solver.improve(base)
        assert first.optical_count == 2
        assert first.conversions == 0
        second = solver.improve(base)
        assert second.optical_count == 0  # snapshot already spent


class TestHostPolicy:
    def _pool4(self):
        return {
            f"ops-{i}": ResourceVector(4, 16, 64) for i in range(4)
        }

    def test_first_fit_consolidates(self):
        chain = make_chain(("nat", "firewall", "load-balancer", "proxy"))
        placement = PlacementSolver(self._pool4()).solve(chain)
        assert placement.optical_host_count == 1

    def test_worst_fit_spreads(self):
        from repro.core.placement import HostPolicy

        chain = make_chain(("nat", "firewall", "load-balancer", "proxy"))
        placement = PlacementSolver(
            self._pool4(), host_policy=HostPolicy.WORST_FIT
        ).solve(chain)
        assert placement.optical_host_count == 4

    def test_best_fit_prefers_tightest(self):
        from repro.core.placement import HostPolicy

        capacity = {
            "ops-0": ResourceVector(8, 64, 64),
            "ops-1": ResourceVector(1, 64, 64),  # tight but sufficient
        }
        chain = make_chain(("nat",))  # 0.5 cpu
        placement = PlacementSolver(
            capacity, host_policy=HostPolicy.BEST_FIT
        ).solve(chain)
        assert placement.optical_hosts()[0] == "ops-1"

    def test_policy_never_changes_conversions(self):
        from repro.core.placement import HostPolicy

        chain = make_chain(
            ("nat", "firewall", "dpi", "load-balancer", "proxy")
        )
        results = {
            policy: PlacementSolver(
                self._pool4(), host_policy=policy
            ).solve(chain).conversions
            for policy in HostPolicy
        }
        assert len(set(results.values())) == 1

    def test_worst_fit_balances_load(self):
        from repro.core.placement import HostPolicy

        chain = make_chain(("nat",) * 4)
        pool = self._pool4()
        placement = PlacementSolver(
            dict(pool), host_policy=HostPolicy.WORST_FIT
        ).solve(chain)
        hosts = list(placement.optical_hosts().values())
        # Four equal routers, four equal VNFs: one each.
        assert sorted(hosts) == sorted(pool)
