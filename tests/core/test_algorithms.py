"""Tests for the covering algorithms."""

import random

import networkx as nx
import pytest

from repro.core.algorithms import (
    bipartite_min_vertex_cover,
    exact_min_cover,
    greedy_marginal_cover,
    greedy_max_weight_cover,
    natural_sort_key,
    random_cover,
)
from repro.exceptions import CoverInfeasibleError, ValidationError


UNIVERSE = frozenset({"a", "b", "c", "d"})
CANDIDATES = {
    "tor-0": frozenset({"a", "b"}),
    "tor-1": frozenset({"b", "c"}),
    "tor-2": frozenset({"c", "d"}),
    "tor-3": frozenset({"a", "b", "c", "d"}),
}


class TestNaturalSortKey:
    def test_numeric_before_lexicographic(self):
        items = ["tor-10", "tor-2", "tor-1"]
        assert sorted(items, key=natural_sort_key) == [
            "tor-1",
            "tor-2",
            "tor-10",
        ]

    def test_prefix_groups(self):
        items = ["tor-1", "ops-2", "ops-1"]
        assert sorted(items, key=natural_sort_key) == [
            "ops-1",
            "ops-2",
            "tor-1",
        ]

    def test_non_indexed_ids_sort_after(self):
        assert sorted(
            ["tor-extra", "tor-1"], key=natural_sort_key
        ) == ["tor-1", "tor-extra"]


class TestGreedyMaxWeight:
    def test_highest_weight_first(self):
        weights = {"tor-0": 1, "tor-1": 2, "tor-2": 3, "tor-3": 10}
        result = greedy_max_weight_cover(UNIVERSE, CANDIDATES, weights)
        assert result.selected == ("tor-3",)

    def test_skips_redundant_candidates(self):
        weights = {"tor-0": 4, "tor-1": 3, "tor-2": 2, "tor-3": 1}
        result = greedy_max_weight_cover(UNIVERSE, CANDIDATES, weights)
        # tor-0 covers {a,b}; tor-1 adds c; tor-2 adds d; all selected.
        assert result.selected == ("tor-0", "tor-1", "tor-2")

    def test_skip_recorded_in_trace(self):
        candidates = {
            "tor-0": frozenset({"a", "b"}),
            "tor-1": frozenset({"a", "b"}),  # fully redundant
            "tor-2": frozenset({"c", "d"}),
        }
        weights = {"tor-0": 3, "tor-1": 2, "tor-2": 1}
        result = greedy_max_weight_cover(UNIVERSE, candidates, weights)
        assert result.selected == ("tor-0", "tor-2")
        skipped = [s for s in result.steps if not s.selected]
        assert [s.candidate for s in skipped] == ["tor-1"]

    def test_stops_once_covered(self):
        weights = {"tor-3": 10, "tor-0": 3, "tor-1": 2, "tor-2": 1}
        result = greedy_max_weight_cover(UNIVERSE, CANDIDATES, weights)
        # tor-3 covers everything; the others are never considered.
        assert result.considered_order() == ["tor-3"]

    def test_tie_break_by_natural_id(self):
        candidates = {
            "tor-2": frozenset({"a"}),
            "tor-10": frozenset({"a"}),
        }
        result = greedy_max_weight_cover(
            {"a"}, candidates, {"tor-2": 1, "tor-10": 1}
        )
        assert result.selected == ("tor-2",)

    def test_infeasible_raises(self):
        with pytest.raises(CoverInfeasibleError) as info:
            greedy_max_weight_cover(
                {"a", "z"}, {"tor-0": frozenset({"a"})}, {"tor-0": 1}
            )
        assert info.value.uncovered == frozenset({"z"})

    def test_empty_universe_selects_nothing(self):
        weights = {name: 1 for name in CANDIDATES}
        result = greedy_max_weight_cover(frozenset(), CANDIDATES, weights)
        assert result.selected == ()

    def test_missing_weight_raises(self):
        weights = {name: 1 for name in CANDIDATES}
        weights.pop("tor-2")
        with pytest.raises(ValidationError) as info:
            greedy_max_weight_cover(UNIVERSE, CANDIDATES, weights)
        assert "tor-2" in str(info.value)

    def test_missing_weights_listed_in_order(self):
        with pytest.raises(ValidationError) as info:
            greedy_max_weight_cover(UNIVERSE, CANDIDATES, {})
        message = str(info.value)
        assert message.index("tor-0") < message.index("tor-3")

    def test_covered_matches_universe(self):
        weights = {name: 1 for name in CANDIDATES}
        result = greedy_max_weight_cover(UNIVERSE, CANDIDATES, weights)
        assert result.covered() == UNIVERSE


class TestGreedyMarginal:
    def test_picks_largest_gain(self):
        result = greedy_marginal_cover(UNIVERSE, CANDIDATES)
        assert result.selected == ("tor-3",)

    def test_gain_recomputed_each_round(self):
        candidates = {
            "s1": frozenset({"a", "b", "c"}),
            "s2": frozenset({"b", "c", "d"}),
            "s3": frozenset({"d", "e"}),
        }
        result = greedy_marginal_cover({"a", "b", "c", "d", "e"}, candidates)
        # s1 (gain 3) then s3 (gain 2, vs s2's remaining gain 1).
        assert result.selected == ("s1", "s3")

    def test_tie_break_deterministic(self):
        candidates = {
            "s2": frozenset({"a"}),
            "s1": frozenset({"a"}),
        }
        result = greedy_marginal_cover({"a"}, candidates)
        assert result.selected == ("s1",)

    def test_infeasible_raises(self):
        with pytest.raises(CoverInfeasibleError):
            greedy_marginal_cover({"a", "z"}, {"s": frozenset({"a"})})


class TestRandomCover:
    def test_deterministic_per_seed(self):
        first = random_cover(UNIVERSE, CANDIDATES, random.Random(5))
        second = random_cover(UNIVERSE, CANDIDATES, random.Random(5))
        assert first.selected == second.selected

    def test_valid_cover(self):
        for seed in range(10):
            result = random_cover(UNIVERSE, CANDIDATES, random.Random(seed))
            assert result.covered() == UNIVERSE

    def test_never_selects_useless_candidate(self):
        for seed in range(10):
            result = random_cover(UNIVERSE, CANDIDATES, random.Random(seed))
            for step in result.steps:
                if step.selected:
                    assert step.newly_covered

    def test_infeasible_raises(self):
        with pytest.raises(CoverInfeasibleError):
            random_cover(
                {"a", "z"}, {"s": frozenset({"a"})}, random.Random(0)
            )


class TestExactMinCover:
    def test_finds_minimum(self):
        result = exact_min_cover(UNIVERSE, CANDIDATES)
        assert result.size == 1
        assert result.selected == ("tor-3",)

    def test_two_set_minimum(self):
        candidates = {
            "s1": frozenset({"a", "b"}),
            "s2": frozenset({"c", "d"}),
            "s3": frozenset({"a", "c"}),
            "s4": frozenset({"b", "d"}),
        }
        result = exact_min_cover(UNIVERSE, candidates)
        assert result.size == 2

    def test_never_larger_than_greedy(self):
        rng = random.Random(0)
        for _ in range(20):
            universe = frozenset(range(8))
            candidates = {
                f"s{i}": frozenset(rng.sample(range(8), rng.randint(1, 4)))
                for i in range(8)
            }
            coverable = frozenset().union(*candidates.values())
            if coverable != universe:
                continue
            exact = exact_min_cover(universe, candidates)
            greedy = greedy_marginal_cover(universe, candidates)
            assert exact.size <= greedy.size

    def test_candidate_limit(self):
        candidates = {f"s{i}": frozenset({"a"}) for i in range(30)}
        with pytest.raises(ValueError):
            exact_min_cover({"a"}, candidates)

    def test_empty_universe(self):
        assert exact_min_cover(frozenset(), CANDIDATES).size == 0

    def test_infeasible_raises(self):
        with pytest.raises(CoverInfeasibleError):
            exact_min_cover({"a", "z"}, {"s": frozenset({"a"})})


class TestBipartiteMinVertexCover:
    def test_star_graph(self):
        graph = nx.Graph()
        for leaf in ("m1", "m2", "m3"):
            graph.add_edge("tor", leaf)
        cover = bipartite_min_vertex_cover(graph, {"tor"})
        assert cover == {"tor"}

    def test_koenig_equals_matching_size(self):
        graph = nx.Graph()
        edges = [
            ("t0", "m0"), ("t0", "m1"), ("t1", "m1"), ("t1", "m2"),
            ("t2", "m2"), ("t2", "m3"),
        ]
        graph.add_edges_from(edges)
        top = {"t0", "t1", "t2"}
        cover = bipartite_min_vertex_cover(graph, top)
        matching = nx.algorithms.bipartite.hopcroft_karp_matching(graph, top)
        assert len(cover) == len(matching) // 2
        # Every edge is covered.
        for a, b in edges:
            assert a in cover or b in cover

    def test_empty_graph(self):
        assert bipartite_min_vertex_cover(nx.Graph(), set()) == set()
