"""Tests for abstraction-layer construction, including Fig. 4."""

import pytest

from repro.core.abstraction_layer import (
    AlConstructionStrategy,
    AlConstructor,
)
from repro.exceptions import CoverInfeasibleError, TopologyError


class TestFig4WorkedExample:
    """The paper's Section III.C walk-through, step by step."""

    @pytest.fixture
    def layer(self, paper_dcn):
        constructor = AlConstructor(paper_dcn)
        return constructor.construct_for_servers(
            "cluster-fig4", paper_dcn.servers()
        )

    def test_tor1_selected_first(self, layer):
        # "our algorithm selects first ToR 1 as it has four incoming
        # connections and two outgoing".
        first_step = layer.tor_trace.steps[0]
        assert first_step.candidate == "tor-0"
        assert first_step.weight == 6
        assert first_step.selected

    def test_tor2_tried_and_skipped(self, layer):
        # "After this, it tries to select ToR 2 and notices that machines
        # against this switch are already connected by ToR 1."
        second_step = layer.tor_trace.steps[1]
        assert second_step.candidate == "tor-1"
        assert not second_step.selected
        assert second_step.newly_covered == frozenset()

    def test_tor3_completes_cover(self, layer):
        # "Next, it selects TOR 3 and notice that all the machines are
        # being covered."
        third_step = layer.tor_trace.steps[2]
        assert third_step.candidate == "tor-2"
        assert third_step.selected
        assert layer.tor_trace.selection_order() == ["tor-0", "tor-2"]

    def test_tor_n_never_considered(self, layer):
        assert "tor-3" not in layer.tor_trace.considered_order()

    def test_ops_stage_covers_selected_tors(self, layer, paper_dcn):
        for tor in layer.tor_ids:
            assert set(paper_dcn.ops_of_tor(tor)) & layer.ops_ids

    def test_final_al(self, layer):
        assert sorted(layer.ops_ids) == ["ops-0", "ops-2"]
        assert layer.size == 2

    def test_al_size_is_minimum(self, paper_dcn):
        exact = AlConstructor(
            paper_dcn, strategy=AlConstructionStrategy.EXACT
        ).construct_for_servers("cluster-x", paper_dcn.servers())
        greedy = AlConstructor(paper_dcn).construct_for_servers(
            "cluster-x", paper_dcn.servers()
        )
        assert greedy.size == exact.size

    def test_connects_predicate(self, layer, paper_dcn):
        for server in paper_dcn.servers():
            assert layer.connects(paper_dcn.tors_of_server(server))
        assert not layer.connects(["tor-3"])


class TestCoverageInvariant:
    @pytest.mark.parametrize("strategy", list(AlConstructionStrategy))
    def test_every_machine_reachable(self, small_fabric, strategy):
        constructor = AlConstructor(small_fabric, strategy=strategy, seed=1)
        layer = constructor.construct_for_servers(
            "cluster-x", small_fabric.servers()
        )
        for server in small_fabric.servers():
            tors = set(small_fabric.tors_of_server(server))
            assert tors & layer.tor_ids, f"{server} not covered"
        for tor in layer.tor_ids:
            assert set(small_fabric.ops_of_tor(tor)) & layer.ops_ids

    @pytest.mark.parametrize("strategy", list(AlConstructionStrategy))
    def test_subset_of_machines(self, small_fabric, strategy):
        servers = small_fabric.servers()[:4]
        constructor = AlConstructor(small_fabric, strategy=strategy, seed=2)
        layer = constructor.construct_for_servers("cluster-x", servers)
        for server in servers:
            assert set(small_fabric.tors_of_server(server)) & layer.tor_ids


class TestAvailableOpsRestriction:
    def test_restricted_pool_respected(self, paper_dcn):
        constructor = AlConstructor(paper_dcn)
        layer = constructor.construct_for_servers(
            "cluster-x",
            paper_dcn.servers(),
            available_ops=["ops-1", "ops-2", "ops-3"],
        )
        assert layer.ops_ids <= {"ops-1", "ops-2", "ops-3"}

    def test_exhausted_pool_raises(self, paper_dcn):
        constructor = AlConstructor(paper_dcn)
        # ops-1 cannot reach tor-2/tor-3's machines side: tor-2 uplinks
        # are ops-2/ops-3 only, so covering the selected ToRs fails.
        with pytest.raises(CoverInfeasibleError):
            constructor.construct_for_servers(
                "cluster-x", paper_dcn.servers(), available_ops=["ops-1"]
            )

    def test_weight_counts_only_available_uplinks(self, paper_dcn):
        constructor = AlConstructor(paper_dcn)
        # With ops-0 removed from the pool, tor-0's weight drops to 5
        # (4 machines + 1 uplink).
        layer = constructor.construct_for_servers(
            "cluster-x",
            paper_dcn.servers(),
            available_ops=["ops-1", "ops-2", "ops-3"],
        )
        first = layer.tor_trace.steps[0]
        assert first.candidate == "tor-0"
        assert first.weight == 5


class TestErrors:
    def test_empty_cluster_rejected(self, paper_dcn):
        with pytest.raises(TopologyError):
            AlConstructor(paper_dcn).construct("cluster-x", {})

    def test_machine_without_tor_infeasible(self, paper_dcn):
        with pytest.raises(CoverInfeasibleError):
            AlConstructor(paper_dcn).construct(
                "cluster-x", {"vm-0": []}
            )


class TestStrategies:
    def test_random_varies_with_seed(self, medium_fabric):
        sizes = set()
        for seed in range(8):
            layer = AlConstructor(
                medium_fabric,
                strategy=AlConstructionStrategy.RANDOM,
                seed=seed,
            ).construct_for_servers("cluster-x", medium_fabric.servers())
            sizes.add(tuple(sorted(layer.ops_ids)))
        assert len(sizes) > 1

    def test_greedy_deterministic(self, medium_fabric):
        layers = [
            AlConstructor(medium_fabric).construct_for_servers(
                "cluster-x", medium_fabric.servers()
            )
            for _ in range(2)
        ]
        assert layers[0].ops_ids == layers[1].ops_ids

    def test_exact_never_larger_than_others(self, small_fabric):
        exact = AlConstructor(
            small_fabric, strategy=AlConstructionStrategy.EXACT
        ).construct_for_servers("cluster-x", small_fabric.servers())
        for strategy in (
            AlConstructionStrategy.VERTEX_COVER_GREEDY,
            AlConstructionStrategy.MARGINAL_GREEDY,
            AlConstructionStrategy.RANDOM,
        ):
            other = AlConstructor(
                small_fabric, strategy=strategy, seed=3
            ).construct_for_servers("cluster-x", small_fabric.servers())
            assert exact.size <= other.size

    def test_strategy_recorded_on_layer(self, small_fabric):
        layer = AlConstructor(
            small_fabric, strategy=AlConstructionStrategy.MARGINAL_GREEDY
        ).construct_for_servers("cluster-x", small_fabric.servers())
        assert layer.strategy is AlConstructionStrategy.MARGINAL_GREEDY


class TestInDegreeAblation:
    """DESIGN.md §6: in-degree-only weight ablation of the greedy."""

    def test_valid_cover(self, medium_fabric):
        layer = AlConstructor(
            medium_fabric,
            strategy=AlConstructionStrategy.IN_DEGREE_GREEDY,
        ).construct_for_servers("cluster-x", medium_fabric.servers())
        for server in medium_fabric.servers():
            assert set(medium_fabric.tors_of_server(server)) & layer.tor_ids

    def test_can_differ_from_full_weight(self, paper_dcn):
        # On Fig. 4 the in-degree order is the same (tor-0 still wins on
        # 4 machines), so both converge to the same AL — the ablation
        # differs on fabrics where OPS degree breaks ties.
        full = AlConstructor(paper_dcn).construct_for_servers(
            "cluster-x", paper_dcn.servers()
        )
        ablated = AlConstructor(
            paper_dcn, strategy=AlConstructionStrategy.IN_DEGREE_GREEDY
        ).construct_for_servers("cluster-x", paper_dcn.servers())
        assert ablated.ops_ids == full.ops_ids

    def test_weight_excludes_uplinks(self, paper_dcn):
        layer = AlConstructor(
            paper_dcn, strategy=AlConstructionStrategy.IN_DEGREE_GREEDY
        ).construct_for_servers("cluster-x", paper_dcn.servers())
        first = layer.tor_trace.steps[0]
        assert first.candidate == "tor-0"
        assert first.weight == 4  # machines only, no +2 uplinks

    def test_exact_still_lower_bound(self, small_fabric):
        exact = AlConstructor(
            small_fabric, strategy=AlConstructionStrategy.EXACT
        ).construct_for_servers("cluster-x", small_fabric.servers())
        ablated = AlConstructor(
            small_fabric,
            strategy=AlConstructionStrategy.IN_DEGREE_GREEDY,
        ).construct_for_servers("cluster-x", small_fabric.servers())
        assert exact.size <= ablated.size
