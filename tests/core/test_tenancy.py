"""Tests for tenant quotas and the quota-enforcing facade."""

import math

import pytest

from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.orchestrator import NetworkOrchestrator
from repro.core.tenancy import (
    QuotaExceededError,
    QuotaGuard,
    Tenant,
    TenantRegistry,
)
from repro.exceptions import DuplicateEntityError, UnknownEntityError
from repro.nfv.functions import FunctionCatalog


CATALOG = FunctionCatalog.standard()


def make_request(tenant, names=("firewall", "nat"), service="web",
                 chain_id="chain-0"):
    chain = NetworkFunctionChain.from_names(chain_id, names, CATALOG)
    return ChainRequest(tenant=tenant, chain=chain, service=service)


@pytest.fixture
def guard(populated_inventory):
    orchestrator = NetworkOrchestrator(
        populated_inventory, exclusive_chains=False
    )
    for service in ("web", "map-reduce", "sns"):
        orchestrator.cluster_manager.create_cluster(service)
    registry = TenantRegistry()
    registry.register(Tenant("gold", max_chains=3, max_vnfs=6))
    registry.register(Tenant("bronze", max_chains=1, max_vnfs=2))
    registry.register(Tenant("capped", max_optical_cpu=1.0))
    return QuotaGuard(registry, orchestrator), registry


class TestTenant:
    def test_defaults_unlimited(self):
        tenant = Tenant("any")
        assert tenant.max_chains == math.inf

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Tenant("")

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            Tenant("x", max_chains=-1)


class TestRegistry:
    def test_duplicate_rejected(self):
        registry = TenantRegistry()
        registry.register(Tenant("a"))
        with pytest.raises(DuplicateEntityError):
            registry.register(Tenant("a"))

    def test_unknown_tenant_raises(self):
        with pytest.raises(UnknownEntityError):
            TenantRegistry().get("ghost")

    def test_charge_and_credit(self):
        registry = TenantRegistry()
        registry.register(Tenant("a"))
        registry.charge("a", chains=1, vnfs=3, optical_cpu=2.0)
        usage = registry.usage_of("a")
        assert (usage.chains, usage.vnfs, usage.optical_cpu) == (1, 3, 2.0)
        registry.credit("a", chains=1, vnfs=3, optical_cpu=2.0)
        usage = registry.usage_of("a")
        assert (usage.chains, usage.vnfs, usage.optical_cpu) == (0, 0, 0.0)

    def test_credit_never_negative(self):
        registry = TenantRegistry()
        registry.register(Tenant("a"))
        registry.credit("a", chains=5, vnfs=5, optical_cpu=5.0)
        usage = registry.usage_of("a")
        assert usage.chains == 0
        assert usage.optical_cpu == 0.0


class TestQuotaGuard:
    def test_provision_charges_usage(self, guard):
        facade, registry = guard
        facade.provision_chain(make_request("gold"))
        usage = registry.usage_of("gold")
        assert usage.chains == 1
        assert usage.vnfs == 2
        assert usage.optical_cpu > 0

    def test_chain_quota_enforced(self, guard):
        facade, _ = guard
        facade.provision_chain(make_request("bronze"))
        with pytest.raises(QuotaExceededError):
            facade.provision_chain(
                make_request("bronze", service="sns", chain_id="chain-1")
            )
        # Nothing was allocated for the refused chain.
        assert len(facade.orchestrator.chains()) == 1

    def test_vnf_quota_enforced(self, guard):
        facade, _ = guard
        with pytest.raises(QuotaExceededError):
            facade.provision_chain(
                make_request(
                    "bronze",
                    names=("firewall", "nat", "proxy"),
                )
            )

    def test_optical_cpu_quota_enforced(self, guard):
        facade, _ = guard
        # firewall (1 cpu) + nat (0.5 cpu) optical = 1.5 > 1.0 cap.
        with pytest.raises(QuotaExceededError):
            facade.provision_chain(make_request("capped"))

    def test_delete_credits_usage(self, guard):
        facade, registry = guard
        live = facade.provision_chain(make_request("bronze"))
        facade.delete_chain(live.chain_id)
        usage = registry.usage_of("bronze")
        assert usage.chains == 0
        # Quota freed: the tenant can provision again.
        facade.provision_chain(
            make_request("bronze", chain_id="chain-2")
        )

    def test_unknown_tenant_rejected_before_allocation(self, guard):
        facade, _ = guard
        with pytest.raises(UnknownEntityError):
            facade.provision_chain(make_request("ghost"))
        assert facade.orchestrator.chains() == []

    def test_usage_report(self, guard):
        facade, _ = guard
        facade.provision_chain(make_request("gold"))
        rows = facade.usage_report()
        by_tenant = {row["tenant"]: row for row in rows}
        assert by_tenant["gold"]["chains"] == 1
        assert by_tenant["bronze"]["chains"] == 0
        assert by_tenant["gold"]["max_chains"] == 3
