"""Tests for network function chains."""

import pytest

from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.exceptions import ChainValidationError
from repro.nfv.functions import FunctionCatalog
from repro.topology.elements import ResourceVector


@pytest.fixture
def chain(function_catalog):
    return NetworkFunctionChain.from_names(
        "chain-0", ("firewall", "dpi", "load-balancer"), function_catalog
    )


class TestConstruction:
    def test_from_names(self, chain):
        assert chain.function_names == ("firewall", "dpi", "load-balancer")
        assert len(chain) == 3

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainValidationError):
            NetworkFunctionChain(chain_id="chain-0", functions=())

    def test_zero_bandwidth_rejected(self, function_catalog):
        with pytest.raises(ChainValidationError):
            NetworkFunctionChain.from_names(
                "chain-0", ("nat",), function_catalog, bandwidth_gbps=0
            )

    def test_repeated_function_allowed(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0", ("firewall", "firewall"), function_catalog
        )
        assert len(chain) == 2

    def test_iteration(self, chain):
        names = [function.name for function in chain]
        assert names == ["firewall", "dpi", "load-balancer"]

    def test_unknown_function_raises(self, function_catalog):
        from repro.exceptions import UnknownEntityError

        with pytest.raises(UnknownEntityError):
            NetworkFunctionChain.from_names(
                "chain-0", ("nope",), function_catalog
            )


class TestAccessors:
    def test_total_demand(self, chain, function_catalog):
        expected = ResourceVector.total(
            function_catalog.get(name).demand
            for name in ("firewall", "dpi", "load-balancer")
        )
        assert chain.total_demand() == expected

    def test_positions_of(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0", ("nat", "firewall", "nat"), function_catalog
        )
        assert chain.positions_of("nat") == [0, 2]
        assert chain.positions_of("firewall") == [1]
        assert chain.positions_of("dpi") == []


class TestForwardingGraph:
    def test_linear_dag(self, chain):
        graph = chain.forwarding_graph()
        assert graph.number_of_nodes() == 5  # ingress + 3 + egress
        assert graph.number_of_edges() == 4

    def test_order_follows_chain(self, chain):
        graph = chain.forwarding_graph()
        assert graph.has_edge("ingress", (0, "firewall"))
        assert graph.has_edge((0, "firewall"), (1, "dpi"))
        assert graph.has_edge((2, "load-balancer"), "egress")

    def test_is_acyclic(self, chain):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(chain.forwarding_graph())

    def test_repeated_functions_get_distinct_nodes(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0", ("nat", "nat"), function_catalog
        )
        graph = chain.forwarding_graph()
        assert (0, "nat") in graph
        assert (1, "nat") in graph


class TestChainRequest:
    def test_valid_request(self, chain):
        request = ChainRequest(
            tenant="tenant-0", chain=chain, service="web", flow_size_gb=2.0
        )
        assert request.flow_size_gb == 2.0

    def test_zero_flow_size_rejected(self, chain):
        with pytest.raises(ChainValidationError):
            ChainRequest(
                tenant="tenant-0", chain=chain, service="web",
                flow_size_gb=0,
            )


class TestConstraintKnobs:
    def test_partial_order_adds_precedence_edges(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0",
            ("firewall", "dpi", "load-balancer"),
            function_catalog,
            partial_order=((0, 2),),
        )
        graph = chain.forwarding_graph()
        edge = graph.edges[(0, "firewall"), (2, "load-balancer")]
        assert edge["constraint"] == "precedence"

    def test_partial_order_must_follow_processing_order(
        self, function_catalog
    ):
        with pytest.raises(ChainValidationError):
            NetworkFunctionChain.from_names(
                "chain-0",
                ("firewall", "dpi"),
                function_catalog,
                partial_order=((1, 0),),
            )
        with pytest.raises(ChainValidationError):
            NetworkFunctionChain.from_names(
                "chain-0",
                ("firewall", "dpi"),
                function_catalog,
                partial_order=((0, 0),),
            )

    def test_knob_positions_are_range_checked(self, function_catalog):
        with pytest.raises(ChainValidationError):
            NetworkFunctionChain.from_names(
                "chain-0", ("firewall",), function_catalog,
                partial_order=((0, 5),),
            )
        with pytest.raises(ChainValidationError):
            NetworkFunctionChain.from_names(
                "chain-0", ("firewall", "dpi"), function_catalog,
                anti_affinity=((0, 9),),
            )

    def test_anti_affinity_rejects_self_pair(self, function_catalog):
        with pytest.raises(ChainValidationError):
            NetworkFunctionChain.from_names(
                "chain-0", ("firewall", "dpi"), function_catalog,
                anti_affinity=((1, 1),),
            )

    def test_anti_affinity_conflicts_are_symmetric(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0",
            ("firewall", "dpi", "load-balancer"),
            function_catalog,
            anti_affinity=((0, 2), (1, 2)),
        )
        assert chain.anti_affinity_conflicts() == {
            0: frozenset({2}),
            1: frozenset({2}),
            2: frozenset({0, 1}),
        }

    def test_from_names_coerces_pairs_to_int_tuples(self, function_catalog):
        chain = NetworkFunctionChain.from_names(
            "chain-0",
            ("firewall", "dpi"),
            function_catalog,
            partial_order=[[0, 1]],
            anti_affinity=[("0", "1")],
        )
        assert chain.partial_order == ((0, 1),)
        assert chain.anti_affinity == ((0, 1),)


class TestSpecRoundTrip:
    def test_knobs_survive_spec_round_trip(self, function_catalog):
        from repro.service.records import chain_from_spec, chain_to_spec

        chain = NetworkFunctionChain.from_names(
            "chain-0",
            ("firewall", "dpi", "load-balancer"),
            function_catalog,
            bandwidth_gbps=5.0,
            partial_order=((0, 2),),
            anti_affinity=((1, 2),),
        )
        rebuilt = chain_from_spec(chain_to_spec(chain))
        assert rebuilt == chain
        assert rebuilt.partial_order == ((0, 2),)
        assert rebuilt.anti_affinity == ((1, 2),)

    def test_legacy_specs_without_knobs_still_load(self, function_catalog):
        from repro.service.records import chain_from_spec, chain_to_spec

        chain = NetworkFunctionChain.from_names(
            "chain-0", ("firewall",), function_catalog
        )
        spec = chain_to_spec(chain)
        del spec["partial_order"]
        del spec["anti_affinity"]
        rebuilt = chain_from_spec(spec)
        assert rebuilt.partial_order == ()
        assert rebuilt.anti_affinity == ()
