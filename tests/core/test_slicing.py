"""Tests for optical slicing."""

import pytest

from repro.core.cluster import ClusterManager
from repro.core.slicing import OpticalSlice, SliceAllocator
from repro.exceptions import SlicingError


@pytest.fixture
def clustered(populated_inventory):
    manager = ClusterManager(populated_inventory)
    clusters = [
        manager.create_cluster(service)
        for service in ("web", "map-reduce", "sns")
    ]
    return populated_inventory, clusters


class TestOpticalSlice:
    def test_empty_switch_set_rejected(self):
        with pytest.raises(SlicingError):
            OpticalSlice(
                slice_id="slice-0",
                cluster="cluster-web",
                switches=frozenset(),
                wavelength=0,
                bandwidth_gbps=1.0,
            )

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SlicingError):
            OpticalSlice(
                slice_id="slice-0",
                cluster="cluster-web",
                switches=frozenset({"ops-0"}),
                wavelength=0,
                bandwidth_gbps=0,
            )


class TestAllocation:
    def test_allocate_uses_al_switches(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        allocated = allocator.allocate(clusters[0], bandwidth_gbps=5.0)
        assert allocated.switches == clusters[0].al_switches
        assert allocated.cluster == clusters[0].cluster_id
        assert allocated.bandwidth_gbps == 5.0

    def test_one_slice_per_cluster(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        allocator.allocate(clusters[0])
        with pytest.raises(SlicingError):
            allocator.allocate(clusters[0])

    def test_disjoint_clusters_all_get_slices(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        for cluster in clusters:
            allocator.allocate(cluster)
        assert len(allocator.slices()) == 3
        allocator.verify_isolation()

    def test_overlapping_switches_rejected(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        allocator.allocate(clusters[0])
        # Forge a cluster whose "AL" overlaps the first slice.
        import dataclasses

        forged = dataclasses.replace(
            clusters[1],
            abstraction_layer=clusters[0].abstraction_layer,
        )
        with pytest.raises(SlicingError):
            allocator.allocate(forged)


class TestRelease:
    def test_release_returns_slice(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        allocated = allocator.allocate(clusters[0])
        released = allocator.release(allocated.slice_id)
        assert released.slice_id == allocated.slice_id
        assert allocator.slices() == []

    def test_release_allows_reallocation(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        allocated = allocator.allocate(clusters[0])
        allocator.release(allocated.slice_id)
        again = allocator.allocate(clusters[0])
        assert again.switches == allocated.switches

    def test_release_unknown_raises(self, clustered):
        inventory, _ = clustered
        allocator = SliceAllocator(inventory.network)
        with pytest.raises(SlicingError):
            allocator.release("slice-9")


class TestQueries:
    def test_slice_of_cluster(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        allocated = allocator.allocate(clusters[0])
        assert (
            allocator.slice_of_cluster(clusters[0].cluster_id).slice_id
            == allocated.slice_id
        )

    def test_slice_of_cluster_unknown_raises(self, clustered):
        inventory, _ = clustered
        allocator = SliceAllocator(inventory.network)
        with pytest.raises(SlicingError):
            allocator.slice_of_cluster("cluster-web")

    def test_slices_sorted(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        for cluster in clusters:
            allocator.allocate(cluster)
        names = [s.slice_id for s in allocator.slices()]
        assert names == sorted(names)


class TestPortIntegration:
    def test_ports_reserved_and_released(self, clustered):
        from repro.optical.packet_switch import PortAllocator

        inventory, clusters = clustered
        ports = PortAllocator(inventory.network)
        allocator = SliceAllocator(inventory.network, port_allocator=ports)
        allocated = allocator.allocate(clusters[0])
        for switch in allocated.switches:
            assert allocated.slice_id in ports.holders_of(switch)
        allocator.release(allocated.slice_id)
        for switch in allocated.switches:
            assert allocated.slice_id not in ports.holders_of(switch)

    def test_port_exhaustion_rolls_back_wavelength(self, clustered):
        from repro.exceptions import InsufficientResourcesError
        from repro.optical.packet_switch import PortAllocator

        inventory, clusters = clustered
        ports = PortAllocator(inventory.network)
        # Consume every free port on the first cluster's AL switches.
        for switch in clusters[0].al_switches:
            free = ports.free(switch)
            if free:
                ports.reserve(switch, "hog", free)
        allocator = SliceAllocator(inventory.network, port_allocator=ports)
        with pytest.raises(InsufficientResourcesError):
            allocator.allocate(clusters[0])
        # The wavelength was rolled back: allocation after freeing works.
        for switch in clusters[0].al_switches:
            ports.release(switch, "hog")
        allocated = allocator.allocate(clusters[0])
        assert allocated.cluster == clusters[0].cluster_id


class TestExtendSlice:
    def test_extend_adds_switches(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        allocated = allocator.allocate(clusters[0])
        free_ops = sorted(
            set(inventory.network.optical_switches())
            - {s for c in clusters for s in c.al_switches}
        )
        updated = allocator.extend(allocated.slice_id, [free_ops[0]])
        assert free_ops[0] in updated.switches
        assert updated.wavelength == allocated.wavelength
        allocator.verify_isolation()

    def test_extend_into_other_slice_rejected(self, clustered):
        inventory, clusters = clustered
        allocator = SliceAllocator(inventory.network)
        first = allocator.allocate(clusters[0])
        second = allocator.allocate(clusters[1])
        with pytest.raises(SlicingError):
            allocator.extend(first.slice_id, second.switches)

    def test_extend_unknown_slice_rejected(self, clustered):
        inventory, _ = clustered
        allocator = SliceAllocator(inventory.network)
        with pytest.raises(SlicingError):
            allocator.extend("slice-9", ["ops-0"])

    def test_extend_reserves_ports(self, clustered):
        from repro.optical.packet_switch import PortAllocator

        inventory, clusters = clustered
        ports = PortAllocator(inventory.network)
        allocator = SliceAllocator(inventory.network, port_allocator=ports)
        allocated = allocator.allocate(clusters[0])
        free_ops = sorted(
            set(inventory.network.optical_switches())
            - {s for c in clusters for s in c.al_switches}
        )
        allocator.extend(allocated.slice_id, [free_ops[0]])
        assert allocated.slice_id in ports.holders_of(free_ops[0])
