"""Unit tests for admission control, defrag, and elastic scaling."""

from __future__ import annotations

import pytest

from repro.exceptions import PlacementError, ValidationError
from repro.nfv.autoscaler import AutoscalerPolicy
from repro.stack import AlvcStack
from repro.workload import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    ElasticScaler,
)


@pytest.fixture
def loaded_stack():
    """A small stack with two live chains on separate slots."""
    stack = AlvcStack.build(
        n_racks=2,
        servers_per_rack=2,
        n_ops=4,
        vms_per_service=2,
        exclusive_chains=False,
    )
    stack.register_service("slot-00", cpu_cores=1, memory_gb=2, storage_gb=10)
    stack.register_service("slot-01", cpu_cores=1, memory_gb=2, storage_gb=10)
    stack.provision(
        ("firewall", "nat"), service="slot-00", tenant="t0", chain_id="t0-a"
    )
    stack.provision(
        ("dpi",), service="slot-01", tenant="t1", chain_id="t1-a"
    )
    return stack


class TestAdmissionPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"headroom_fraction": 1.0},
            {"headroom_fraction": -0.1},
            {"defrag_threshold": 0.0},
            {"defrag_threshold": 1.5},
            {"defrag_period": 0},
            {"defrag_batch": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            AdmissionPolicy(**kwargs)


class TestAdmission:
    def test_preflight_rejects_without_slots(self, loaded_stack):
        controller = AdmissionController(loaded_stack)
        assert controller.preflight(0) == "no-slot"

    def test_preflight_rejects_below_headroom_floor(self, loaded_stack):
        controller = AdmissionController(loaded_stack)
        observed = controller.headroom()
        assert 0 < observed < 1  # slot VMs + VNF carriers hold capacity
        tight = AdmissionController(
            loaded_stack, AdmissionPolicy(headroom_fraction=observed)
        )
        assert tight.preflight(1) == "headroom"

    def test_preflight_passes_with_slots_and_headroom(self, loaded_stack):
        controller = AdmissionController(loaded_stack)
        assert controller.preflight(1) is None

    def test_decision_log_and_acceptance_ratio(self, loaded_stack):
        controller = AdmissionController(loaded_stack)
        assert controller.acceptance_ratio() == 1.0  # vacuous
        controller.record(
            AdmissionDecision(0, "t0", admitted=True, reason="admitted")
        )
        controller.record(
            AdmissionDecision(1, "t1", admitted=False, reason="no-slot")
        )
        assert controller.acceptance_ratio() == 0.5
        labels = [d.label() for d in controller.decisions()]
        assert labels == ["0:t0:admitted", "1:t1:no-slot"]

    def test_fragmentation_counts_unusable_slivers(self, loaded_stack):
        from repro.topology.elements import ResourceVector

        none_stranded = AdmissionController(loaded_stack)
        assert none_stranded.fragmentation() == 0.0
        # Against an impossible reference VM every free core is a
        # sliver: fragmentation saturates at 1.0.
        all_stranded = AdmissionController(
            loaded_stack,
            reference_demand=ResourceVector(
                cpu_cores=10**6, memory_gb=1, storage_gb=1
            ),
        )
        assert all_stranded.fragmentation() == 1.0


class TestDefrag:
    def test_cooldown_blocks_back_to_back_passes(self, loaded_stack):
        from repro.topology.elements import ResourceVector

        controller = AdmissionController(
            loaded_stack,
            AdmissionPolicy(defrag_threshold=0.5, defrag_period=4),
            # Everything is stranded vs this reference, so the
            # threshold test is always true and only the cool-down
            # can say no.
            reference_demand=ResourceVector(cpu_cores=10**6),
        )
        assert controller.should_defrag(0)
        controller.defrag(0)
        assert not controller.should_defrag(2)  # inside the cool-down
        assert controller.should_defrag(4)

    def test_defrag_reembeds_widest_chain_first(self, loaded_stack):
        controller = AdmissionController(
            loaded_stack, AdmissionPolicy(defrag_batch=1)
        )
        chains_before = {c.chain_id for c in loaded_stack.chains()}
        moved = controller.defrag(0)
        assert moved == 1
        assert controller.reembedded == 1
        assert {c.chain_id for c in loaded_stack.chains()} == chains_before

    def test_defrag_counts_losses_when_reprovision_fails(
        self, loaded_stack, monkeypatch
    ):
        controller = AdmissionController(
            loaded_stack, AdmissionPolicy(defrag_batch=1)
        )

        def refuse(request):
            raise PlacementError("no room")

        monkeypatch.setattr(
            loaded_stack.orchestrator, "provision_chain", refuse
        )
        assert controller.defrag(0) == 0
        assert controller.reembed_losses == 1
        assert controller.reembedded == 0


class TestElasticScaler:
    def test_sustained_demand_scales_up_then_down(self, loaded_stack):
        scaler = ElasticScaler(
            loaded_stack,
            AutoscalerPolicy(observations_required=2),
        )
        for _ in range(2):
            scaler.observe_epoch({"t0-a": 1.6, "t1-a": 1.6})
        assert scaler.scale_ups > 0
        served = scaler.served_capacity("t0-a")
        assert served > 1.0
        for _ in range(2):
            scaler.observe_epoch({"t0-a": 0.05, "t1-a": 0.05})
        assert scaler.scale_downs > 0

    def test_scale_down_at_floor_is_blocked(self, loaded_stack):
        scaler = ElasticScaler(
            loaded_stack,
            AutoscalerPolicy(observations_required=2),
        )
        for _ in range(4):
            scaler.observe_epoch({"t0-a": 0.05})
        assert scaler.scale_blocked > 0
        assert scaler.served_capacity("t0-a") == 1.0

    def test_sla_violation_when_demand_outruns_bottleneck(self, loaded_stack):
        scaler = ElasticScaler(loaded_stack)
        scaler.observe_epoch({"t0-a": 2.5})
        assert scaler.sla_violations == 1
        assert scaler.observed_chain_epochs == 1

    def test_unknown_chain_is_skipped(self, loaded_stack):
        scaler = ElasticScaler(loaded_stack)
        actions = scaler.observe_epoch({"ghost": 1.0})
        assert actions == []
        assert scaler.observed_chain_epochs == 0
        assert scaler.served_capacity("ghost") == 0.0

    def test_actions_mirror_the_autoscaler_journal(self, loaded_stack):
        scaler = ElasticScaler(
            loaded_stack, AutoscalerPolicy(observations_required=1)
        )
        scaler.observe_epoch({"t0-a": 1.9})
        directions = [a.direction for a in scaler.actions()]
        assert directions.count("up") == scaler.scale_ups
