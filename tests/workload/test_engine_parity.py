"""Cross-engine churn parity: every backend makes identical decisions.

The engine selectors (:class:`~repro.config.EngineConfig`) are
implementation choices, never behaviour choices — so a whole churn run
(admissions, rejections, scaling, storms, defrag) must produce the
bit-identical decision log *and* land the control plane in the
digest-identical state on every backend:

* cover kernel ``set`` vs ``bitset`` (AL construction/repair),
* routing ``csr`` vs ``nx`` (path computation),
* solver ``greedy`` vs ``auto`` (placement; ``auto`` may route small
  instances to the exact MILPs, which certify the same optimum the
  greedy reaches on these fabrics).
"""

from __future__ import annotations

import pytest

from tests.workload.conftest import small_soak

SEEDS = (0, 7, 23)


def _soak_on(engines: dict, seed: int):
    return small_soak(
        seed,
        chaos_rate=0.15,
        storm_period=3,
        build_overrides={"engines": engines},
    )


def _assert_parity(baseline, candidate, label: str) -> None:
    assert candidate.decision_log == baseline.decision_log, (
        f"{label}: admission decisions diverged"
    )
    assert candidate.decisions_checksum == baseline.decisions_checksum
    assert candidate.state_digest == baseline.state_digest, (
        f"{label}: control-plane state diverged"
    )
    assert candidate == baseline, f"{label}: report fields diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_cover_kernel_parity_set_vs_bitset(seed):
    _, on_set = _soak_on({"cover_kernel": "set"}, seed)
    _, on_bitset = _soak_on({"cover_kernel": "bitset"}, seed)
    _assert_parity(on_set, on_bitset, "cover kernel set vs bitset")


@pytest.mark.parametrize("seed", SEEDS)
def test_routing_parity_csr_vs_nx(seed):
    _, on_csr = _soak_on({"routing": "csr"}, seed)
    _, on_nx = _soak_on({"routing": "nx"}, seed)
    _assert_parity(on_csr, on_nx, "routing csr vs nx")


@pytest.mark.parametrize("seed", SEEDS)
def test_solver_parity_greedy_vs_auto(seed):
    _, on_greedy = _soak_on({"solver": "greedy"}, seed)
    _, on_auto = _soak_on({"solver": "auto"}, seed)
    _assert_parity(on_greedy, on_auto, "solver greedy vs auto")
