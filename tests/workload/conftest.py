"""Shared machinery for the workload suites: small seeded soaks.

Every test here drives a *real* stack through the workload loop — no
mocks — on a fabric small enough that hundreds of seeded runs stay
fast.  The helpers return the stack alongside the report so invariant
probes and parity oracles can inspect live state.
"""

from __future__ import annotations

from repro.stack import AlvcStack
from repro.workload import ScenarioConfig, generate_scenario

#: A deliberately tight testbed: 4 servers, 4 OPSs, 3 tenant slots —
#: small enough that churn produces rejections, scaling and contention.
SMALL_CONFIG = dict(
    days=0.5,
    epochs_per_day=16,
    arrival_rate=0.9,
    mean_lifetime_epochs=5.0,
    slots=3,
    demand_base=0.2,
    demand_amplitude=1.2,
)

SMALL_BUILD = dict(
    n_racks=2,
    servers_per_rack=2,
    n_ops=4,
    vms_per_service=2,
    exclusive_chains=False,
)


def small_soak(
    seed: int,
    *,
    journal=None,
    epoch_hook=None,
    chaos_rate: float = 0.0,
    storm_period: int = 0,
    build_overrides: dict | None = None,
    config_overrides: dict | None = None,
):
    """One small seeded churn run; returns ``(stack, report)``."""
    config = ScenarioConfig(**{**SMALL_CONFIG, **(config_overrides or {})})
    scenario = generate_scenario(config, seed=seed)
    build = dict(SMALL_BUILD, **(build_overrides or {}))
    if journal is not None:
        build.update(journal=journal, sync="off")
    stack = AlvcStack.build(seed=seed, **build)
    report = stack.run_workload(
        scenario,
        epoch_hook=epoch_hook,
        chaos_rate=chaos_rate,
        storm_period=storm_period,
    )
    return stack, report
