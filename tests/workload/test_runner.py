"""Unit tests for the workload runner's epoch loop and report."""

from __future__ import annotations

import pytest

from repro.exceptions import PlacementError, ValidationError
from repro.stack import AlvcStack
from repro.workload import (
    ScenarioConfig,
    WorkloadRunner,
    generate_scenario,
)

from tests.workload.conftest import small_soak


def _small_stack(**overrides):
    build = dict(
        n_racks=2,
        servers_per_rack=2,
        n_ops=4,
        vms_per_service=2,
        exclusive_chains=False,
    )
    build.update(overrides)
    return AlvcStack.build(**build)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chaos_rate": -0.1},
            {"storm_period": -1},
            {"storm_size": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        stack = _small_stack()
        scenario = generate_scenario(seed=0)
        with pytest.raises(ValidationError):
            WorkloadRunner(stack, scenario, **kwargs)


class TestEpochLoop:
    def test_epoch_hook_sees_every_epoch(self):
        seen = []
        _, report = small_soak(
            0, epoch_hook=lambda stack, epoch: seen.append(epoch)
        )
        assert seen == list(range(report.epochs))

    def test_departed_tenants_return_their_slot(self):
        stack, report = small_soak(1)
        # Slots cycle: the total slots in flight never exceeds the
        # configured count, and departures freed capacity for later
        # arrivals.
        assert report.tenants_departed > 0
        assert report.active_at_end <= 3
        assert report.chains_torn_down > 0

    def test_active_tenants_and_accessors(self):
        stack = _small_stack()
        scenario = generate_scenario(
            ScenarioConfig(**{
                "days": 0.25,
                "epochs_per_day": 8,
                "arrival_rate": 0.9,
                "mean_lifetime_epochs": 5.0,
                "slots": 3,
            }),
            seed=2,
        )
        runner = WorkloadRunner(stack, scenario)
        report = runner.run()
        assert sorted(runner.active_tenants) == runner.active_tenants
        assert len(runner.active_tenants) == report.active_at_end
        assert runner.admission.decisions()
        assert runner.scaler.observed_chain_epochs >= 0

    def test_failed_provision_is_all_or_nothing(self, monkeypatch):
        """A tenant whose second chain fails keeps nothing at all."""
        stack = _small_stack()
        config = ScenarioConfig(
            days=0.5,
            epochs_per_day=16,
            arrival_rate=0.9,
            mean_lifetime_epochs=6.0,
            slots=3,
            max_chains_per_tenant=2,
        )
        # Deterministic scan for a schedule with a two-chain tenant to
        # victimize (fixed seed order, so the pick is stable).
        for seed in range(32):
            scenario = generate_scenario(config, seed=seed)
            victim = next(
                (p for p in scenario.tenants if len(p.templates) == 2),
                None,
            )
            if victim is not None:
                break
        assert victim is not None
        real_provision = stack.provision
        calls = {"n": 0}

        def flaky(functions, **kwargs):
            if kwargs.get("tenant") == victim.tenant_id:
                calls["n"] += 1
                if calls["n"] == 2:
                    raise PlacementError("forced")
            return real_provision(functions, **kwargs)

        monkeypatch.setattr(stack, "provision", flaky)
        runner = WorkloadRunner(stack, scenario)
        report = runner.run()
        rejected = {
            d.tenant_id: d.reason
            for d in runner.admission.decisions()
            if not d.admitted
        }
        assert rejected[victim.tenant_id] == "capacity:PlacementError"
        # Nothing of the victim survived: no chains, slot back in
        # rotation, and it is not an active tenant.
        assert victim.tenant_id not in runner.active_tenants
        assert not any(
            live.request.tenant == victim.tenant_id
            for live in stack.chains()
        )
        assert dict(report.rejections)["capacity:PlacementError"] >= 1

    def test_storm_with_no_viable_target_blocks(self):
        # One server total: a migration can never find another host.
        stack = _small_stack(n_racks=1, servers_per_rack=1, n_ops=2)
        scenario = generate_scenario(
            ScenarioConfig(
                days=0.25,
                epochs_per_day=8,
                arrival_rate=0.6,
                mean_lifetime_epochs=8.0,
                slots=2,
            ),
            seed=1,
        )
        runner = WorkloadRunner(stack, scenario, storm_period=2)
        report = runner.run()
        assert report.migration_storms > 0
        assert report.vms_migrated == 0
        if report.tenants_admitted:
            assert report.migrations_blocked > 0


class TestReport:
    def test_to_dict_folds_log_and_rejections(self):
        _, report = small_soak(4, chaos_rate=0.15, storm_period=3)
        payload = report.to_dict()
        assert "decision_log" not in payload
        assert isinstance(payload["rejections"], dict)
        assert payload["state_digest"] == report.state_digest
        assert payload["decisions_checksum"] == report.decisions_checksum

    def test_counters_are_consistent(self):
        _, report = small_soak(5, chaos_rate=0.15, storm_period=3)
        assert (
            report.tenants_admitted + report.tenants_rejected
            == report.tenants_arrived
        )
        assert sum(count for _, count in report.rejections) == (
            report.tenants_rejected
        )
        assert report.sla_violations <= report.sla_chain_epochs
        assert report.faults_recovered <= report.faults_injected
        assert 0.0 <= report.acceptance_ratio <= 1.0
        assert report.al_churn_cost >= (
            report.chains_provisioned + report.chains_torn_down
        )

    def test_unjournaled_stack_reports_zero_records(self):
        _, report = small_soak(3)
        assert report.journal_records == 0
        assert len(report.state_digest) == 64
