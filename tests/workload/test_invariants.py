"""Seeded workload invariants: 200+ derandomized churn schedules.

Three families of property tests, each over a block of fixed seeds
(no randomness at test time — every failure reproduces by seed):

* **capacity conservation** — at every epoch of every run, each
  server's used-capacity ledger equals the sum of the VM records
  placed on it, nothing is over-committed, and the optoelectronic
  pool's ledgers balance.  Admission, scaling, storms, chaos and
  defrag all run during the probe.
* **tenant/AL isolation** — no tenant is ever served through another
  tenant's abstraction layer: active slices stay pairwise
  OPS-disjoint, and chains of different tenants never share a
  cluster, slice or wavelength-on-a-switch.
* **journal replay parity** — a journaled churn run restores from its
  own journal into the digest-identical control plane (failed
  provisions, rejected tenants and blocked migrations leave no trace).

A final teardown-drain test proves scaling down and tearing down never
strand wavelengths or optical capacity.
"""

from __future__ import annotations

import pytest

from repro.service.snapshot import state_digest, state_view
from repro.stack import AlvcStack
from repro.topology.elements import ResourceVector

from tests.workload.conftest import small_soak

CAPACITY_SEEDS = range(80)
ISOLATION_SEEDS = range(80, 140)
REPLAY_SEEDS = range(140, 200)


def _chaos_for(seed: int) -> float:
    """Half the seeds run with OPS chaos enabled."""
    return 0.15 if seed % 2 else 0.0

def _storm_for(seed: int) -> int:
    """A third of the seeds run periodic migration storms."""
    return 3 if seed % 3 == 0 else 0


# ---------------------------------------------------------------------------
# Capacity conservation
# ---------------------------------------------------------------------------
def _assert_capacity_conserved(stack, epoch) -> None:
    inventory = stack.inventory
    for server in stack.fabric.servers():
        placed = inventory.vms_on(server)
        total = ResourceVector.zero()
        for vm in placed:
            total = total + vm.demand
        assert inventory.used_capacity(server) == total, (
            f"epoch {epoch}: server {server} ledger diverged from "
            f"its VM records"
        )
        # remaining_capacity = capacity - used; ResourceVector refuses
        # negative components, so over-commit raises right here.
        remaining = inventory.remaining_capacity(server)
        assert remaining.cpu_cores >= 0
    pool = stack.orchestrator.nfv_manager.pool
    for ops in pool.host_ids():
        host = pool.get(ops)
        assert host.used + host.free == host.capacity, (
            f"epoch {epoch}: optical pool ledger on {ops} lost balance"
        )


@pytest.mark.parametrize("seed", CAPACITY_SEEDS)
def test_capacity_conserved_under_churn(seed):
    stack, report = small_soak(
        seed,
        epoch_hook=_assert_capacity_conserved,
        chaos_rate=_chaos_for(seed),
        storm_period=_storm_for(seed),
    )
    # The probe ran on every epoch, and the run actually churned.
    assert report.epochs == 8
    assert report.tenants_arrived >= 0
    _assert_capacity_conserved(stack, report.epochs)


# ---------------------------------------------------------------------------
# Tenant / AL isolation
# ---------------------------------------------------------------------------
def _assert_tenants_isolated(stack, epoch) -> None:
    # Slices pairwise OPS-disjoint (the AL-VC isolation guarantee).
    stack.orchestrator.slice_allocator.verify_isolation()
    by_tenant: dict[str, set] = {}
    cluster_of_tenant: dict[str, str] = {}
    slice_of_tenant: dict[str, str] = {}
    for live in stack.chains():
        tenant = live.request.tenant
        by_tenant.setdefault(tenant, set()).update(
            live.optical_slice.switches
        )
        # A tenant's chains share one slot = one cluster = one slice;
        # two tenants must never share either.
        for mapping, value in (
            (cluster_of_tenant, live.cluster.cluster_id),
            (slice_of_tenant, live.optical_slice.slice_id),
        ):
            assert mapping.setdefault(tenant, value) == value
    tenants = sorted(by_tenant)
    for i, left in enumerate(tenants):
        for right in tenants[i + 1:]:
            assert cluster_of_tenant[left] != cluster_of_tenant[right]
            assert slice_of_tenant[left] != slice_of_tenant[right]
            assert not (by_tenant[left] & by_tenant[right]), (
                f"epoch {epoch}: tenants {left} and {right} share "
                f"AL switches {by_tenant[left] & by_tenant[right]}"
            )


@pytest.mark.parametrize("seed", ISOLATION_SEEDS)
def test_no_tenant_sees_anothers_al(seed):
    stack, report = small_soak(
        seed,
        epoch_hook=_assert_tenants_isolated,
        chaos_rate=_chaos_for(seed),
        storm_period=_storm_for(seed),
    )
    _assert_tenants_isolated(stack, report.epochs)


# ---------------------------------------------------------------------------
# Journal replay parity
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", REPLAY_SEEDS)
def test_journal_replay_is_digest_identical(seed, tmp_path):
    journal_path = tmp_path / "journal.alvc"
    stack, report = small_soak(
        seed,
        journal=journal_path,
        chaos_rate=_chaos_for(seed),
        storm_period=_storm_for(seed),
    )
    assert report.state_digest == state_digest(stack)
    stack.journal.close()
    restored = AlvcStack.restore(journal_path)
    try:
        assert state_digest(restored) == report.state_digest, (
            f"seed {seed}: replaying {report.journal_records} journal "
            f"records diverged from the live run"
        )
    finally:
        restored.journal.close()


def test_run_to_run_determinism_spot_check():
    """Same seed, twice: the full report (decision log included) matches."""
    _, first = small_soak(11, chaos_rate=0.15, storm_period=3)
    _, second = small_soak(11, chaos_rate=0.15, storm_period=3)
    assert first == second


# ---------------------------------------------------------------------------
# Nothing strands on the way down
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 17, 42])
def test_full_teardown_strands_nothing(seed):
    """Tearing every surviving chain down returns all optical capacity.

    Scaling (up *and* down) ran during the soak; if a scale or a
    re-embed ever leaked a wavelength or a pool reservation, the drained
    stack could not come back to a clean optical plane.
    """
    stack, report = small_soak(seed, chaos_rate=0.1, storm_period=3)
    for live in stack.chains():
        stack.teardown(live.chain_id)
    assert stack.chains() == []
    assert stack.orchestrator.slice_allocator.slices() == []
    view = state_view(stack)
    assert view["slices"] == []
    pool = stack.orchestrator.nfv_manager.pool
    for ops in pool.host_ids():
        host = pool.get(ops)
        assert host.used == ResourceVector.zero(), (
            f"seed {seed}: optical capacity stranded on {ops} after "
            f"draining every chain"
        )
    # Only the slot service VMs remain on the servers — every VNF
    # carrier VM left with its chain.
    inventory = stack.inventory
    for vm in inventory.placed_vms():
        assert not vm.service.startswith("nfv-"), (
            f"carrier VM {vm.vm_id} stranded after teardown"
        )
