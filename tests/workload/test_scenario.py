"""Unit tests for the seeded scenario generator."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ValidationError
from repro.workload import (
    DEFAULT_TEMPLATES,
    ChainTemplate,
    ScenarioConfig,
    generate_scenario,
)


class TestChainTemplate:
    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            ChainTemplate("", ("firewall",))

    def test_rejects_empty_functions(self):
        with pytest.raises(ValidationError):
            ChainTemplate("empty", ())

    @pytest.mark.parametrize(
        "kwargs",
        [{"bandwidth_gbps": 0.0}, {"flow_size_gb": -1.0}],
    )
    def test_rejects_nonpositive_numbers(self, kwargs):
        with pytest.raises(ValidationError):
            ChainTemplate("bad", ("firewall",), **kwargs)

    def test_default_templates_use_catalog_functions(self):
        from repro.nfv.functions import FunctionCatalog

        catalog = FunctionCatalog.standard()
        for template in DEFAULT_TEMPLATES:
            for name in template.functions:
                assert catalog.get(name) is not None


class TestScenarioConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"days": 0},
            {"epochs_per_day": 0},
            {"arrival_rate": 0.0},
            {"diurnal_amplitude": 1.0},
            {"mean_lifetime_epochs": 0.0},
            {"max_chains_per_tenant": 0},
            {"slots": 0},
            {"slot_cpu": 0.0},
            {"templates": ()},
            {"demand_base": -0.1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            ScenarioConfig(**kwargs)

    def test_n_epochs_rounds_and_floors_at_one(self):
        assert ScenarioConfig(days=7.0, epochs_per_day=24).n_epochs == 168
        assert ScenarioConfig(days=0.001, epochs_per_day=2).n_epochs == 1


class TestGenerateScenario:
    def test_same_seed_same_schedule(self):
        first = generate_scenario(seed=5)
        second = generate_scenario(seed=5)
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_scenario(seed=0) != generate_scenario(seed=1)

    def test_plans_are_well_formed(self):
        config = ScenarioConfig(days=2.0)
        scenario = generate_scenario(config, seed=3)
        assert scenario.n_epochs == config.n_epochs
        seen = set()
        for plan in scenario.tenants:
            assert plan.tenant_id not in seen
            seen.add(plan.tenant_id)
            assert 0 <= plan.arrival_epoch < scenario.n_epochs
            assert plan.departure_epoch > plan.arrival_epoch
            assert 1 <= len(plan.templates) <= config.max_chains_per_tenant

    def test_arrivals_and_departures_index_the_plans(self):
        scenario = generate_scenario(seed=4)
        arrived = [
            plan
            for epoch in range(scenario.n_epochs)
            for plan in scenario.arrivals_at(epoch)
        ]
        assert arrived == list(scenario.tenants)
        for epoch in range(scenario.n_epochs):
            for plan in scenario.departures_at(epoch):
                assert plan.departure_epoch == epoch

    def test_demand_respects_floor_and_ceiling(self):
        scenario = generate_scenario(seed=9)
        config = scenario.config
        for plan in scenario.tenants[:10]:
            for epoch in range(scenario.n_epochs):
                level = scenario.demand(plan, epoch)
                assert level >= 0.05
                assert level <= config.demand_base + plan.demand_amplitude

    def test_demand_is_diurnal(self):
        """A tenant's demand moves over the day (not a flat line)."""
        scenario = generate_scenario(seed=2)
        plan = scenario.tenants[0]
        levels = {
            round(scenario.demand(plan, epoch), 9)
            for epoch in range(scenario.config.epochs_per_day)
        }
        assert len(levels) > 1

    def test_scenario_rejects_config_and_scenario_on_stack(self):
        from repro.exceptions import ValidationError as VE
        from repro.stack import AlvcStack

        stack = AlvcStack.build(n_racks=2, servers_per_rack=2, n_ops=4)
        scenario = generate_scenario(seed=0)
        with pytest.raises(VE):
            stack.run_workload(scenario, config=ScenarioConfig())

    def test_plans_are_frozen_values(self):
        scenario = generate_scenario(seed=0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.tenants[0].arrival_epoch = 99  # type: ignore[misc]
