"""SweepRunner determinism and telemetry-rollup tests."""
