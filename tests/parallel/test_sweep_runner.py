"""Unit tests for :class:`repro.parallel.SweepRunner`.

Trial functions live at module top level so the ``spawn`` start method
can pickle them by qualified name into worker processes.
"""

import pytest

from repro.exceptions import TelemetryError, ValidationError
from repro.observability import Telemetry
from repro.parallel import SweepRunner


def square(value):
    return value * value


def record_one(value):
    from repro.observability import current_telemetry

    current_telemetry().counter(
        "alvc_test_trials_total", "trials run by the rollup test"
    ).inc()
    current_telemetry().histogram(
        "alvc_test_value", "trial parameter", buckets=(1.0, 10.0, 100.0)
    ).observe(float(value))
    return value


def failing(value):
    raise RuntimeError(f"boom on {value}")


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValidationError):
            SweepRunner(workers=0)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValidationError):
            SweepRunner(chunk_size=0)

    def test_kernel_must_be_known(self):
        with pytest.raises(ValidationError):
            SweepRunner(kernel="simd")


class TestInline:
    def test_empty_params(self):
        assert SweepRunner().map(square, []) == []

    def test_ordered_results(self):
        assert SweepRunner().map(square, range(6)) == [
            0,
            1,
            4,
            9,
            16,
            25,
        ]

    def test_inline_records_into_parent_telemetry(self):
        telemetry = Telemetry.enabled_instance()
        runner = SweepRunner(telemetry=telemetry)
        runner.map(record_one, [1, 2, 3])
        registry = telemetry.registry
        assert registry.value_of("alvc_test_trials_total") == 3.0
        assert registry.value_of("alvc_sweep_trials_total", workers="1") == 3.0
        assert registry.value_of("alvc_sweep_chunks_total", workers="1") == 1.0

    def test_trial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom on 2"):
            SweepRunner().map(failing, [2])


class TestChunking:
    def test_default_chunks_four_per_worker(self):
        runner = SweepRunner(workers=2)
        chunks = runner._chunks(list(range(16)))
        assert [len(chunk) for chunk in chunks] == [2] * 8

    def test_explicit_chunk_size(self):
        runner = SweepRunner(workers=2, chunk_size=5)
        chunks = runner._chunks(list(range(12)))
        assert [len(chunk) for chunk in chunks] == [5, 5, 2]

    def test_chunks_preserve_order(self):
        runner = SweepRunner(workers=3, chunk_size=4)
        chunks = runner._chunks(list(range(10)))
        assert [value for chunk in chunks for value in chunk] == list(
            range(10)
        )


class TestParallel:
    def test_results_match_inline(self):
        params = list(range(20))
        inline = SweepRunner(workers=1).map(square, params)
        parallel = SweepRunner(workers=2, chunk_size=3).map(square, params)
        assert parallel == inline

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            SweepRunner(workers=2).map(failing, [1, 2])

    def test_worker_telemetry_rolls_up(self):
        telemetry = Telemetry.enabled_instance()
        runner = SweepRunner(workers=2, chunk_size=2, telemetry=telemetry)
        runner.map(record_one, [1, 2, 3, 4, 5])
        registry = telemetry.registry
        assert registry.value_of("alvc_test_trials_total") == 5.0
        # Histogram counts merged across worker snapshots.
        assert registry.value_of("alvc_test_value") == 5.0
        assert registry.value_of("alvc_sweep_trials_total", workers="2") == 5.0
        assert registry.value_of("alvc_sweep_chunks_total", workers="2") == 3.0

    def test_disabled_telemetry_stays_silent(self):
        telemetry = Telemetry.disabled_instance()
        runner = SweepRunner(workers=2, telemetry=telemetry)
        assert runner.map(square, [1, 2, 3]) == [1, 4, 9]
        assert telemetry.registry.series_count() == 0


class TestMergeSnapshot:
    def test_counters_and_gauges_add(self):
        source = Telemetry.enabled_instance()
        source.counter("alvc_c_total", "c", arm="x").inc(3)
        source.gauge("alvc_g", "g").set(2.5)
        target = Telemetry.enabled_instance()
        target.counter("alvc_c_total", "c", arm="x").inc(1)
        target.registry.merge_snapshot(source.registry.snapshot())
        assert target.registry.value_of("alvc_c_total", arm="x") == 4.0
        assert target.registry.value_of("alvc_g") == 2.5

    def test_histograms_merge_bucketwise(self):
        source = Telemetry.enabled_instance()
        histogram = source.histogram(
            "alvc_h", "h", buckets=(1.0, 5.0)
        )
        histogram.observe(0.5)
        histogram.observe(3.0)
        histogram.observe(99.0)
        target = Telemetry.enabled_instance()
        target.histogram("alvc_h", "h", buckets=(1.0, 5.0)).observe(0.1)
        target.registry.merge_snapshot(source.registry.snapshot())
        merged = target.registry.histogram("alvc_h", buckets=(1.0, 5.0))
        assert merged.count == 4
        assert merged.sum == pytest.approx(102.6)
        assert merged.bucket_counts == [2, 3]

    def test_kind_mismatch_rejected(self):
        source = Telemetry.enabled_instance()
        source.counter("alvc_clash", "as counter").inc()
        target = Telemetry.enabled_instance()
        target.gauge("alvc_clash", "as gauge").set(1)
        with pytest.raises(TelemetryError):
            target.registry.merge_snapshot(source.registry.snapshot())

    def test_bucket_mismatch_rejected(self):
        source = Telemetry.enabled_instance()
        source.histogram("alvc_hb", "h", buckets=(1.0, 2.0)).observe(0.5)
        target = Telemetry.enabled_instance()
        target.histogram("alvc_hb", "h", buckets=(1.0, 4.0)).observe(0.5)
        with pytest.raises(TelemetryError):
            target.registry.merge_snapshot(source.registry.snapshot())

    def test_null_registry_swallows(self):
        source = Telemetry.enabled_instance()
        source.counter("alvc_c_total", "c").inc()
        null = Telemetry.disabled_instance()
        null.registry.merge_snapshot(source.registry.snapshot())
        assert null.registry.series_count() == 0
