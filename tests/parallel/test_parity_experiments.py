"""Sharded-sweep parity: worker count must never change a result.

Holds :func:`experiment_fig4_strategy_sweep`, :func:`experiment_e9_\
optimality_gap`, :func:`experiment_e11_scalability`, and the E21 arms
to the SweepRunner guarantee — ``workers=4`` output equals
``workers=1`` output bit for bit (timing columns zeroed via
``measure_time=False`` where applicable).
"""

from repro.analysis.experiments import (
    experiment_e9_optimality_gap,
    experiment_e11_scalability,
    experiment_e21_control_plane_throughput,
    experiment_fig4_strategy_sweep,
)
from repro.parallel import SweepRunner
from repro.stack import AlvcStack


class TestSweepParity:
    def test_fig4_workers4_bit_identical(self):
        kwargs = dict(
            scales=((4, 4), (6, 4)),
            seeds=(0, 1),
            include_exact=False,
            measure_time=False,
        )
        serial = experiment_fig4_strategy_sweep(workers=1, **kwargs)
        sharded = experiment_fig4_strategy_sweep(workers=4, **kwargs)
        assert sharded == serial

    def test_e9_workers4_bit_identical(self):
        kwargs = dict(instances=6, n_racks=4, n_ops=4)
        serial = experiment_e9_optimality_gap(workers=1, **kwargs)
        sharded = experiment_e9_optimality_gap(workers=4, **kwargs)
        assert sharded == serial

    def test_e11_workers4_bit_identical(self):
        scales = ((4, 4, 4), (6, 4, 6), (8, 4, 8))
        serial = experiment_e11_scalability(
            scales, workers=1, measure_time=False
        )
        sharded = experiment_e11_scalability(
            scales, workers=4, measure_time=False
        )
        assert sharded == serial

    def test_shared_runner_accepted(self):
        runner = SweepRunner(workers=2, chunk_size=1)
        rows = experiment_e11_scalability(
            ((4, 4, 4),), runner=runner, measure_time=False
        )
        assert rows == experiment_e11_scalability(
            ((4, 4, 4),), measure_time=False
        )


class TestE21Checksums:
    def test_arms_agree_and_workers_do_not_matter(self):
        rows = experiment_e21_control_plane_throughput(
            n_racks=12,
            servers_per_rack=4,
            n_ops=8,
            seeds=(0, 1),
            clusters_per_fabric=2,
            workers=2,
        )
        assert [row["arm"] for row in rows] == [
            "serial-set",
            "bitset",
            "bitset-parallel",
        ]
        checksums = {row["checksum"] for row in rows}
        assert len(checksums) == 1
        constructions = {row["constructions"] for row in rows}
        assert constructions == {2 * 2 * 4}  # seeds x clusters x strategies


class TestStackFacade:
    def test_run_sweep_uses_stack_telemetry(self):
        from repro.analysis.experiments import _e11_scale

        stack = AlvcStack.build(
            n_racks=4, servers_per_rack=4, n_ops=4, telemetry="json"
        )
        rows = stack.run_sweep(
            _e11_scale, [(4, 4, 4, 0, False), (6, 4, 6, 0, False)]
        )
        assert [row["racks"] for row in rows] == [4, 6]
        registry = stack.telemetry.registry
        assert (
            registry.value_of("alvc_sweep_trials_total", workers="1") == 2.0
        )
