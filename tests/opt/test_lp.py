"""Unit tests for the pure-python two-phase simplex LP solver."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.opt.lp import solve_lp
from repro.opt.model import MilpModel


def test_simple_optimum():
    # minimize -(x + y) over x, y in [0, 3] with x + 2y <= 4
    model = MilpModel()
    x = model.add_var("x", low=0.0, high=3.0, cost=-1.0)
    y = model.add_var("y", low=0.0, high=3.0, cost=-1.0)
    model.add_le({x: 1.0, y: 2.0}, 4.0)
    solution = solve_lp(model)
    assert solution.is_optimal
    assert solution.objective == pytest.approx(-3.5)
    assert solution.values[x] == pytest.approx(3.0)
    assert solution.values[y] == pytest.approx(0.5)


def test_nonzero_lower_bounds_shift():
    model = MilpModel()
    x = model.add_var("x", low=2.0, high=5.0, cost=1.0)
    y = model.add_var("y", low=1.0, high=4.0, cost=1.0)
    model.add_ge({x: 1.0, y: 1.0}, 4.0)
    solution = solve_lp(model)
    assert solution.is_optimal
    assert solution.objective == pytest.approx(4.0)
    assert solution.values[x] + solution.values[y] == pytest.approx(4.0)
    assert solution.values[x] >= 2.0 - 1e-9
    assert solution.values[y] >= 1.0 - 1e-9


def test_equality_rows():
    model = MilpModel()
    x = model.add_var("x", cost=1.0)
    y = model.add_var("y", cost=0.0)
    model.add_eq({x: 1.0, y: 1.0}, 2.0)
    solution = solve_lp(model)
    assert solution.is_optimal
    assert solution.values[x] == pytest.approx(0.0)
    assert solution.values[y] == pytest.approx(2.0)


def test_redundant_equality_rows_are_tolerated():
    # Duplicated rows leave a zero-valued artificial in the basis;
    # _drop_artificials must delete the redundant row, not fail.
    model = MilpModel()
    x = model.add_var("x", cost=1.0)
    y = model.add_var("y", cost=2.0)
    model.add_eq({x: 1.0, y: 1.0}, 3.0)
    model.add_eq({x: 1.0, y: 1.0}, 3.0)
    solution = solve_lp(model)
    assert solution.is_optimal
    assert solution.objective == pytest.approx(3.0)


def test_infeasible():
    model = MilpModel()
    x = model.add_var("x", low=0.0, high=1.0)
    model.add_ge({x: 1.0}, 2.0)
    solution = solve_lp(model)
    assert solution.status == "infeasible"
    assert not solution.is_optimal


def test_infeasible_via_bound_overrides():
    model = MilpModel()
    x = model.add_var("x", low=0.0, high=1.0)
    assert solve_lp(model, {x: (2.0, 1.0)}).status == "infeasible"


def test_unbounded():
    model = MilpModel()
    x = model.add_var("x", cost=-1.0)  # no upper bound
    y = model.add_var("y", cost=0.0)
    model.add_ge({x: 1.0, y: -1.0}, 0.0)
    solution = solve_lp(model)
    assert solution.status == "unbounded"


def test_no_constraints_sits_at_lower_bounds():
    model = MilpModel()
    x = model.add_var("x", low=1.5, cost=1.0)
    solution = solve_lp(model)
    assert solution.is_optimal
    assert solution.values[x] == pytest.approx(1.5)


def test_no_constraints_unbounded():
    model = MilpModel()
    model.add_var("x", cost=-1.0)
    assert solve_lp(model).status == "unbounded"


def test_bound_overrides_fix_variables():
    # The branch-and-bound contract: overrides alone pin binaries.
    model = MilpModel()
    x = model.add_var("x", low=0.0, high=1.0, cost=-1.0)
    y = model.add_var("y", low=0.0, high=1.0, cost=-1.0)
    model.add_le({x: 1.0, y: 1.0}, 1.5)
    free = solve_lp(model)
    assert free.objective == pytest.approx(-1.5)
    pinned = solve_lp(model, {x: (1.0, 1.0)})
    assert pinned.is_optimal
    assert pinned.values[x] == pytest.approx(1.0)
    assert pinned.values[y] == pytest.approx(0.5)


def test_model_validation():
    model = MilpModel()
    model.add_var("x")
    with pytest.raises(ValidationError):
        model.add_var("x")  # duplicate name
    with pytest.raises(ValidationError):
        model.add_var("bad", low=2.0, high=1.0)  # empty domain
    with pytest.raises(ValidationError):
        model.add_constraint({0: 1.0}, "<", 1.0)  # unknown sense
    with pytest.raises(ValidationError):
        model.add_le({7: 1.0}, 1.0)  # unknown column
    with pytest.raises(ValidationError):
        model.index_of("nope")
    assert model.index_of("x") == 0
    assert math.isinf(model.variables[0].high)
