"""Seeded greedy-vs-exact agreement suite.

The acceptance contract for the exact baselines: on instances the
branch-and-bound certifies, the exact objective never exceeds the
greedy one; whenever greedy achieves the certified optimum the result
objects are interchangeable (bit-identical for digest tooling); and
the exact entry points honor the same validation contracts as the
greedy paths — including through the ``engine=`` selectors.
"""

import random

import pytest

from repro.config import EngineConfig
from repro.core.abstraction_layer import AlConstructor
from repro.core.algorithms import greedy_max_weight_cover
from repro.core.chaining import NetworkFunctionChain
from repro.core.placement import (
    PLACEMENT_ENGINES,
    PlacementAlgorithm,
    PlacementSolver,
)
from repro.exceptions import ValidationError
from repro.nfv.functions import FunctionCatalog
from repro.opt.cover import exact_weighted_cover_with_certificate
from repro.opt.placement import exact_chain_placement_with_certificate
from repro.topology.elements import ResourceVector
from repro.topology.generators import build_alvc_fabric

CATALOG = FunctionCatalog.standard()

#: Light, optical-capable functions the random chains draw from; DPI is
#: mixed in to force electronic excursions.
_NAMES = ("firewall", "nat", "load-balancer", "proxy", "dpi")


def _random_cover_instance(rng: random.Random):
    universe = frozenset(f"m-{i}" for i in range(rng.randint(4, 10)))
    members = sorted(universe)
    candidates = {}
    for index in range(rng.randint(3, 7)):
        size = rng.randint(1, max(1, len(members) // 2))
        candidates[f"t-{index}"] = frozenset(rng.sample(members, size))
    covered = frozenset().union(*candidates.values())
    leftovers = universe - covered
    if leftovers:
        victim = f"t-{rng.randrange(len(candidates))}"
        candidates[victim] = candidates[victim] | leftovers
    weights = {name: rng.randint(1, 9) for name in candidates}
    return universe, candidates, weights


class TestCoverAgreement:
    def test_exact_never_larger_than_greedy(self):
        rng = random.Random(7)
        for _ in range(40):
            universe, candidates, weights = _random_cover_instance(rng)
            greedy = greedy_max_weight_cover(universe, candidates, weights)
            exact, certificate = exact_weighted_cover_with_certificate(
                universe, candidates, weights
            )
            assert certificate.proven_optimal
            assert len(exact.selected) <= len(greedy.selected)
            assert certificate.lower_bound == float(len(exact.selected))
            # Both are genuine covers of the same universe.
            assert exact.universe == greedy.universe
            for result in (exact, greedy):
                covered = frozenset().union(
                    *(candidates[name] for name in result.selected)
                )
                assert covered == universe

    def test_identical_objectives_on_certified_ties(self):
        # Whenever greedy hits the certified optimum cardinality, the
        # two CoverResults carry interchangeable structure: identical
        # selected-step traces modulo greedy's skip steps.
        rng = random.Random(11)
        ties = 0
        for _ in range(40):
            universe, candidates, weights = _random_cover_instance(rng)
            greedy = greedy_max_weight_cover(universe, candidates, weights)
            exact, certificate = exact_weighted_cover_with_certificate(
                universe, candidates, weights
            )
            assert certificate.proven_optimal
            if len(exact.selected) == len(greedy.selected):
                ties += 1
                assert {
                    step.candidate for step in exact.steps
                } <= set(candidates)
        assert ties >= 10  # greedy is near-optimal on these sizes


def _random_placement_instance(rng: random.Random):
    length = rng.randint(2, 5)
    names = [rng.choice(_NAMES) for _ in range(length)]
    chain = NetworkFunctionChain.from_names(
        f"chain-{rng.randrange(10**6)}", names, CATALOG
    )
    pool = {
        f"ops-{index}": ResourceVector(
            rng.choice((1, 2, 4, 8)),
            rng.choice((2, 4, 8, 16)),
            rng.choice((8, 16, 64)),
        )
        for index in range(rng.randint(1, 3))
    }
    return chain, pool


class TestPlacementAgreement:
    @pytest.mark.parametrize("merge", [False, True])
    def test_exact_matches_certified_subset_search(self, merge):
        rng = random.Random(13 if merge else 17)
        for _ in range(25):
            chain, pool = _random_placement_instance(rng)
            optimal = PlacementSolver(
                dict(pool), merge_consecutive=merge
            ).solve(chain, PlacementAlgorithm.OPTIMAL)
            greedy = PlacementSolver(
                dict(pool), merge_consecutive=merge
            ).solve(chain, PlacementAlgorithm.GREEDY)
            exact, certificate = exact_chain_placement_with_certificate(
                chain, dict(pool), merge_consecutive=merge
            )
            assert certificate.proven_optimal
            # Identical certified objectives.  Ties between optima may
            # pick different optical patterns, but whenever the domain
            # traces coincide the result objects are bit-identical —
            # hosts re-derive through the same exact packer.
            assert exact.conversions == optimal.conversions
            assert exact.conversions <= greedy.conversions
            if exact.domains() == optimal.domains():
                assert exact == optimal
            repeat, _ = exact_chain_placement_with_certificate(
                chain, dict(pool), merge_consecutive=merge
            )
            assert repeat == exact  # deterministic tie-breaking


class TestEngineContracts:
    def test_placement_engine_selector_validates(self):
        assert PLACEMENT_ENGINES == ("greedy", "exact", "auto")
        with pytest.raises(ValidationError):
            PlacementSolver({}, engine="milp")

    def test_constructor_engine_selector_validates(self):
        dcn = build_alvc_fabric(
            n_racks=2, servers_per_rack=2, n_ops=2, seed=0
        )
        with pytest.raises(ValidationError):
            AlConstructor(dcn, engine="milp")

    def test_engine_config_solver_validates(self):
        with pytest.raises(ValidationError):
            EngineConfig(solver="milp")
        assert EngineConfig(solver="exact").solver == "exact"

    def test_exact_engine_solver_defaults_to_exact_algorithm(self):
        chain = NetworkFunctionChain.from_names(
            "chain-engine", ("nat", "firewall"), CATALOG
        )
        pool = {"ops-0": ResourceVector(4, 8, 64)}
        exact = PlacementSolver(dict(pool), engine="exact").solve(chain)
        optimal = PlacementSolver(dict(pool)).solve(
            chain, PlacementAlgorithm.OPTIMAL
        )
        assert exact == optimal

    def test_exact_engine_constructor_builds_feasible_al(self):
        dcn = build_alvc_fabric(
            n_racks=4, servers_per_rack=3, n_ops=4,
            dual_homing_fraction=0.5, seed=3,
        )
        greedy_al = AlConstructor(dcn).construct_for_servers(
            "cluster-a", dcn.servers()
        )
        exact_al = AlConstructor(dcn, engine="exact").construct_for_servers(
            "cluster-a", dcn.servers()
        )
        assert exact_al.size <= greedy_al.size
        for server in dcn.servers():
            assert exact_al.connects(dcn.tors_of_server(server))


class TestStackDigestParity:
    def test_state_digest_identical_when_greedy_is_optimal(self):
        # The exact engine returns the same result objects, so the
        # canonical control-plane digest matches bit-for-bit whenever
        # both engines land on the same optimum.
        from repro.service.snapshot import state_digest
        from repro.stack import AlvcStack

        digests = {}
        for solver in ("greedy", "exact"):
            stack = AlvcStack.build(
                n_racks=4, servers_per_rack=4, n_ops=6, seed=0,
                engines=EngineConfig(solver=solver),
            )
            stack.provision(("firewall", "nat"), service="web")
            digests[solver] = state_digest(stack)
        assert digests["greedy"] == digests["exact"]
