"""Unit tests for the best-first branch-and-bound MILP engine."""

import pytest

from repro.exceptions import ValidationError
from repro.opt.bnb import MilpResult, have_pulp, solve_milp
from repro.opt.model import MilpModel


def _knapsack():
    # maximize 10a + 13b + 7c subject to 3a + 4b + 2c <= 6 (binaries);
    # minimize form negates the values.  Optimum picks {b, c} = 20.
    model = MilpModel()
    a = model.add_binary("a", cost=-10.0)
    b = model.add_binary("b", cost=-13.0)
    c = model.add_binary("c", cost=-7.0)
    model.add_le({a: 3.0, b: 4.0, c: 2.0}, 6.0)
    return model


def test_knapsack_optimum():
    result = solve_milp(_knapsack())
    assert result.proven_optimal
    assert result.objective == pytest.approx(-20.0)
    assert result.values == {"a": 0.0, "b": 1.0, "c": 1.0}
    assert result.bound == pytest.approx(result.objective)
    assert result.gap == pytest.approx(0.0)


def test_branching_required():
    # LP relaxation is fractional (x1 = x2 = 0.75); the integer optimum
    # needs 2 selections.
    model = MilpModel()
    x1 = model.add_binary("x1", cost=1.0)
    x2 = model.add_binary("x2", cost=1.0)
    model.add_ge({x1: 2.0, x2: 2.0}, 3.0)
    result = solve_milp(model)
    assert result.proven_optimal
    assert result.objective == pytest.approx(2.0)
    assert result.nodes > 1  # the root alone cannot close this


def test_integral_root_closes_in_one_node():
    model = MilpModel()
    x = model.add_binary("x", cost=1.0)
    model.add_ge({x: 1.0}, 1.0)
    result = solve_milp(model)
    assert result.proven_optimal
    assert result.nodes == 1


def test_infeasible():
    model = MilpModel()
    x = model.add_binary("x")
    model.add_ge({x: 1.0}, 2.0)
    result = solve_milp(model)
    assert result.status == "infeasible"
    assert not result.proven_optimal
    assert result.values == {}


def test_unbounded():
    model = MilpModel()
    model.add_var("x", cost=-1.0)
    assert solve_milp(model).status == "unbounded"


def test_determinism():
    results = [solve_milp(_knapsack()) for _ in range(3)]
    assert results[0] == results[1] == results[2]
    assert isinstance(results[0], MilpResult)


def test_node_budget_returns_certified_bound():
    # A tiny budget cannot close the tree, but whatever comes back must
    # bracket the true optimum: bound <= -20 <= objective.
    result = solve_milp(_knapsack(), max_nodes=2)
    assert result.status in ("feasible", "no_solution")
    assert result.bound <= -20.0 + 1e-6
    if result.status == "feasible":
        assert result.objective >= -20.0 - 1e-6
        assert result.gap >= 0.0


def test_unknown_backend_rejected():
    with pytest.raises(ValidationError):
        solve_milp(_knapsack(), backend="gurobi")


def test_pulp_backend_feature_gated():
    if have_pulp():  # pragma: no cover - optional dependency present
        result = solve_milp(_knapsack(), backend="pulp")
        assert result.objective == pytest.approx(-20.0)
    else:
        with pytest.raises(ValidationError):
            solve_milp(_knapsack(), backend="pulp")


def test_auto_backend_never_requires_pulp():
    # "auto" must work on a bare stdlib environment.
    result = solve_milp(_knapsack(), backend="auto")
    assert result.proven_optimal
