"""Exact weighted set cover: optimality, result parity, error contracts."""

import pytest

from repro.core.algorithms import (
    CoverResult,
    exact_min_cover,
    greedy_max_weight_cover,
)
from repro.exceptions import CoverInfeasibleError, ValidationError
from repro.opt.cover import (
    exact_weighted_cover,
    exact_weighted_cover_with_certificate,
)


def _instance():
    universe = frozenset({"m-0", "m-1", "m-2", "m-3"})
    candidates = {
        "t-1": frozenset({"m-0", "m-1"}),
        "t-2": frozenset({"m-1", "m-2"}),
        "t-3": frozenset({"m-2", "m-3"}),
    }
    weights = {"t-1": 3, "t-2": 1, "t-3": 2}
    return universe, candidates, weights


def test_minimum_cardinality():
    universe, candidates, weights = _instance()
    result, certificate = exact_weighted_cover_with_certificate(
        universe, candidates, weights
    )
    assert result.selected == ("t-1", "t-3")
    assert certificate.proven_optimal
    assert certificate.lower_bound == 2.0
    assert certificate.gap == 0.0
    # Cardinality agrees with the subset-search exact cover.
    assert len(result.selected) == len(
        exact_min_cover(universe, candidates).selected
    )


def test_weights_break_ties_toward_heavier():
    universe = frozenset({"m-0"})
    candidates = {
        "t-1": frozenset({"m-0"}),
        "t-2": frozenset({"m-0"}),
    }
    light = exact_weighted_cover(universe, candidates, {"t-1": 5, "t-2": 1})
    heavy = exact_weighted_cover(universe, candidates, {"t-1": 1, "t-2": 5})
    assert light.selected == ("t-1",)
    assert heavy.selected == ("t-2",)


def test_result_object_matches_greedy_shape():
    # Digest parity: same CoverResult type, same trace fields, same
    # universe — and identical to greedy whenever greedy is optimal.
    universe, candidates, weights = _instance()
    exact = exact_weighted_cover(universe, candidates, weights)
    greedy = greedy_max_weight_cover(universe, candidates, weights)
    assert isinstance(exact, CoverResult)
    assert exact.universe == greedy.universe == universe
    assert exact.selected == tuple(
        step.candidate for step in exact.steps if step.selected
    )
    covered = frozenset().union(
        *(candidates[name] for name in exact.selected)
    )
    assert covered == universe
    if len(greedy.selected) == len(exact.selected):
        assert exact.selected == greedy.selected


def test_weightless_covers():
    universe, candidates, _ = _instance()
    result = exact_weighted_cover(universe, candidates, None)
    assert len(result.selected) == 2
    for step in result.steps:
        assert step.weight == float(len(candidates[step.candidate]))


def test_infeasible_raises_cover_error():
    universe = frozenset({"m-0", "ghost"})
    candidates = {"t-1": frozenset({"m-0"})}
    with pytest.raises(CoverInfeasibleError) as info:
        exact_weighted_cover(universe, candidates, {"t-1": 1})
    assert "ghost" in info.value.uncovered


def test_feasibility_checked_before_weights():
    # Same precedence as the greedy kernels: an instance that is both
    # infeasible and missing weights reports infeasibility.
    universe = frozenset({"m-0", "ghost"})
    candidates = {"t-1": frozenset({"m-0"})}
    with pytest.raises(CoverInfeasibleError):
        exact_weighted_cover(universe, candidates, {})


def test_missing_weights_raise_validation_error():
    universe, candidates, weights = _instance()
    del weights["t-2"]
    with pytest.raises(ValidationError):
        exact_weighted_cover(universe, candidates, weights)


def test_degenerate_empty_instance():
    result, certificate = exact_weighted_cover_with_certificate(
        frozenset(), {}
    )
    assert result == CoverResult(selected=(), steps=(), universe=frozenset())
    assert certificate.proven_optimal
    assert certificate.nodes == 0


def test_degenerate_empty_candidates_nonempty_universe():
    with pytest.raises(CoverInfeasibleError) as info:
        exact_weighted_cover(frozenset({"m-0"}), {})
    assert info.value.uncovered == frozenset({"m-0"})


def test_node_budget_uncertified_bound_stays_valid():
    # Starve the search: whatever certificate comes back, its lower
    # bound must still bracket the true optimum from below.
    universe = frozenset(f"m-{i}" for i in range(8))
    candidates = {
        f"t-{i}": frozenset({f"m-{i}", f"m-{(i + 1) % 8}"}) for i in range(8)
    }
    closed, closed_cert = exact_weighted_cover_with_certificate(
        universe, candidates
    )
    assert closed_cert.proven_optimal
    try:
        _, starved = exact_weighted_cover_with_certificate(
            universe, candidates, max_nodes=3
        )
    except CoverInfeasibleError:
        return  # budget died before any incumbent: acceptable contract
    assert starved.lower_bound <= len(closed.selected)
