"""Exact chain placement MILP: optimality, knobs, result parity."""

import pytest

from repro.core.chaining import NetworkFunctionChain
from repro.core.placement import (
    ChainPlacement,
    PlacementAlgorithm,
    PlacementSolver,
)
from repro.nfv.functions import FunctionCatalog
from repro.opt.placement import (
    exact_chain_placement,
    exact_chain_placement_with_certificate,
)
from repro.topology.elements import Domain, ResourceVector

CATALOG = FunctionCatalog.standard()


def make_chain(names, chain_id="chain-x", **knobs):
    return NetworkFunctionChain.from_names(chain_id, names, CATALOG, **knobs)


def pool(count=2, cpu=4, memory=8, storage=64):
    return {
        f"ops-{index}": ResourceVector(cpu, memory, storage)
        for index in range(count)
    }


def test_matches_subset_search_per_visit():
    chain = make_chain(("nat", "firewall", "dpi", "load-balancer"))
    capacity = pool(count=3, cpu=8, memory=16, storage=64)
    optimal = PlacementSolver(dict(capacity)).solve(
        chain, PlacementAlgorithm.OPTIMAL
    )
    exact, certificate = exact_chain_placement_with_certificate(
        chain, dict(capacity)
    )
    assert exact.conversions == optimal.conversions
    assert exact.optical_hosts() == optimal.optical_hosts()
    assert exact == optimal  # digest-compatible result objects
    assert certificate.proven_optimal
    assert certificate.lower_bound == float(exact.conversions)


def test_matches_subset_search_merge_mode():
    chain = make_chain(("nat", "firewall", "dpi", "load-balancer"))
    capacity = pool(count=3, cpu=8, memory=16, storage=64)
    optimal = PlacementSolver(
        dict(capacity), merge_consecutive=True
    ).solve(chain, PlacementAlgorithm.OPTIMAL)
    exact, certificate = exact_chain_placement_with_certificate(
        chain, dict(capacity), merge_consecutive=True
    )
    assert exact.conversions == optimal.conversions
    assert exact.merge_consecutive
    assert certificate.proven_optimal


def test_empty_pool_is_all_electronic():
    chain = make_chain(("nat", "firewall"))
    placement, certificate = exact_chain_placement_with_certificate(
        chain, {}
    )
    assert placement.optical_count == 0
    assert all(
        placed.domain is Domain.ELECTRONIC
        for placed in placement.assignments
    )
    assert certificate.proven_optimal


def test_optical_incapable_stays_electronic():
    chain = make_chain(("nat", "dpi", "firewall"))
    placement = exact_chain_placement(
        chain, pool(count=2, cpu=4, memory=8, storage=64)
    )
    dpi = placement.assignments[1]
    assert dpi.function.name == "dpi"
    assert dpi.domain is Domain.ELECTRONIC


def test_capacity_rows_bind():
    # One router with room for exactly one light VNF: the MILP may only
    # place one of the two optically.
    chain = make_chain(("firewall", "firewall"))
    placement = exact_chain_placement(
        chain, {"ops-0": ResourceVector(1, 2, 4)}
    )
    assert placement.optical_count == 1


def test_anti_affinity_separates_hosts():
    chain = make_chain(
        ("nat", "firewall", "load-balancer"),
        anti_affinity=((0, 1), (1, 2)),
    )
    placement = exact_chain_placement(chain, pool(count=3))
    hosts = dict(placement.optical_hosts())
    if 0 in hosts and 1 in hosts:
        assert hosts[0] != hosts[1]
    if 1 in hosts and 2 in hosts:
        assert hosts[1] != hosts[2]
    assert placement.optical_count == 3  # three routers suffice


def test_anti_affinity_with_single_host_degrades():
    # One router, two conflicting positions: only one may go optical.
    chain = make_chain(("nat", "firewall"), anti_affinity=((0, 1),))
    placement = exact_chain_placement(chain, pool(count=1))
    assert placement.optical_count == 1


def test_wavelength_cap_bounds_router_fanin():
    chain = make_chain(("nat", "firewall", "load-balancer", "proxy"))
    placement = exact_chain_placement(
        chain,
        pool(count=2, cpu=16, memory=32, storage=128),
        wavelengths_per_router=2,
    )
    per_host: dict = {}
    for _, host in placement.optical_hosts().items():
        per_host[host] = per_host.get(host, 0) + 1
    assert all(count <= 2 for count in per_host.values())
    assert placement.optical_count == 4


def test_certificate_brackets_greedy():
    chain = make_chain(
        ("nat", "firewall", "dpi", "load-balancer", "proxy")
    )
    capacity = pool(count=2, cpu=2, memory=4, storage=16)
    greedy = PlacementSolver(
        dict(capacity), merge_consecutive=True
    ).solve(chain, PlacementAlgorithm.GREEDY)
    exact, certificate = exact_chain_placement_with_certificate(
        chain, dict(capacity), merge_consecutive=True
    )
    assert (
        certificate.lower_bound
        <= exact.conversions
        <= greedy.conversions
    )


def test_returns_chain_placement_type():
    chain = make_chain(("nat",))
    placement = exact_chain_placement(chain, pool())
    assert isinstance(placement, ChainPlacement)
    assert len(placement.assignments) == len(chain)
