"""Reopen semantics: resume the journal, never re-journal genesis.

The regression suite for the restore-then-serve gap: a restored stack
that immediately opens the async front-end must resume ``journal_seq``
where the journal left off, with the original genesis record still the
only one — and the two ways a directory could previously get stuck
(header-only journal after a crash, fresh build pointed at a journal
with history) now have defined behavior.
"""

import asyncio

import pytest

from repro.exceptions import JournalError, ValidationError
from repro.service import ProvisionRequest, TeardownRequest
from repro.service.journal import Journal, read_journal
from repro.service.service import ControlPlaneService
from repro.service.snapshot import state_digest
from repro.stack import AlvcStack

BUILD = dict(
    n_racks=2, servers_per_rack=3, n_ops=4, seed=11, vms_per_service=3
)


def _open(state_dir, **kwargs):
    return ControlPlaneService.open(state_dir, sync="off", **kwargs)


class TestRestoreThenServe:
    def test_serve_after_restore_resumes_seq_without_genesis(self, tmp_path):
        with _open(tmp_path, **BUILD) as service:
            service.stack.provision(("firewall", "nat"), service="web")
        sealed = read_journal(tmp_path / "journal.alvc").records
        resume_at = sealed[-1].seq + 1

        restored = _open(tmp_path)
        assert restored.journal.next_seq == resume_at
        assert restored.stack.journal_seq == resume_at

        async def scenario():
            async with restored.frontend() as frontend:
                return await frontend.submit_all(
                    [
                        ProvisionRequest(("dpi",), service="backup"),
                        TeardownRequest("chain-0"),
                    ]
                )

        responses = asyncio.run(scenario())
        restored.close()
        assert [r.ok for r in responses] == [True, True]

        records = read_journal(tmp_path / "journal.alvc").records
        # Exactly one genesis, still at seq 0; the served requests were
        # appended after the pre-restart history, with no gap.
        assert [r.op for r in records].count("genesis") == 1
        assert records[0].op == "genesis" and records[0].seq == 0
        assert [r.seq for r in records] == list(range(len(records)))
        assert [r.op for r in records[resume_at:]] == [
            "cluster",
            "provision",
            "teardown",
        ]

    def test_snapshot_restore_then_serve_still_single_genesis(self, tmp_path):
        with _open(tmp_path, **BUILD) as service:
            service.stack.provision(("firewall",), service="web")
            service.snapshot()

        restored = _open(tmp_path)
        assert restored.restore_result.source == "snapshot"

        async def scenario():
            async with restored.frontend() as frontend:
                return await frontend.submit(
                    ProvisionRequest(("nat",), service="sns")
                )

        assert asyncio.run(scenario()).ok
        live_digest = restored.digest()
        restored.close()

        records = read_journal(tmp_path / "journal.alvc").records
        assert [r.op for r in records].count("genesis") == 1
        # The whole history — pre-snapshot, post-snapshot, post-restart —
        # replays to the state the served stack ended in.
        replayed = _open(tmp_path)
        assert replayed.digest() == live_digest
        replayed.close()


class TestHeaderOnlyJournal:
    """A crash between journal creation and the genesis append."""

    def _crash_before_genesis(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        Journal(tmp_path / "journal.alvc", sync="off").close()

    def test_reopen_with_build_kwargs_rebuilds_single_genesis(self, tmp_path):
        self._crash_before_genesis(tmp_path)
        with _open(tmp_path, **BUILD) as service:
            service.stack.provision(("firewall",), service="web")
        records = read_journal(tmp_path / "journal.alvc").records
        assert records[0].op == "genesis" and records[0].seq == 0
        assert [r.op for r in records].count("genesis") == 1

    def test_reopen_then_restore_round_trips(self, tmp_path):
        self._crash_before_genesis(tmp_path)
        with _open(tmp_path, **BUILD) as service:
            service.stack.provision(("firewall",), service="web")
            live = service.digest()
        with _open(tmp_path) as restored:
            assert restored.digest() == live

    def test_blank_journal_beside_snapshot_is_not_fresh(self, tmp_path):
        # A snapshot next to a record-less journal means state existed;
        # rebuilding would silently discard it, so open() must refuse.
        with _open(tmp_path, **BUILD) as service:
            service.stack.provision(("firewall",), service="web")
            service.snapshot()
        journal_path = tmp_path / "journal.alvc"
        journal_path.unlink()
        Journal(journal_path, sync="off").close()
        with pytest.raises(ValidationError, match="already has a journal"):
            _open(tmp_path, **BUILD)


class TestFreshBuildOnUsedJournal:
    def test_build_refuses_journal_with_history(self, tmp_path):
        journal_path = tmp_path / "journal.alvc"
        stack = AlvcStack.build(journal=journal_path, sync="off", **BUILD)
        stack.provision(("firewall",), service="web")
        stack.journal.close()
        # A fresh build would diverge from the recorded history (and
        # could never re-journal a genesis record at seq > 0).
        with pytest.raises(JournalError, match="already holds"):
            AlvcStack.build(journal=journal_path, sync="off", **BUILD)
        # The journal is untouched and still restorable.
        restored = AlvcStack.restore(journal_path)
        assert [c.chain_id for c in restored.chains()] == ["chain-0"]
        restored.journal.close()

    def test_restore_still_resumes(self, tmp_path):
        journal_path = tmp_path / "journal.alvc"
        stack = AlvcStack.build(journal=journal_path, sync="off", **BUILD)
        stack.provision(("firewall",), service="web")
        digest = state_digest(stack)
        stack.journal.close()
        restored = AlvcStack.restore(journal_path)
        assert state_digest(restored) == digest
        assert restored.journal_seq == 3  # genesis, cluster, provision
        restored.journal.close()
