"""Snapshot write/load, torn-write detection, and the state digest."""

import pytest

from repro.exceptions import SnapshotError
from repro.service import ControlPlaneService
from repro.service.snapshot import (
    load_snapshot,
    state_digest,
    state_view,
    write_snapshot,
)
from repro.stack import AlvcStack

BUILD = dict(n_racks=3, servers_per_rack=3, n_ops=4, seed=11)


def _stack(**overrides):
    return AlvcStack.build(**{**BUILD, "telemetry": "json", **overrides})


class TestDigest:
    def test_identical_builds_have_equal_digests(self):
        assert state_digest(_stack()) == state_digest(_stack())

    def test_mutation_changes_the_digest(self):
        stack = _stack()
        before = state_digest(stack)
        stack.provision(("firewall",), service="web")
        assert state_digest(stack) != before

    def test_view_covers_the_restorable_surface(self):
        stack = _stack()
        stack.provision(("firewall", "nat"), service="web")
        view = state_view(stack)
        for key in (
            "chains",
            "clusters",
            "vms",
            "servers",
            "instances",
            "optical_free",
            "flows",
            "slices",
            "failed_ops",
            "degraded_chains",
            "counters",
            "metrics",
        ):
            assert key in view
        assert view["counters"]["chain_serial"] == 1
        assert view["chains"][0]["chain_id"] == "chain-0"

    def test_digest_ignores_service_infra_metrics(self):
        stack = _stack()
        before = state_digest(stack)
        stack.telemetry.counter(
            "alvc_restore_total", "stack restores completed"
        ).inc()
        stack.telemetry.counter(
            "alvc_journal_records_total", "journal records appended"
        ).inc(5)
        assert state_digest(stack) == before


class TestSnapshotRoundTrip:
    def test_round_trip_restores_equal_state(self, tmp_path):
        stack = _stack()
        stack.provision(("firewall", "nat"), service="web")
        path = write_snapshot(stack, tmp_path / "snap.alvc", journal_seq=7)
        loaded = load_snapshot(path)
        assert loaded.journal_seq == 7
        assert state_digest(loaded.stack) == state_digest(stack)
        # The restored stack is live, not a husk: it can keep mutating.
        loaded.stack.provision(("dpi",), service="streaming")

    def test_snapshot_of_journaled_stack_detaches_recorder(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "state", sync="off", **BUILD, telemetry="json"
        ) as service:
            service.stack.provision(("firewall",), service="web")
            service.snapshot()  # must not choke on the open journal
            loaded = load_snapshot(service.snapshot_path)
            assert loaded.journal_seq == service.journal.next_seq
            # The live stack still journals after the snapshot — two
            # records here: the backup cluster bootstrap + the provision.
            service.stack.provision(("nat",), service="backup")
            assert service.journal.next_seq == loaded.journal_seq + 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "nope.alvc")

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "junk.alvc"
        path.write_bytes(b"definitely not a snapshot at all........")
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(path)

    def test_truncated_payload_raises(self, tmp_path):
        stack = _stack()
        path = write_snapshot(stack, tmp_path / "snap.alvc", journal_seq=1)
        blob = path.read_bytes()
        path.write_bytes(blob[:-64])  # crash mid-write
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_corrupted_payload_fails_crc(self, tmp_path):
        stack = _stack()
        path = write_snapshot(stack, tmp_path / "snap.alvc", journal_seq=1)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="CRC"):
            load_snapshot(path)

    def test_atomic_replace_keeps_previous_snapshot(self, tmp_path):
        stack = _stack()
        path = tmp_path / "snap.alvc"
        write_snapshot(stack, path, journal_seq=1)
        stack.provision(("firewall",), service="web")
        write_snapshot(stack, path, journal_seq=2)
        assert load_snapshot(path).journal_seq == 2
        assert not (tmp_path / "snap.alvc.tmp").exists()
