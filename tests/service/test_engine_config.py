"""EngineConfig: validation, coercion, and threading through the stack.

The satellite that unifies the organically-grown ``kernel=`` /
``engine=`` / ``routing_engine=`` / ``workers=`` knobs behind one typed
config — and keeps the old spellings working through deprecation shims.
"""

import warnings

import pytest

from repro.config import (
    ADMISSION_MODES,
    COVER_KERNELS,
    SIM_ENGINES,
    EngineConfig,
)
from repro.exceptions import ValidationError
from repro.stack import AlvcStack

BUILD = dict(n_racks=3, servers_per_rack=3, n_ops=4, seed=0)


class TestValidation:
    def test_defaults(self):
        config = EngineConfig()
        assert config.cover_kernel == "auto"
        assert config.routing == "auto"
        assert config.sim_engine == "incremental"
        assert config.workers == 1

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"cover_kernel": "simd"}, "unknown cover kernel"),
            ({"routing": "dijkstra9000"}, "unknown routing engine"),
            ({"sim_engine": "warp"}, "unknown simulation engine"),
            ({"admission": "psychic"}, "unknown admission mode"),
            (
                {"admission": "batched"},
                "requires sim_engine='vector'",
            ),
            ({"workers": 0}, "workers"),
            ({"workers": 2.5}, "workers"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValidationError, match=match):
            EngineConfig(**kwargs)

    def test_admission_modes(self):
        assert ADMISSION_MODES == ("auto", "per_event", "batched")
        assert EngineConfig().admission == "auto"
        config = EngineConfig(sim_engine="vector", admission="batched")
        assert config.admission == "batched"
        for mode in ("auto", "per_event"):
            assert EngineConfig(admission=mode).admission == mode

    def test_known_sim_engines_all_construct(self):
        assert SIM_ENGINES == (
            "incremental",
            "from_scratch",
            "legacy",
            "vector",
        )
        for engine in SIM_ENGINES:
            assert EngineConfig(sim_engine=engine).sim_engine == engine

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().workers = 4

    def test_known_kernels_all_construct(self):
        for kernel in COVER_KERNELS:
            assert EngineConfig(cover_kernel=kernel).cover_kernel == kernel


class TestCoerce:
    def test_none_gives_defaults(self):
        assert EngineConfig.coerce(None) == EngineConfig()

    def test_config_passes_through(self):
        config = EngineConfig(routing="csr")
        assert EngineConfig.coerce(config) is config

    def test_dict_coerces(self):
        config = EngineConfig.coerce(
            {"cover_kernel": "bitset", "workers": 2}
        )
        assert config.cover_kernel == "bitset"
        assert config.workers == 2

    def test_unknown_dict_key_rejected(self):
        with pytest.raises(ValidationError, match="EngineConfig"):
            EngineConfig.coerce({"kernel": "bitset"})

    def test_other_types_rejected(self):
        with pytest.raises(ValidationError, match="engines must be"):
            EngineConfig.coerce("bitset")

    def test_to_dict_round_trips(self):
        config = EngineConfig(
            cover_kernel="set", routing="nx", workers=3
        )
        assert EngineConfig.coerce(config.to_dict()) == config


class TestStackThreading:
    def test_engines_thread_through_build(self):
        config = EngineConfig(cover_kernel="bitset", routing="csr")
        stack = AlvcStack.build(engines=config, **BUILD)
        assert stack.engines == config
        assert stack.orchestrator.engines == config
        assert (
            stack.orchestrator.cluster_manager._kernel == "bitset"
        )
        assert stack.orchestrator._routing_engine == "csr"

    def test_engines_accepts_mapping(self):
        stack = AlvcStack.build(
            engines={"cover_kernel": "set"}, **BUILD
        )
        assert stack.engines.cover_kernel == "set"

    def test_engine_choice_is_bit_identical(self):
        digests = []
        from repro.service.snapshot import state_digest

        for config in (
            EngineConfig(cover_kernel="set", routing="nx"),
            EngineConfig(cover_kernel="bitset", routing="csr"),
        ):
            stack = AlvcStack.build(engines=config, **BUILD)
            stack.provision(("firewall", "nat"), service="web")
            view = state_digest(stack)
            digests.append(view)
        # Engines select implementations, never outcomes.
        assert digests[0] == digests[1]


class TestDeprecatedSpellings:
    def test_routing_engine_kwarg_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="routing_engine"):
            stack = AlvcStack.build(routing_engine="csr", **BUILD)
        assert stack.engines.routing == "csr"

    def test_conflicting_selectors_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValidationError, match="conflicting"):
                AlvcStack.build(
                    routing_engine="csr",
                    engines=EngineConfig(routing="nx"),
                    **BUILD,
                )

    def test_run_sweep_overrides_warn(self):
        stack = AlvcStack.build(**BUILD)
        with pytest.warns(DeprecationWarning, match="run_sweep"):
            results = stack.run_sweep(_square, [1, 2, 3], workers=1)
        assert results == [1, 4, 9]
        with pytest.warns(DeprecationWarning, match="run_sweep"):
            stack.run_sweep(_square, [2], kernel="set")

    def test_run_sweep_defaults_from_engines(self):
        stack = AlvcStack.build(
            engines=EngineConfig(workers=1, cover_kernel="set"), **BUILD
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert stack.run_sweep(_square, [4]) == [16]

    def test_build_engine_kwarg_warns_and_maps(self):
        with pytest.warns(
            DeprecationWarning,
            match=r"AlvcStack\.build\(engine=\.\.\.\) is deprecated",
        ):
            stack = AlvcStack.build(engine="vector", **BUILD)
        assert stack.engines.sim_engine == "vector"

    def test_build_engine_kwarg_rejects_unknown_and_conflicts(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValidationError, match="unknown simulation"):
                AlvcStack.build(engine="warp", **BUILD)
            with pytest.raises(ValidationError, match="conflicting"):
                AlvcStack.build(
                    engine="vector",
                    engines=EngineConfig(sim_engine="legacy"),
                    **BUILD,
                )

    def test_run_workload_engine_kwarg_warns_and_validates(self):
        from repro.workload import ScenarioConfig

        stack = AlvcStack.build(exclusive_chains=False, **BUILD)
        config = ScenarioConfig(
            days=1, epochs_per_day=2, arrival_rate=1.0
        )
        with pytest.warns(
            DeprecationWarning,
            match=r"run_workload\(engine=\.\.\.\) is deprecated",
        ) as caught:
            stack.run_workload(seed=0, config=config, engine="incremental")
        assert any(
            issubclass(record.category, DeprecationWarning)
            and "EngineConfig(sim_engine=...)" in str(record.message)
            for record in caught
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValidationError, match="unknown simulation"):
                stack.run_workload(seed=0, config=config, engine="warp")
        vector_stack = AlvcStack.build(
            exclusive_chains=False,
            engines={"sim_engine": "vector"},
            **BUILD,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValidationError, match="conflicting"):
                vector_stack.run_workload(
                    seed=0, config=config, engine="legacy"
                )

    def test_build_admission_kwarg_folds_into_engines(self):
        stack = AlvcStack.build(
            admission="batched",
            engines={"sim_engine": "vector"},
            **BUILD,
        )
        assert stack.engines.admission == "batched"
        with pytest.raises(ValidationError, match="requires sim_engine"):
            AlvcStack.build(admission="batched", **BUILD)


class TestJournalIntegration:
    def test_genesis_embeds_engines(self, tmp_path):
        from repro.service import ControlPlaneService

        config = EngineConfig(cover_kernel="bitset", workers=2)
        with ControlPlaneService.open(
            tmp_path / "state",
            sync="off",
            engines=config,
            telemetry="json",
            **BUILD,
        ) as service:
            assert service.stack.engines == config
        with ControlPlaneService.open(tmp_path / "state", sync="off") as r:
            # Restore rebuilds the stack on the same engines.
            assert r.stack.engines == config


def _square(x):
    return x * x
