"""Replay over chaos ops: faults, recovery policies, VNF lifecycle.

Satellite of the durable-service PR: the journal must round-trip the
*self-healing* surface — sticky OPS failures, recovery policies (by
spec, not by object), degraded chains, VNF scale/migrate — and failed
chaos commands must leave no trace for replay to miss.
"""

import random

import pytest

from repro.chaos import RecoveryPolicy
from repro.exceptions import ALVCError, PlacementError
from repro.service import ControlPlaneService
from repro.service.snapshot import state_digest, state_view
from repro.topology.elements import Domain

BUILD = dict(
    n_racks=3,
    servers_per_rack=3,
    n_ops=4,
    vms_per_service=3,
    telemetry="json",
)


def _electronic_vnf(stack):
    """Some electronic VNF of a live chain (carrier-VM backed)."""
    manager = stack.orchestrator.nfv_manager
    for live in stack.chains():
        for vnf in live.vnf_ids:
            if manager.instance_of(vnf).domain is Domain.ELECTRONIC:
                return vnf
    raise AssertionError("no electronic VNF provisioned")


class TestChaosReplayParity:
    def test_sticky_fault_degrades_and_restores(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "sticky", sync="off", seed=3, **BUILD
        ) as service:
            stack = service.stack
            orchestrator = stack.orchestrator
            stack.provision(("firewall", "nat"), service="web")
            victim = sorted(
                stack.chains()[0].optical_slice.switches
            )[0]
            orchestrator.handle_ops_failure(victim)
            assert victim in orchestrator.failed_ops
            degraded = orchestrator.degraded_chains()
            digest = service.digest()
        with ControlPlaneService.open(tmp_path / "sticky", sync="off") as r:
            assert r.digest() == digest
            assert victim in r.stack.orchestrator.failed_ops
            assert r.stack.orchestrator.degraded_chains() == degraded

    def test_recovery_policy_round_trips_through_journal(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "policy", sync="off", seed=3, **BUILD
        ) as service:
            stack = service.stack
            orchestrator = stack.orchestrator
            stack.provision(("firewall", "nat"), service="web")
            victim = sorted(
                stack.chains()[0].optical_slice.switches
            )[0]
            orchestrator.handle_ops_failure(
                victim,
                policy=RecoveryPolicy(
                    max_attempts=3, base_delay=0.0, jitter=0.2, seed=17
                ),
            )
            digest = service.digest()
            view = state_view(stack)
        with ControlPlaneService.open(tmp_path / "policy", sync="off") as r:
            # The policy was journaled by *spec* and rebuilt on replay;
            # its seeded retry schedule reproduces the same outcome.
            assert r.digest() == digest
            assert state_view(r.stack) == view

    def test_fault_repair_storm_parity(self, tmp_path):
        rng = random.Random(99)
        with ControlPlaneService.open(
            tmp_path / "storm", sync="off", seed=1, **BUILD
        ) as service:
            stack = service.stack
            orchestrator = stack.orchestrator
            stack.provision(("firewall", "nat", "dpi"), service="web")
            stack.provision(("proxy",), service="backup")
            for _ in range(12):
                if rng.random() < 0.5:
                    healthy = sorted(
                        set(stack.fabric.optical_switches())
                        - set(orchestrator.failed_ops)
                    )
                    if not healthy:
                        continue
                    policy = (
                        RecoveryPolicy(max_attempts=2, seed=rng.randrange(50))
                        if rng.random() < 0.5
                        else None
                    )
                    try:
                        orchestrator.handle_ops_failure(
                            rng.choice(healthy), policy=policy
                        )
                    except ALVCError:
                        pass
                else:
                    failed = sorted(orchestrator.failed_ops)
                    if failed:
                        orchestrator.mark_ops_repaired(rng.choice(failed))
            digest = service.digest()
        with ControlPlaneService.open(tmp_path / "storm", sync="off") as r:
            assert r.digest() == digest

    def test_repair_then_upgrade_parity(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "cycle", sync="off", seed=2, **BUILD
        ) as service:
            stack = service.stack
            orchestrator = stack.orchestrator
            live = stack.provision(("firewall", "nat"), service="web")
            victim = sorted(live.optical_slice.switches)[0]
            orchestrator.handle_ops_failure(victim)
            orchestrator.mark_ops_repaired(victim)
            orchestrator.upgrade_chain(live.chain_id)
            assert orchestrator.failed_ops == frozenset()
            digest = service.digest()
        with ControlPlaneService.open(tmp_path / "cycle", sync="off") as r:
            assert r.digest() == digest
            assert r.stack.orchestrator.failed_ops == frozenset()


class TestVnfLifecycleReplay:
    def test_vnf_scale_and_migrate_replay(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "vnf", sync="off", seed=4, **BUILD
        ) as service:
            stack = service.stack
            manager = stack.orchestrator.nfv_manager
            # A long chain overflows the optical routers, so some VNFs
            # land in the electronic domain (carrier-VM backed).
            stack.provision(
                ("firewall", "nat", "dpi", "cache", "proxy"), service="web"
            )
            vnf = _electronic_vnf(stack)
            manager.scale(vnf, 1.5)
            host = manager.instance_of(vnf).host
            target = next(
                server
                for server in sorted(stack.fabric.servers())
                if server != host
            )
            manager.migrate(vnf, target)
            assert manager.instance_of(vnf).host == target
            digest = service.digest()
        with ControlPlaneService.open(tmp_path / "vnf", sync="off") as r:
            assert r.digest() == digest
            restored = r.stack.orchestrator.nfv_manager
            assert restored.instance_of(vnf).host == target

    def test_failed_scale_leaves_no_trace(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "noscale", sync="off", seed=4, **BUILD
        ) as service:
            stack = service.stack
            manager = stack.orchestrator.nfv_manager
            stack.provision(
                ("firewall", "nat", "dpi", "cache", "proxy"), service="web"
            )
            vnf = _electronic_vnf(stack)
            before = service.digest()
            seq_before = service.journal.next_seq
            with pytest.raises(PlacementError):
                manager.scale(vnf, 10_000.0)  # cannot fit any server
            # The failed command changed nothing and journaled nothing —
            # same carrier VM id, same allocator cursor, same digest.
            assert service.digest() == before
            assert service.journal.next_seq == seq_before
            digest = service.digest()
        with ControlPlaneService.open(tmp_path / "noscale", sync="off") as r:
            assert r.digest() == digest

    def test_failed_migration_leaves_no_trace(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "nomigrate", sync="off", seed=4, **BUILD
        ) as service:
            stack = service.stack
            orchestrator = stack.orchestrator
            stack.provision(("firewall", "nat"), service="web")
            cluster = orchestrator.cluster_manager.clusters()[0]
            vm = sorted(cluster.vm_ids)[0]
            before = service.digest()
            seq_before = service.journal.next_seq
            # Migrating a VM onto its own host is rejected up front...
            host = stack.inventory.host_of(vm)
            with pytest.raises(ALVCError):
                orchestrator.handle_vm_migration(vm, host)
            # ...and either way nothing reached the journal or the state.
            assert service.digest() == before
            assert service.journal.next_seq == seq_before
