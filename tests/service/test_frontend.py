"""The async batched front-end: typed requests, bounded queue, batching.

Runs the asyncio event loop explicitly (``asyncio.run``) — the suite
has no async plugin, and the front-end's surface is small enough that
explicit loops read clearer anyway.
"""

import asyncio

import pytest

from repro.exceptions import ValidationError
from repro.service import (
    FaultReport,
    ProvisionRequest,
    RepairReport,
    RequestFrontend,
    TeardownRequest,
)
from repro.service.snapshot import state_digest
from repro.stack import AlvcStack

BUILD = dict(
    n_racks=3,
    servers_per_rack=3,
    n_ops=4,
    seed=9,
    vms_per_service=3,
    telemetry="json",
)


def _stack(**overrides):
    return AlvcStack.build(**{**BUILD, **overrides})


class TestSubmission:
    def test_provision_round_trip(self):
        stack = _stack()

        async def scenario():
            async with stack.serve() as frontend:
                return await frontend.submit(
                    ProvisionRequest(("firewall", "nat"), service="web")
                )

        response = asyncio.run(scenario())
        assert response.ok
        assert response.kind == "provision"
        assert response.detail["chain_id"] == "chain-0"
        assert response.detail["path_length"] >= 2
        assert response.latency_s >= 0.0
        assert [c.chain_id for c in stack.chains()] == ["chain-0"]

    def test_full_lifecycle_through_typed_requests(self):
        stack = _stack()

        async def scenario():
            async with stack.serve() as frontend:
                provisioned = await frontend.submit(
                    ProvisionRequest(("firewall", "nat"), service="web")
                )
                victim = sorted(
                    stack.chains()[0].optical_slice.switches
                )[0]
                fault = await frontend.submit(FaultReport(victim))
                repair = await frontend.submit(RepairReport(victim))
                teardown = await frontend.submit(
                    TeardownRequest(provisioned.detail["chain_id"])
                )
                return provisioned, fault, repair, teardown

        provisioned, fault, repair, teardown = asyncio.run(scenario())
        assert all(r.ok for r in (provisioned, fault, repair, teardown))
        assert fault.kind == "fault" and "recovered" in fault.detail
        assert teardown.detail == {"chain_id": "chain-0"}
        assert stack.chains() == []

    def test_per_request_failures_are_reported_not_raised(self):
        stack = _stack()

        async def scenario():
            async with stack.serve() as frontend:
                return await frontend.submit_all(
                    [
                        ProvisionRequest(("firewall",), service="web"),
                        # Exclusive cluster: second chain on web fails.
                        ProvisionRequest(("nat",), service="web"),
                        TeardownRequest("no-such-chain"),
                        ProvisionRequest(("dpi",), service="backup"),
                    ]
                )

        responses = asyncio.run(scenario())
        assert [r.ok for r in responses] == [True, False, False, True]
        assert "DuplicateEntityError" in responses[1].error
        assert "UnknownEntityError" in responses[2].error
        # Responses arrive in submission order with stable ids.
        assert [r.request_id for r in responses] == [0, 1, 2, 3]
        # The bad requests did not poison the batch: both good chains live.
        assert [c.chain_id for c in stack.chains()] == [
            "chain-0",
            "chain-1",
        ]

    def test_unknown_request_type_rejected_at_submit(self):
        stack = _stack()

        async def scenario():
            async with stack.serve() as frontend:
                await frontend.submit(object())

        with pytest.raises(ValidationError, match="unknown request type"):
            asyncio.run(scenario())


class TestBoundedQueue:
    def test_offer_rejects_when_full(self):
        stack = _stack()
        frontend = stack.serve(max_queue=2)

        async def scenario():
            # Not started: offers queue up without draining.
            first = frontend.offer(ProvisionRequest(("nat",), service="web"))
            second = frontend.offer(
                ProvisionRequest(("dpi",), service="backup")
            )
            third = frontend.offer(
                ProvisionRequest(("ids",), service="streaming")
            )
            assert first is not None and second is not None
            assert third is None  # bounded: rejected, not buffered
            assert frontend.queue_depth == 2
            frontend.start()
            responses = await asyncio.gather(first, second)
            await frontend.stop()
            return responses

        responses = asyncio.run(scenario())
        assert [r.ok for r in responses] == [True, True]
        rejected = stack.telemetry.registry.snapshot()[
            "alvc_frontend_rejected_total"
        ]
        assert rejected["series"][0]["value"] == 1

    def test_queue_bounds_validated(self):
        stack = _stack()
        with pytest.raises(ValidationError, match="max_queue"):
            RequestFrontend(stack, max_queue=0)
        with pytest.raises(ValidationError, match="max_batch"):
            RequestFrontend(stack, max_batch=0)


class TestBatchedAdmission:
    def test_batched_equals_serial_state(self):
        requests = [
            ProvisionRequest(("firewall", "nat"), service="web"),
            ProvisionRequest(("dpi",), service="backup"),
            ProvisionRequest(("proxy", "ids"), service="streaming"),
        ]
        serial = _stack()
        for request in requests:
            serial.provision(
                request.chain,
                service=request.service,
                tenant=request.tenant,
                flow_size_gb=request.flow_size_gb,
                bandwidth_gbps=request.bandwidth_gbps,
            )

        batched = _stack()

        async def scenario():
            async with batched.serve(max_batch=16) as frontend:
                return await frontend.submit_all(requests)

        responses = asyncio.run(scenario())
        assert all(r.ok for r in responses)
        # Batch admission is an optimization, not a semantic: the two
        # stacks are bit-identical.
        assert state_digest(batched) == state_digest(serial)

    def test_batch_metrics_observed(self):
        stack = _stack()

        async def scenario():
            async with stack.serve(max_batch=8) as frontend:
                await frontend.submit_all(
                    [
                        ProvisionRequest(("firewall",), service="web"),
                        ProvisionRequest(("nat",), service="backup"),
                        TeardownRequest("chain-0"),
                    ]
                )

        asyncio.run(scenario())
        families = stack.telemetry.registry.snapshot()
        assert families["alvc_frontend_requests_total"]["series"][0][
            "value"
        ] == 3
        assert families["alvc_frontend_batches_total"]["series"][0][
            "value"
        ] >= 1
