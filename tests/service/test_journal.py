"""Framing, CRC, torn tails, group commit, and recorder depth guards."""

import json
import pickle
import struct
import zlib

import pytest

from repro.exceptions import JournalCorruptError, JournalError, ValidationError
from repro.observability import Telemetry
from repro.service.journal import (
    MAGIC,
    NULL_RECORDER,
    Journal,
    OpRecorder,
    read_journal,
)

HEADER_SIZE = len(MAGIC) + 4
FRAME_PREFIX = struct.Struct("<II")


def _journal(tmp_path, name="j.alvc", **kwargs):
    kwargs.setdefault("sync", "off")
    return Journal(tmp_path / name, **kwargs)


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append("genesis", {"build": {"seed": 1}})
            journal.append("teardown", {"chain_id": "c-0"})
            journal.append(
                "al_reconfig",
                {"action": "extend", "cost": 1, "rebuilt": False},
                nested=True,
            )
        result = read_journal(tmp_path / "j.alvc")
        assert not result.truncated
        assert result.dropped_bytes == 0
        assert [r.op for r in result.records] == [
            "genesis",
            "teardown",
            "al_reconfig",
        ]
        assert [r.seq for r in result.records] == [0, 1, 2]
        assert result.records[2].nested

    def test_append_assigns_monotonic_seq(self, tmp_path):
        with _journal(tmp_path) as journal:
            first = journal.append("genesis", {"build": {}})
            second = journal.append("ops_repair", {"ops": "ops-0"})
        assert (first.seq, second.seq) == (0, 1)

    def test_schema_violation_rejected_at_append(self, tmp_path):
        with _journal(tmp_path) as journal:
            with pytest.raises(JournalError, match="missing required"):
                journal.append("teardown", {})
            assert journal.next_seq == 0

    def test_unserializable_data_rejected(self, tmp_path):
        with _journal(tmp_path) as journal:
            with pytest.raises(JournalError, match="JSON"):
                journal.append("teardown", {"chain_id": object()})

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = _journal(tmp_path)
        journal.close()
        assert journal.closed
        with pytest.raises(JournalError, match="closed"):
            journal.append("genesis", {"build": {}})
        journal.close()  # idempotent

    def test_journal_never_pickles(self, tmp_path):
        with _journal(tmp_path) as journal:
            with pytest.raises(JournalError, match="not picklable"):
                pickle.dumps(journal)

    def test_unknown_sync_mode(self, tmp_path):
        with pytest.raises(ValidationError, match="sync"):
            Journal(tmp_path / "j.alvc", sync="sometimes")


class TestCorruption:
    def _written(self, tmp_path, n=3):
        with _journal(tmp_path) as journal:
            journal.append("genesis", {"build": {}})
            for index in range(n - 1):
                journal.append("teardown", {"chain_id": f"c-{index}"})
        return tmp_path / "j.alvc"

    def test_bad_magic_raises(self, tmp_path):
        path = self._written(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(b"NOTAMAGI" + blob[len(MAGIC):])
        with pytest.raises(JournalCorruptError, match="bad magic"):
            read_journal(path)

    def test_future_format_version_raises(self, tmp_path):
        path = self._written(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(MAGIC):HEADER_SIZE] = struct.pack("<I", 99)
        path.write_bytes(bytes(blob))
        with pytest.raises(JournalCorruptError, match="format v99"):
            read_journal(path)

    def test_torn_tail_tolerated_and_reported(self, tmp_path):
        path = self._written(tmp_path, n=3)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])  # crash mid-final-frame
        result = read_journal(path)
        assert result.truncated
        assert result.dropped_bytes > 0
        assert len(result.records) == 2  # final record lost, rest intact

    def test_mid_journal_crc_flip_drops_everything_after(self, tmp_path):
        path = self._written(tmp_path, n=3)
        blob = bytearray(path.read_bytes())
        # Find the second frame's payload start and flip one byte.
        offset = HEADER_SIZE
        length, _ = FRAME_PREFIX.unpack_from(blob, offset)
        second = offset + FRAME_PREFIX.size + length
        payload_at = second + FRAME_PREFIX.size
        blob[payload_at] ^= 0xFF
        path.write_bytes(bytes(blob))
        result = read_journal(path)
        assert result.truncated
        assert len(result.records) == 1  # only the genesis survived

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "gap.alvc"
        record = {
            "seq": 5,  # first record must be seq 0
            "op": "ops_repair",
            "data": {"ops": "ops-0"},
            "nested": False,
            "v": 1,
        }
        payload = json.dumps(record).encode()
        path.write_bytes(
            MAGIC
            + struct.pack("<I", 1)
            + FRAME_PREFIX.pack(len(payload), zlib.crc32(payload))
            + payload
        )
        with pytest.raises(JournalCorruptError, match="sequence gap"):
            read_journal(path)

    def test_reopen_truncates_torn_tail_then_appends(self, tmp_path):
        path = self._written(tmp_path, n=3)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        with Journal(path, sync="off") as journal:
            assert journal.next_seq == 2  # torn record dropped
            journal.append("ops_repair", {"ops": "ops-1"})
        result = read_journal(path)
        assert not result.truncated
        assert [r.seq for r in result.records] == [0, 1, 2]
        assert result.records[-1].op == "ops_repair"


class TestGroupCommit:
    def test_batch_syncs_once(self, tmp_path):
        sink = Telemetry.enabled_instance()
        with _journal(tmp_path, sync="always", telemetry=sink) as journal:
            with journal.batch():
                journal.append("genesis", {"build": {}})
                for index in range(9):
                    journal.append("teardown", {"chain_id": f"c-{index}"})
        families = sink.registry.snapshot()
        syncs = families["alvc_journal_syncs_total"]["series"][0]["value"]
        # One group commit + one on close.
        assert syncs == 2

    def test_serial_appends_sync_each(self, tmp_path):
        sink = Telemetry.enabled_instance()
        with _journal(tmp_path, sync="always", telemetry=sink) as journal:
            journal.append("genesis", {"build": {}})
            for index in range(9):
                journal.append("teardown", {"chain_id": f"c-{index}"})
        families = sink.registry.snapshot()
        syncs = families["alvc_journal_syncs_total"]["series"][0]["value"]
        assert syncs == 11  # ten appends + close

    def test_batch_is_reentrant(self, tmp_path):
        with _journal(tmp_path) as journal:
            with journal.batch():
                journal.append("genesis", {"build": {}})
                with journal.batch():
                    journal.append("teardown", {"chain_id": "c"})
            assert len(journal.records()) == 2


class TestOpRecorder:
    def test_only_outermost_frame_records(self, tmp_path):
        with _journal(tmp_path) as journal:
            recorder = OpRecorder(journal)
            with recorder.operation() as outer:
                assert outer
                with recorder.operation() as inner:
                    assert not inner
                    recorder.record("ops_repair", ops="ops-9")  # swallowed
                recorder.record("genesis", build={})
            ops = [record.op for record in journal.records()]
        assert ops == ["genesis"]

    def test_annotations_always_written(self, tmp_path):
        with _journal(tmp_path) as journal:
            recorder = OpRecorder(journal)
            with recorder.operation(), recorder.operation():
                recorder.annotate(
                    "al_reconfig", action="extend", cost=1, rebuilt=False
                )
            records = journal.records()
        assert records[0].nested

    def test_suspended_writes_nothing(self, tmp_path):
        with _journal(tmp_path) as journal:
            recorder = OpRecorder(journal)
            with recorder.suspended():
                assert not recorder.active
                with recorder.operation():
                    recorder.record("genesis", build={})
                    recorder.annotate(
                        "al_reconfig", action="x", cost=0, rebuilt=False
                    )
            assert journal.records() == []
            assert recorder.active

    def test_null_recorder_is_inert(self):
        with NULL_RECORDER.operation() as outermost:
            assert not outermost
        NULL_RECORDER.record("genesis", build={})
        NULL_RECORDER.annotate("al_reconfig", action="x", cost=0, rebuilt=False)
        assert NULL_RECORDER.journal is None
        assert not NULL_RECORDER.active
