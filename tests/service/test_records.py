"""Schema validation and spec round-trips for journal records."""

import pytest

from repro.chaos import RecoveryPolicy
from repro.core.chaining import NetworkFunctionChain
from repro.exceptions import JournalError
from repro.nfv.functions import FunctionCatalog
from repro.service.records import (
    OpRecord,
    RECORD_VERSION,
    REPLAYED_OPS,
    SCHEMAS,
    chain_from_spec,
    chain_to_spec,
    policy_from_spec,
    policy_to_spec,
    validate_record,
)


class TestValidation:
    def test_known_record_passes(self):
        validate_record(OpRecord(1, "teardown", {"chain_id": "c"}))

    def test_unknown_op_rejected(self):
        with pytest.raises(JournalError, match="unknown op"):
            validate_record(OpRecord(1, "frobnicate", {}))

    def test_missing_required_field_rejected(self):
        with pytest.raises(JournalError, match="missing required"):
            validate_record(OpRecord(1, "vm_migrate", {"vm": "vm-0"}))

    def test_extra_fields_allowed_for_forward_compat(self):
        validate_record(
            OpRecord(1, "teardown", {"chain_id": "c", "future_knob": 1})
        )

    def test_future_version_rejected(self):
        record = OpRecord(
            1, "teardown", {"chain_id": "c"}, version=RECORD_VERSION + 1
        )
        with pytest.raises(JournalError, match="version"):
            validate_record(record)

    def test_genesis_must_be_first(self):
        with pytest.raises(JournalError, match="seq 0"):
            validate_record(OpRecord(3, "genesis", {"build": {}}))

    def test_from_dict_round_trip(self):
        record = OpRecord(2, "ops_repair", {"ops": "ops-1"})
        assert OpRecord.from_dict(record.to_dict()) == record

    def test_from_dict_malformed(self):
        with pytest.raises(JournalError, match="malformed"):
            OpRecord.from_dict({"op": "teardown"})

    def test_every_command_op_is_replayed(self):
        assert REPLAYED_OPS == frozenset(SCHEMAS) - {
            "genesis",
            "al_reconfig",
        }


class TestChainSpec:
    def test_round_trip_preserves_identity(self):
        catalog = FunctionCatalog.standard()
        chain = NetworkFunctionChain.from_names(
            "c-1", ("firewall", "nat", "dpi"), catalog, 2.5
        )
        rebuilt = chain_from_spec(chain_to_spec(chain))
        assert rebuilt.chain_id == chain.chain_id
        assert rebuilt.bandwidth_gbps == chain.bandwidth_gbps
        assert [f.name for f in rebuilt.functions] == [
            f.name for f in chain.functions
        ]
        for ours, theirs in zip(rebuilt.functions, chain.functions):
            assert ours.demand == theirs.demand
            assert ours.optical_capable == theirs.optical_capable
            assert (
                ours.per_gb_processing_cost == theirs.per_gb_processing_cost
            )

    def test_spec_is_catalog_free(self):
        # The spec embeds full function types, so replay works even if
        # the catalog no longer lists the function.
        catalog = FunctionCatalog.standard()
        chain = NetworkFunctionChain.from_names(
            "c-2", ("cache",), catalog, 1.0
        )
        spec = chain_to_spec(chain)
        assert spec["functions"][0]["demand"]["cpu_cores"] > 0


class TestPolicySpec:
    def test_none_round_trips(self):
        assert policy_to_spec(None) is None
        assert policy_from_spec(None) is None

    def test_policy_round_trip(self):
        policy = RecoveryPolicy(
            max_attempts=4, base_delay=0.5, backoff=2.0, jitter=0.1, seed=9
        )
        rebuilt = policy_from_spec(policy_to_spec(policy))
        assert rebuilt.max_attempts == 4
        assert rebuilt.base_delay == 0.5
        assert rebuilt.backoff == 2.0
        assert rebuilt.jitter == 0.1
        assert rebuilt.seed == 9

    def test_opaque_policy_rejected(self):
        class Opaque:
            def run(self, thunk):  # duck-typed, not serializable
                return thunk()

        with pytest.raises(JournalError, match="opaque"):
            policy_to_spec(Opaque())
