"""Teardown under load: bounded-queue overflow, duplicates, races.

The workload layer retires tenants while provision batches for new
tenants are still in flight, so the front-end must keep three promises
under that pressure:

* a full bounded queue rejects further teardowns via :meth:`offer`
  (None, not an exception, not unbounded growth);
* tearing down a chain that already departed — twice in one batch, or
  for a tenant long gone — resolves to a *typed error response*
  (``ok=False`` naming the ALVC error), never a raised ``KeyError``
  across the queue;
* teardowns racing provision batches commit in submission order, so
  the journal replays the interleaving bit-identically.
"""

import asyncio

import pytest

from repro.service import (
    ProvisionRequest,
    RequestFrontend,
    TeardownRequest,
)
from repro.service.snapshot import state_digest
from repro.stack import AlvcStack

BUILD = dict(
    n_racks=3,
    servers_per_rack=3,
    n_ops=4,
    seed=9,
    vms_per_service=3,
)


def _stack(**overrides):
    return AlvcStack.build(**{**BUILD, **overrides})


class TestBoundedQueueUnderTeardownLoad:
    def test_offer_rejects_teardowns_when_queue_is_full(self):
        stack = _stack()

        async def scenario():
            frontend = RequestFrontend(stack, max_queue=2)
            # Drain task NOT started: the queue can only fill.
            async def _noop():
                return None

            accepted = []
            rejected = 0
            for index in range(6):
                waiter = frontend.offer(TeardownRequest(f"chain-{index}"))
                if waiter is None:
                    rejected += 1
                else:
                    accepted.append(waiter)
            assert len(accepted) == 2
            assert rejected == 4
            assert frontend.queue_depth == 2
            # Now drain: the two accepted teardowns resolve (to typed
            # errors — the chains never existed), the rejected four
            # left no trace at all.
            frontend.start()
            responses = await asyncio.gather(*accepted)
            await frontend.stop()
            return responses

        responses = asyncio.run(scenario())
        assert all(not response.ok for response in responses)
        assert all(
            "UnknownEntityError" in response.error for response in responses
        )


class TestDuplicateAndDepartedTeardowns:
    def test_duplicate_teardown_in_one_batch_is_a_typed_error(self):
        stack = _stack()

        async def scenario():
            async with stack.serve() as frontend:
                provisioned = await frontend.submit(
                    ProvisionRequest(("firewall", "nat"), service="web")
                )
                chain_id = provisioned.detail["chain_id"]
                # Both teardowns ride the same drain batch.
                return await frontend.submit_all(
                    [TeardownRequest(chain_id), TeardownRequest(chain_id)]
                )

        first, second = asyncio.run(scenario())
        assert first.ok
        assert not second.ok
        assert second.error.startswith("UnknownEntityError")
        assert stack.chains() == []

    def test_teardown_of_long_departed_tenant_is_reported_not_raised(self):
        stack = _stack()

        async def scenario():
            async with stack.serve() as frontend:
                provisioned = await frontend.submit(
                    ProvisionRequest(("dpi",), service="web", tenant="t0")
                )
                chain_id = provisioned.detail["chain_id"]
                departed = await frontend.submit(TeardownRequest(chain_id))
                assert departed.ok
                # The tenant is long gone; a stale retry must not
                # poison the front-end or its batch.
                stale = await frontend.submit(TeardownRequest(chain_id))
                follow_up = await frontend.submit(
                    ProvisionRequest(("firewall",), service="database")
                )
                return stale, follow_up

        stale, follow_up = asyncio.run(scenario())
        assert not stale.ok
        assert "UnknownEntityError" in stale.error
        assert follow_up.ok  # the queue kept serving after the error


class TestTeardownRacingProvisions:
    def test_interleaved_batch_commits_in_submission_order(self):
        stack = _stack()

        async def scenario():
            async with stack.serve(max_batch=16) as frontend:
                # One wave: provision a, provision b, tear a down,
                # provision c, tear down a chain that never existed.
                return await frontend.submit_all(
                    [
                        ProvisionRequest(
                            ("firewall", "nat"),
                            service="web",
                            chain_id="racy-a",
                        ),
                        ProvisionRequest(
                            ("dpi",), service="database", chain_id="racy-b"
                        ),
                        TeardownRequest("racy-a"),
                        ProvisionRequest(
                            ("proxy",), service="backup", chain_id="racy-c"
                        ),
                        TeardownRequest("never-existed"),
                    ]
                )

        responses = asyncio.run(scenario())
        assert [r.ok for r in responses] == [True, True, True, True, False]
        assert "UnknownEntityError" in responses[4].error
        assert [c.chain_id for c in stack.chains()] == ["racy-b", "racy-c"]

    def test_racing_waves_stay_journal_replayable(self, tmp_path):
        journal_path = tmp_path / "journal.alvc"
        stack = _stack(journal=journal_path, sync="off")

        async def scenario():
            async with stack.serve(max_batch=8) as frontend:
                for wave in range(3):
                    requests = []
                    if wave:
                        # Retire the previous tenant first — the new
                        # wave reuses its cluster, so ordering within
                        # the batch is load-bearing.
                        requests.append(
                            TeardownRequest(f"wave{wave - 1}-b")
                        )
                    requests.extend(
                        [
                            ProvisionRequest(
                                ("firewall", "nat"),
                                service="web",
                                chain_id=f"wave{wave}-a",
                            ),
                            ProvisionRequest(
                                ("dpi",),
                                service="database",
                                chain_id=f"wave{wave}-b",
                            ),
                            TeardownRequest(f"wave{wave}-a"),
                            # Duplicate teardown inside the racing
                            # wave: resolved as a typed error,
                            # journals nothing.
                            TeardownRequest(f"wave{wave}-a"),
                        ]
                    )
                    responses = await frontend.submit_all(requests)
                    assert [r.ok for r in responses[:-1]] == [True] * (
                        len(requests) - 1
                    )
                    assert not responses[-1].ok
                    assert "UnknownEntityError" in responses[-1].error

        asyncio.run(scenario())
        live_digest = state_digest(stack)
        stack.journal.close()
        restored = AlvcStack.restore(journal_path)
        try:
            assert state_digest(restored) == live_digest
        finally:
            restored.journal.close()
