"""Replay parity: restore reproduces a bit-identical control plane.

The headline acceptance test runs **200+ seeded op schedules** — random
interleavings of provisions, teardowns, modifications, upgrades, VM
migrations, OPS faults and repairs — against a journaled stack, then
restores from the journal (sometimes via a snapshot taken at a random
point) and asserts :func:`state_digest` equality.  Failed requests are
deliberately part of the schedules: commands journal only on commit, so
a failure must leave no trace (including the auto-numbered chain
serial).
"""

import random

import pytest

from repro.chaos import RecoveryPolicy
from repro.exceptions import ALVCError
from repro.service import ControlPlaneService
from repro.service.snapshot import state_digest, state_view

SERVICES = ("web", "streaming", "backup")
FUNCTIONS = ("firewall", "nat", "dpi", "cache", "proxy", "ids")
BUILD = dict(
    n_racks=3,
    servers_per_rack=3,
    n_ops=4,
    vms_per_service=3,
    telemetry="json",
)


def _run_schedule(stack, rng, n_ops):
    """Drive one random op schedule; failures are caught and ignored."""
    orchestrator = stack.orchestrator
    for _ in range(n_ops):
        action = rng.choice(
            (
                "provision",
                "provision",
                "provision",
                "teardown",
                "fault",
                "repair",
                "migrate_vm",
                "upgrade",
            )
        )
        try:
            if action == "provision":
                names = rng.sample(FUNCTIONS, k=rng.randint(1, 3))
                stack.provision(
                    tuple(names),
                    service=rng.choice(SERVICES),
                    flow_size_gb=rng.choice((0.5, 1.0, 2.0)),
                )
            elif action == "teardown":
                live = stack.chains()
                if live:
                    stack.teardown(rng.choice(live).chain_id)
            elif action == "fault":
                healthy = sorted(
                    set(stack.fabric.optical_switches())
                    - set(orchestrator.failed_ops)
                )
                if healthy:
                    policy = (
                        RecoveryPolicy(
                            max_attempts=2, seed=rng.randrange(100)
                        )
                        if rng.random() < 0.5
                        else None
                    )
                    orchestrator.handle_ops_failure(
                        rng.choice(healthy), policy=policy
                    )
            elif action == "repair":
                failed = sorted(orchestrator.failed_ops)
                if failed:
                    orchestrator.mark_ops_repaired(rng.choice(failed))
            elif action == "migrate_vm":
                clusters = orchestrator.cluster_manager.clusters()
                if clusters:
                    cluster = rng.choice(clusters)
                    vm = rng.choice(sorted(cluster.vm_ids))
                    server = rng.choice(sorted(stack.fabric.servers()))
                    orchestrator.handle_vm_migration(vm, server)
            elif action == "upgrade":
                live = stack.chains()
                if live:
                    orchestrator.upgrade_chain(rng.choice(live).chain_id)
        except ALVCError:
            # Failed commands are never journaled; parity must survive.
            pass


class TestReplayParity:
    def test_200_seeded_schedules_restore_bit_identical(self, tmp_path):
        mismatches = []
        for schedule in range(200):
            rng = random.Random(schedule)
            state_dir = tmp_path / f"s{schedule}"
            with ControlPlaneService.open(
                state_dir, sync="off", seed=schedule % 7, **BUILD
            ) as service:
                _run_schedule(service.stack, rng, n_ops=6)
                if schedule % 4 == 0:
                    service.snapshot()  # snapshot at a "random" point
                    _run_schedule(service.stack, rng, n_ops=3)
                live_digest = service.digest()
            with ControlPlaneService.open(state_dir, sync="off") as restored:
                if restored.digest() != live_digest:
                    mismatches.append(schedule)
        assert mismatches == []

    def test_mismatch_diagnosis_via_state_view(self, tmp_path):
        # The diffable view exists so a parity failure names the
        # component that diverged; check the two render identically.
        rng = random.Random(42)
        with ControlPlaneService.open(
            tmp_path / "v", sync="off", seed=3, **BUILD
        ) as service:
            _run_schedule(service.stack, rng, n_ops=8)
            live_view = state_view(service.stack)
        with ControlPlaneService.open(tmp_path / "v", sync="off") as restored:
            assert state_view(restored.stack) == live_view

    def test_restored_stack_keeps_journaling(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "w", sync="off", seed=1, **BUILD
        ) as service:
            service.stack.provision(("firewall",), service="web")
            seq = service.journal.next_seq
        with ControlPlaneService.open(tmp_path / "w", sync="off") as again:
            # Fresh service here, so this journals two records: the
            # streaming cluster bootstrap plus the provision itself.
            again.stack.provision(("nat",), service="streaming")
            assert again.journal.next_seq == seq + 2
            digest = again.digest()
        with ControlPlaneService.open(tmp_path / "w", sync="off") as third:
            assert third.digest() == digest
            assert [c.chain_id for c in third.stack.chains()] == [
                "chain-0",
                "chain-1",
            ]

    def test_auto_serial_survives_failed_provisions(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "serial", sync="off", seed=0, **BUILD
        ) as service:
            stack = service.stack
            stack.provision(("firewall",), service="web")
            # Default clusters are exclusive: a second chain on the same
            # cluster fails — and must not burn an auto-numbered id.
            with pytest.raises(ALVCError):
                stack.provision(("nat",), service="web")
            live = stack.provision(("dpi",), service="streaming")
            assert live.chain_id == "chain-1"
            digest = service.digest()
        with ControlPlaneService.open(tmp_path / "serial", sync="off") as r:
            assert r.digest() == digest


class TestRestoreFallbacks:
    def test_truncated_final_record_restores_the_prefix(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "torn", sync="off", seed=5, **BUILD
        ) as service:
            stack = service.stack
            stack.provision(("firewall", "nat"), service="web")
            stack.provision(("dpi",), service="streaming")
            digest_before_last = service.digest()
            stack.teardown("chain-1")
        journal_path = tmp_path / "torn" / "journal.alvc"
        blob = journal_path.read_bytes()
        journal_path.write_bytes(blob[:-7])  # crash mid-final-append
        with ControlPlaneService.open(tmp_path / "torn", sync="off") as r:
            assert r.restore_result.truncated
            assert r.digest() == digest_before_last
            assert [c.chain_id for c in r.stack.chains()] == [
                "chain-0",
                "chain-1",
            ]

    def test_snapshot_written_mid_op_falls_back_to_genesis(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "midop", sync="off", seed=5, **BUILD
        ) as service:
            service.stack.provision(("firewall", "nat"), service="web")
            service.snapshot()
            service.stack.provision(("dpi",), service="streaming")
            digest = service.digest()
        snapshot_path = tmp_path / "midop" / "snapshot.alvc"
        blob = snapshot_path.read_bytes()
        snapshot_path.write_bytes(blob[: len(blob) // 2])  # torn write
        with ControlPlaneService.open(tmp_path / "midop", sync="off") as r:
            assert r.restore_result.source == "genesis"
            assert r.restore_result.snapshot_error is not None
            assert r.digest() == digest

    def test_good_snapshot_short_circuits_replay(self, tmp_path):
        with ControlPlaneService.open(
            tmp_path / "short", sync="off", seed=5, **BUILD
        ) as service:
            service.stack.provision(("firewall",), service="web")
            service.stack.provision(("nat",), service="backup")
            service.snapshot()
            service.stack.provision(("dpi",), service="streaming")
            digest = service.digest()
        with ControlPlaneService.open(tmp_path / "short", sync="off") as r:
            assert r.restore_result.source == "snapshot"
            # Only the tail: the streaming bootstrap + its provision.
            assert r.restore_result.replayed == 2
            assert r.digest() == digest

    def test_build_kwargs_rejected_for_existing_journal(self, tmp_path):
        from repro.exceptions import ValidationError

        with ControlPlaneService.open(
            tmp_path / "argue", sync="off", seed=5, **BUILD
        ):
            pass
        with pytest.raises(ValidationError, match="genesis"):
            ControlPlaneService.open(tmp_path / "argue", n_racks=9)

    def test_stack_restore_classmethod(self, tmp_path):
        from repro.stack import AlvcStack

        with ControlPlaneService.open(
            tmp_path / "cm", sync="off", seed=2, **BUILD
        ) as service:
            service.stack.provision(("firewall",), service="web")
            digest = service.digest()
        restored = AlvcStack.restore(tmp_path / "cm")
        assert state_digest(restored) == digest
        assert restored.journal is not None
        restored.journal.close()
