"""Tests for typed id helpers."""

import pytest

from repro import ids


class TestIdFactories:
    def test_server_id_shape(self):
        assert ids.server_id(3) == "server-3"

    def test_tor_id_shape(self):
        assert ids.tor_id(0) == "tor-0"

    def test_ops_id_shape(self):
        assert ids.ops_id(12) == "ops-12"

    def test_vm_id_shape(self):
        assert ids.vm_id(7) == "vm-7"

    def test_cluster_id_uses_name(self):
        assert ids.cluster_id("web") == "cluster-web"

    def test_vnf_chain_slice_flow_ids(self):
        assert ids.vnf_id(1) == "vnf-1"
        assert ids.chain_id(2) == "chain-2"
        assert ids.slice_id(3) == "slice-3"
        assert ids.flow_id(4) == "flow-4"


class TestIndexOf:
    def test_roundtrip(self):
        assert ids.index_of(ids.server_id(42)) == 42

    def test_large_index(self):
        assert ids.index_of(ids.vm_id(123456)) == 123456

    def test_no_index_raises(self):
        with pytest.raises(ValueError):
            ids.index_of("not-an-indexed-id")

    def test_plain_word_raises(self):
        with pytest.raises(ValueError):
            ids.index_of("server")


class TestKindPrefix:
    def test_simple(self):
        assert ids.kind_prefix("server-3") == "server"

    def test_hyphenated_name(self):
        assert ids.kind_prefix("cluster-map-reduce") == "cluster-map"

    def test_no_separator(self):
        assert ids.kind_prefix("standalone") == "standalone"


class TestIdAllocator:
    def test_monotonic_per_factory(self):
        allocator = ids.IdAllocator()
        assert allocator.allocate(ids.vm_id) == "vm-0"
        assert allocator.allocate(ids.vm_id) == "vm-1"

    def test_factories_independent(self):
        allocator = ids.IdAllocator()
        allocator.allocate(ids.vm_id)
        assert allocator.allocate(ids.vnf_id) == "vnf-0"

    def test_reserve_batch(self):
        allocator = ids.IdAllocator()
        batch = allocator.reserve(ids.flow_id, 3)
        assert batch == ["flow-0", "flow-1", "flow-2"]
        assert allocator.allocate(ids.flow_id) == "flow-3"


class TestNodeKind:
    def test_values(self):
        assert ids.NodeKind.SERVER.value == "server"
        assert ids.NodeKind.TOR.value == "tor"
        assert ids.NodeKind.OPS.value == "ops"
