"""Tests for the Cloud/NFV manager."""

import pytest

from repro.exceptions import PlacementError, UnknownEntityError
from repro.nfv.lifecycle import VnfState
from repro.nfv.manager import NFV_INFRA_SERVICE, CloudNfvManager
from repro.topology.elements import Domain


@pytest.fixture
def manager(populated_inventory):
    return CloudNfvManager(populated_inventory)


class TestOpticalDeployment:
    def test_deploy_optical_first_fit(self, manager):
        instance = manager.deploy_optical("firewall")
        assert instance.domain is Domain.OPTICAL
        assert instance.host in manager.pool.host_ids()
        assert manager.state_of(instance.vnf_id) is VnfState.RUNNING

    def test_deploy_optical_specific_router(self, manager):
        router = manager.pool.host_ids()[1]
        instance = manager.deploy_optical("nat", ops=router)
        assert instance.host == router

    def test_capacity_charged(self, manager):
        before = manager.pool.total_free()
        instance = manager.deploy_optical("firewall")
        after = manager.pool.total_free()
        assert after == before - instance.function.demand

    def test_heavy_function_rejected_when_nothing_fits(self, manager):
        # DPI exceeds every optoelectronic router's capacity.
        with pytest.raises(PlacementError):
            manager.deploy_optical("dpi")

    def test_unknown_function_raises(self, manager):
        with pytest.raises(UnknownEntityError):
            manager.deploy_optical("nope")


class TestElectronicDeployment:
    def test_deploy_electronic_uses_carrier_vm(
        self, manager, populated_inventory
    ):
        vm_count = len(populated_inventory)
        instance = manager.deploy_electronic("dpi")
        assert instance.domain is Domain.ELECTRONIC
        assert len(populated_inventory) == vm_count + 1
        carriers = populated_inventory.vms_of_service(
            NFV_INFRA_SERVICE.name
        )
        assert len(carriers) == 1
        assert carriers[0].demand == instance.function.demand

    def test_deploy_electronic_specific_server(
        self, manager, populated_inventory
    ):
        server = populated_inventory.network.servers()[5]
        instance = manager.deploy_electronic("firewall", server=server)
        assert instance.host == server

    def test_deploy_electronic_rolls_back_on_failure(
        self, manager, populated_inventory
    ):
        vm_count = len(populated_inventory)
        server = populated_inventory.network.servers()[0]
        # Exhaust that server first.
        capacity = populated_inventory.remaining_capacity(server)
        blocker = populated_inventory.create_vm(NFV_INFRA_SERVICE, capacity)
        populated_inventory.place(blocker, server)
        with pytest.raises(PlacementError):
            manager.deploy_electronic("dpi", server=server)
        # The carrier VM of the failed deployment is cleaned up.
        assert len(populated_inventory) == vm_count + 1  # only the blocker


class TestLifecycleOperations:
    def test_scale_updates_reservation(self, manager):
        instance = manager.deploy_optical("firewall")
        host = manager.pool.get(instance.host)
        used_before = host.used
        scaled = manager.scale(instance.vnf_id, 2.0)
        assert scaled.function.demand == instance.function.demand.scaled(2.0)
        assert host.used == used_before + instance.function.demand
        assert manager.state_of(instance.vnf_id) is VnfState.RUNNING

    def test_scale_electronic(self, manager, populated_inventory):
        instance = manager.deploy_electronic("firewall")
        scaled = manager.scale(instance.vnf_id, 3.0)
        carriers = populated_inventory.vms_of_service(NFV_INFRA_SERVICE.name)
        assert carriers[0].demand == scaled.function.demand

    def test_scale_beyond_capacity_restores_state(self, manager):
        instance = manager.deploy_optical("security-gateway")
        host = manager.pool.get(instance.host)
        used_before = host.used
        with pytest.raises(PlacementError):
            manager.scale(instance.vnf_id, 100.0)
        assert host.used == used_before
        # VNF is back to RUNNING despite the failed scale.
        assert manager.state_of(instance.vnf_id) is VnfState.RUNNING

    def test_invalid_scale_factor(self, manager):
        instance = manager.deploy_optical("nat")
        with pytest.raises(ValueError):
            manager.scale(instance.vnf_id, 0)

    def test_update_round_trip(self, manager):
        instance = manager.deploy_optical("nat")
        manager.update(instance.vnf_id)
        assert manager.state_of(instance.vnf_id) is VnfState.RUNNING
        events = manager.lifecycle.event_counts()
        assert events["updating"] == 1

    def test_terminate_optical_releases_capacity(self, manager):
        before = manager.pool.total_free()
        instance = manager.deploy_optical("firewall")
        manager.terminate(instance.vnf_id)
        assert manager.pool.total_free() == before
        assert manager.state_of(instance.vnf_id) is VnfState.TERMINATED

    def test_terminate_electronic_removes_carrier(
        self, manager, populated_inventory
    ):
        vm_count = len(populated_inventory)
        instance = manager.deploy_electronic("dpi")
        manager.terminate(instance.vnf_id)
        assert len(populated_inventory) == vm_count


class TestQueries:
    def test_instance_of_unknown_raises(self, manager):
        with pytest.raises(UnknownEntityError):
            manager.instance_of("vnf-9")

    def test_live_instances(self, manager):
        first = manager.deploy_optical("firewall")
        second = manager.deploy_optical("nat")
        manager.terminate(first.vnf_id)
        live = manager.live_instances()
        assert [i.vnf_id for i in live] == [second.vnf_id]

    def test_instances_on_host(self, manager):
        router = manager.pool.host_ids()[0]
        instance = manager.deploy_optical("firewall", ops=router)
        hosted = manager.instances_on(router)
        assert [i.vnf_id for i in hosted] == [instance.vnf_id]
        assert manager.instances_on("server-0") == []


class TestMigration:
    """VNF evacuation between hosts (the self-healing path)."""

    def test_optical_migration_moves_reservation(self, manager):
        instance = manager.deploy_optical("firewall")
        source = instance.host
        target = next(
            router
            for router in manager.pool.host_ids()
            if router != source
        )
        moved = manager.migrate(instance.vnf_id, target)
        assert moved.host == target
        assert manager.instance_of(instance.vnf_id).host == target
        assert manager.state_of(instance.vnf_id) is VnfState.RUNNING
        # the reservation followed the instance
        assert manager.instances_on(target) == [moved]
        assert manager.instances_on(source) == []

    def test_electronic_migration_moves_carrier_vm(
        self, manager, populated_inventory
    ):
        instance = manager.deploy_electronic("firewall")
        source = instance.host
        target = next(
            server
            for server in populated_inventory.network.servers()
            if server != source
        )
        moved = manager.migrate(instance.vnf_id, target)
        assert moved.host == target
        carriers = populated_inventory.vms_of_service(
            NFV_INFRA_SERVICE.name
        )
        assert len(carriers) == 1
        assert populated_inventory.host_of(carriers[0].vm_id) == target

    def test_migrate_to_same_host_rejected(self, manager):
        from repro.exceptions import ValidationError

        instance = manager.deploy_optical("firewall")
        with pytest.raises(ValidationError):
            manager.migrate(instance.vnf_id, instance.host)

    def test_optical_migration_rolls_back_on_full_target(self, manager):
        instance = manager.deploy_optical("firewall")
        source = instance.host
        target = next(
            router
            for router in manager.pool.host_ids()
            if router != source
        )
        # Fill the target completely.
        filler = manager.pool.get(target)
        filler.host("filler", filler.free)
        with pytest.raises(PlacementError):
            manager.migrate(instance.vnf_id, target)
        # The VNF kept its original reservation and stayed RUNNING.
        assert manager.instance_of(instance.vnf_id).host == source
        assert manager.state_of(instance.vnf_id) is VnfState.RUNNING

    def test_electronic_migration_rolls_back_on_unknown_server(
        self, manager, populated_inventory
    ):
        instance = manager.deploy_electronic("firewall")
        source = instance.host
        with pytest.raises(UnknownEntityError):
            manager.migrate(instance.vnf_id, "server-does-not-exist")
        carriers = populated_inventory.vms_of_service(
            NFV_INFRA_SERVICE.name
        )
        assert len(carriers) == 1  # no leaked carrier VM
        assert populated_inventory.host_of(carriers[0].vm_id) == source
        assert manager.state_of(instance.vnf_id) is VnfState.RUNNING

    def test_migration_counted_in_telemetry(self, populated_inventory):
        from repro.observability import Telemetry

        telemetry = Telemetry.enabled_instance()
        manager = CloudNfvManager(populated_inventory, telemetry=telemetry)
        instance = manager.deploy_optical("firewall")
        target = next(
            router
            for router in manager.pool.host_ids()
            if router != instance.host
        )
        manager.migrate(instance.vnf_id, target)
        assert (
            telemetry.registry.value_of(
                "alvc_vnfs_migrated_total", domain="optical"
            )
            == 1
        )
