"""Tests for the network function catalog and VNF instances."""

import pytest

from repro.exceptions import DuplicateEntityError, UnknownEntityError
from repro.nfv.functions import (
    STANDARD_FUNCTIONS,
    FunctionCatalog,
    NetworkFunctionType,
    VnfInstance,
)
from repro.topology.elements import (
    DEFAULT_OPTOELECTRONIC_CAPACITY,
    Domain,
    ResourceVector,
)


class TestNetworkFunctionType:
    def test_paper_middleboxes_present(self):
        # Section I names firewalls, DPI and load balancers explicitly.
        names = {function.name for function in STANDARD_FUNCTIONS}
        assert {"firewall", "dpi", "load-balancer"} <= names

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NetworkFunctionType("", ResourceVector())

    def test_negative_processing_cost_rejected(self):
        with pytest.raises(ValueError):
            NetworkFunctionType(
                "x", ResourceVector(), per_gb_processing_cost=-1
            )

    def test_fits_on(self):
        light = NetworkFunctionType("x", ResourceVector(cpu_cores=1))
        assert light.fits_on(ResourceVector(cpu_cores=2))
        assert not light.fits_on(ResourceVector(cpu_cores=0.5))

    def test_heavy_functions_exceed_optoelectronic_capacity(self):
        # "Some VNFs' resource demand, e.g., CPU is quite large and that
        # cannot be met by optoelectronic routers" — DPI is the example.
        catalog = FunctionCatalog.standard()
        assert not catalog.get("dpi").fits_on(
            DEFAULT_OPTOELECTRONIC_CAPACITY
        )

    def test_light_functions_fit_optoelectronic_capacity(self):
        catalog = FunctionCatalog.standard()
        for name in ("firewall", "nat", "load-balancer"):
            assert catalog.get(name).fits_on(
                DEFAULT_OPTOELECTRONIC_CAPACITY
            )


class TestFunctionCatalog:
    def test_standard_complete(self):
        assert len(FunctionCatalog.standard()) == len(STANDARD_FUNCTIONS)

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownEntityError):
            FunctionCatalog().get("nope")

    def test_register_duplicate_rejected(self):
        catalog = FunctionCatalog.standard()
        with pytest.raises(DuplicateEntityError):
            catalog.register(
                NetworkFunctionType("firewall", ResourceVector())
            )

    def test_contains(self):
        catalog = FunctionCatalog.standard()
        assert "nat" in catalog
        assert "nope" not in catalog

    def test_names_sorted(self):
        names = FunctionCatalog.standard().names()
        assert names == sorted(names)

    def test_optical_deployable_filters_by_capacity(self):
        catalog = FunctionCatalog.standard()
        deployable = catalog.optical_deployable(
            DEFAULT_OPTOELECTRONIC_CAPACITY
        )
        assert "firewall" in deployable
        assert "dpi" not in deployable

    def test_optical_deployable_respects_capability_flag(self):
        catalog = FunctionCatalog()
        catalog.register(
            NetworkFunctionType(
                "legacy",
                ResourceVector(cpu_cores=0.1),
                optical_capable=False,
            )
        )
        assert catalog.optical_deployable(ResourceVector(cpu_cores=10)) == []


class TestVnfInstance:
    def test_optical_instance(self):
        function = FunctionCatalog.standard().get("firewall")
        instance = VnfInstance(
            vnf_id="vnf-0", function=function, host="ops-0",
            domain=Domain.OPTICAL,
        )
        assert instance.host == "ops-0"

    def test_optical_incapable_function_rejected_in_optical_domain(self):
        function = NetworkFunctionType(
            "legacy", ResourceVector(), optical_capable=False
        )
        with pytest.raises(ValueError):
            VnfInstance(
                vnf_id="vnf-0",
                function=function,
                host="ops-0",
                domain=Domain.OPTICAL,
            )

    def test_optical_incapable_ok_in_electronic_domain(self):
        function = NetworkFunctionType(
            "legacy", ResourceVector(), optical_capable=False
        )
        instance = VnfInstance(
            vnf_id="vnf-0",
            function=function,
            host="server-0",
            domain=Domain.ELECTRONIC,
        )
        assert instance.domain is Domain.ELECTRONIC
