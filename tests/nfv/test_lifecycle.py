"""Tests for the VNF lifecycle state machine."""

import pytest

from repro.exceptions import LifecycleError, UnknownEntityError
from repro.nfv.lifecycle import VnfLifecycleManager, VnfState


@pytest.fixture
def manager():
    return VnfLifecycleManager()


class TestCreation:
    def test_create_starts_instantiated(self, manager):
        manager.create("vnf-0")
        assert manager.state_of("vnf-0") is VnfState.INSTANTIATED

    def test_duplicate_create_rejected(self, manager):
        manager.create("vnf-0")
        with pytest.raises(LifecycleError):
            manager.create("vnf-0")

    def test_create_event_journalled(self, manager):
        event = manager.create("vnf-0", reason="deploy firewall")
        assert event.before is None
        assert event.after is VnfState.INSTANTIATED
        assert event.reason == "deploy firewall"


class TestTransitions:
    def test_full_happy_path(self, manager):
        manager.create("vnf-0")
        manager.start("vnf-0")
        manager.scale("vnf-0")
        manager.finish_management("vnf-0")
        manager.update("vnf-0")
        manager.finish_management("vnf-0")
        manager.terminate("vnf-0")
        assert manager.state_of("vnf-0") is VnfState.TERMINATED

    def test_cannot_scale_before_running(self, manager):
        manager.create("vnf-0")
        with pytest.raises(LifecycleError):
            manager.scale("vnf-0")

    def test_cannot_update_while_scaling(self, manager):
        manager.create("vnf-0")
        manager.start("vnf-0")
        manager.scale("vnf-0")
        with pytest.raises(LifecycleError):
            manager.update("vnf-0")

    def test_terminated_is_final(self, manager):
        manager.create("vnf-0")
        manager.terminate("vnf-0")
        with pytest.raises(LifecycleError):
            manager.start("vnf-0")

    def test_terminate_from_any_live_state(self, manager):
        for index, prepare in enumerate(
            [
                lambda m, v: None,
                lambda m, v: m.start(v),
                lambda m, v: (m.start(v), m.scale(v)),
                lambda m, v: (m.start(v), m.update(v)),
            ]
        ):
            vnf = f"vnf-{index}"
            manager.create(vnf)
            prepare(manager, vnf)
            manager.terminate(vnf)
            assert manager.state_of(vnf) is VnfState.TERMINATED

    def test_unknown_vnf_raises(self, manager):
        with pytest.raises(UnknownEntityError):
            manager.state_of("vnf-9")
        with pytest.raises(UnknownEntityError):
            manager.start("vnf-9")


class TestJournal:
    def test_journal_ordered(self, manager):
        manager.create("vnf-0")
        manager.start("vnf-0")
        manager.terminate("vnf-0")
        states = [event.after for event in manager.journal()]
        assert states == [
            VnfState.INSTANTIATED,
            VnfState.RUNNING,
            VnfState.TERMINATED,
        ]

    def test_event_counts(self, manager):
        manager.create("vnf-0")
        manager.start("vnf-0")
        manager.scale("vnf-0")
        manager.finish_management("vnf-0")
        counts = manager.event_counts()
        assert counts["instantiated"] == 1
        assert counts["running"] == 2  # start + finish_management
        assert counts["scaling"] == 1

    def test_live_vnfs_excludes_terminated(self, manager):
        manager.create("vnf-0")
        manager.create("vnf-1")
        manager.terminate("vnf-0")
        assert manager.live_vnfs() == ["vnf-1"]

    def test_contains(self, manager):
        manager.create("vnf-0")
        assert "vnf-0" in manager
        assert "vnf-1" not in manager


class TestIllegalTransitionPaths:
    """Rejected transitions must neither move state nor touch the journal."""

    def test_double_start_rejected(self, manager):
        manager.create("vnf-0")
        manager.start("vnf-0")
        with pytest.raises(LifecycleError):
            manager.start("vnf-0")
        assert manager.state_of("vnf-0") is VnfState.RUNNING

    def test_finish_management_while_running_rejected(self, manager):
        manager.create("vnf-0")
        manager.start("vnf-0")
        with pytest.raises(LifecycleError):
            manager.finish_management("vnf-0")
        assert manager.state_of("vnf-0") is VnfState.RUNNING

    def test_double_terminate_rejected(self, manager):
        manager.create("vnf-0")
        manager.terminate("vnf-0")
        with pytest.raises(LifecycleError):
            manager.terminate("vnf-0")

    def test_update_before_start_rejected(self, manager):
        manager.create("vnf-0")
        with pytest.raises(LifecycleError):
            manager.update("vnf-0")
        assert manager.state_of("vnf-0") is VnfState.INSTANTIATED

    def test_rejected_transition_leaves_no_journal_entry(self, manager):
        manager.create("vnf-0")
        before = list(manager.journal())
        with pytest.raises(LifecycleError):
            manager.scale("vnf-0")
        assert manager.journal() == before

    def test_error_names_both_states(self, manager):
        manager.create("vnf-0")
        manager.terminate("vnf-0")
        with pytest.raises(LifecycleError) as excinfo:
            manager.start("vnf-0")
        message = str(excinfo.value)
        assert "terminated" in message and "running" in message
