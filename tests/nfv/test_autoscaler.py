"""Tests for threshold-based VNF autoscaling."""

import pytest

from repro.exceptions import UnknownEntityError
from repro.nfv.autoscaler import (
    AutoscalerPolicy,
    VnfAutoscaler,
)
from repro.nfv.manager import CloudNfvManager


@pytest.fixture
def scaled_setup(populated_inventory):
    manager = CloudNfvManager(populated_inventory)
    instance = manager.deploy_optical("nat")
    return manager, VnfAutoscaler(manager), instance


class TestPolicy:
    def test_default_policy_valid(self):
        policy = AutoscalerPolicy()
        assert policy.scale_down_threshold < policy.scale_up_threshold

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(
                scale_up_threshold=0.2, scale_down_threshold=0.8
            )

    def test_step_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(step_factor=1.0)

    def test_observations_required_positive(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(observations_required=0)


class TestScalingUp:
    def test_hysteresis_requires_streak(self, scaled_setup):
        _, autoscaler, instance = scaled_setup
        assert autoscaler.observe(instance.vnf_id, 0.95) is None
        assert autoscaler.observe(instance.vnf_id, 0.95) is None
        action = autoscaler.observe(instance.vnf_id, 0.95)
        assert action is not None
        assert action.direction == "up"
        assert autoscaler.size_factor_of(instance.vnf_id) == 2.0

    def test_streak_broken_by_normal_load(self, scaled_setup):
        _, autoscaler, instance = scaled_setup
        autoscaler.observe(instance.vnf_id, 0.95)
        autoscaler.observe(instance.vnf_id, 0.5)  # resets
        autoscaler.observe(instance.vnf_id, 0.95)
        assert autoscaler.observe(instance.vnf_id, 0.95) is None

    def test_capacity_charged_on_scale_up(self, scaled_setup):
        manager, autoscaler, instance = scaled_setup
        host = manager.pool.get(instance.host)
        used_before = host.used
        for _ in range(3):
            autoscaler.observe(instance.vnf_id, 1.0)
        assert host.used.cpu_cores > used_before.cpu_cores

    def test_blocked_when_host_full(self, populated_inventory):
        manager = CloudNfvManager(populated_inventory)
        instance = manager.deploy_optical("security-gateway")
        autoscaler = VnfAutoscaler(manager)
        directions = []
        # Keep pushing: eventually the router cannot fit another doubling.
        for _ in range(30):
            action = autoscaler.observe(instance.vnf_id, 1.0)
            if action is not None:
                directions.append(action.direction)
                if action.direction == "blocked":
                    break
        assert directions[-1] == "blocked"
        assert "up" in directions[:-1]


class TestScalingDown:
    def test_scale_down_after_up(self, scaled_setup):
        _, autoscaler, instance = scaled_setup
        for _ in range(3):
            autoscaler.observe(instance.vnf_id, 1.0)
        assert autoscaler.size_factor_of(instance.vnf_id) == 2.0
        for _ in range(3):
            action = autoscaler.observe(instance.vnf_id, 0.1)
        assert action.direction == "down"
        assert autoscaler.size_factor_of(instance.vnf_id) == 1.0

    def test_never_below_catalog_size(self, scaled_setup):
        _, autoscaler, instance = scaled_setup
        for _ in range(6):
            action = autoscaler.observe(instance.vnf_id, 0.0)
        assert autoscaler.size_factor_of(instance.vnf_id) == 1.0
        # The attempted shrink below 1.0 is reported as blocked.
        assert action is not None
        assert action.direction == "blocked"


class TestObserveMany:
    def test_batch_returns_actions(self, populated_inventory):
        manager = CloudNfvManager(populated_inventory)
        first = manager.deploy_optical("nat")
        second = manager.deploy_optical("firewall")
        autoscaler = VnfAutoscaler(
            manager, AutoscalerPolicy(observations_required=1)
        )
        actions = autoscaler.observe_many(
            [(first.vnf_id, 0.9), (second.vnf_id, 0.5)]
        )
        assert len(actions) == 1
        assert actions[0].vnf_id == first.vnf_id

    def test_actions_log(self, scaled_setup):
        _, autoscaler, instance = scaled_setup
        for _ in range(3):
            autoscaler.observe(instance.vnf_id, 1.0)
        assert len(autoscaler.actions()) == 1


class TestValidation:
    def test_unknown_vnf_rejected(self, scaled_setup):
        _, autoscaler, _ = scaled_setup
        with pytest.raises(UnknownEntityError):
            autoscaler.observe("vnf-ghost", 0.5)

    def test_negative_utilization_rejected(self, scaled_setup):
        _, autoscaler, instance = scaled_setup
        with pytest.raises(ValueError):
            autoscaler.observe(instance.vnf_id, -0.1)
