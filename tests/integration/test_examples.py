"""Every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[script.stem for script in SCRIPTS]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {script.stem for script in SCRIPTS}
    assert {
        "quickstart",
        "nfc_orchestration",
        "oeo_placement_study",
        "datacenter_scaling",
        "resilience_study",
        "capacity_planning",
        "multi_datacenter",
    } <= names
