"""Scale smoke tests: laptop-sized ceilings stay comfortable.

These are not micro-benchmarks (those live in ``benchmarks/``); they pin
order-of-magnitude behaviour so a regression that makes AL construction
quadratic or orchestration super-linear fails loudly.
"""

import time

import pytest

from repro.core.abstraction_layer import AlConstructor
from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.cluster import ClusterManager
from repro.core.orchestrator import NetworkOrchestrator
from repro.nfv.functions import FunctionCatalog
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.sim.simulator import FlowSimulator
from repro.topology.generators import build_alvc_fabric
from repro.virtualization.machines import MachineInventory
from repro.virtualization.services import STANDARD_SERVICES, ServiceCatalog
from repro.virtualization.vm_placement import VmPlacementEngine


class TestLargeFabric:
    def test_4096_server_al_construction_under_a_second(self):
        dcn = build_alvc_fabric(
            n_racks=64, servers_per_rack=64, n_ops=32, seed=0
        )
        constructor = AlConstructor(dcn)
        start = time.perf_counter()
        layer = constructor.construct_for_servers(
            "cluster-big", dcn.servers()
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
        assert layer.size <= 32

    def test_seven_clusters_and_chains(self):
        dcn = build_alvc_fabric(
            n_racks=21, servers_per_rack=8, n_ops=21, seed=1
        )
        inventory = MachineInventory(dcn)
        services = ServiceCatalog.standard()
        engine = VmPlacementEngine(inventory, seed=1)
        names = [service.name for service in STANDARD_SERVICES]
        for name in names:
            for _ in range(8):
                engine.place(inventory.create_vm(services.get(name)))
        orchestrator = NetworkOrchestrator(inventory)
        functions = FunctionCatalog.standard()
        start = time.perf_counter()
        for index, name in enumerate(names):
            orchestrator.cluster_manager.create_cluster(name)
            orchestrator.provision_chain(
                ChainRequest(
                    tenant=f"t{index}",
                    chain=NetworkFunctionChain.from_names(
                        f"chain-{index}", ("firewall", "nat"), functions
                    ),
                    service=name,
                )
            )
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0
        assert len(orchestrator.chains()) == len(names)
        orchestrator.slice_allocator.verify_isolation()

    def test_thousand_flow_simulation(self):
        dcn = build_alvc_fabric(
            n_racks=16, servers_per_rack=8, n_ops=8, seed=2
        )
        inventory = MachineInventory(dcn)
        services = ServiceCatalog.standard()
        engine = VmPlacementEngine(inventory, seed=2)
        for name in ("web", "sns", "map-reduce"):
            for _ in range(16):
                engine.place(inventory.create_vm(services.get(name)))
        clusters = ClusterManager(inventory)
        for name in ("web", "sns", "map-reduce"):
            clusters.create_cluster(name)
        generator = TrafficGenerator(
            inventory, TrafficConfig(arrival_rate=100.0), seed=2
        )
        flows = generator.flows(1000)
        start = time.perf_counter()
        report = FlowSimulator(inventory, clusters).run(flows)
        elapsed = time.perf_counter() - start
        assert report.flows == 1000
        assert elapsed < 5.0
