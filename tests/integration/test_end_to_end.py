"""End-to-end integration: the full AL-VC pipeline on one fabric."""

import pytest

from repro import (
    ChainRequest,
    FunctionCatalog,
    MachineInventory,
    NetworkFunctionChain,
    NetworkOrchestrator,
    PlacementAlgorithm,
    ServiceCatalog,
    TrafficConfig,
    TrafficGenerator,
    UpdateCostModel,
    UpdateEvent,
    UpdateKind,
    VmPlacementEngine,
    build_alvc_fabric,
    validate_topology,
)
from repro.sim.simulator import FlowSimulator


@pytest.fixture(scope="module")
def pipeline():
    """A fully provisioned data center with three tenanted chains."""
    dcn = build_alvc_fabric(
        n_racks=9, servers_per_rack=6, n_ops=9, seed=21
    )
    validate_topology(dcn).raise_if_invalid()
    inventory = MachineInventory(dcn)
    services = ServiceCatalog.standard()
    engine = VmPlacementEngine(inventory, seed=21)
    names = ("web", "map-reduce", "sns")
    for name in names:
        for _ in range(8):
            engine.place(inventory.create_vm(services.get(name)))

    orchestrator = NetworkOrchestrator(inventory)
    functions = FunctionCatalog.standard()
    chains = {}
    for index, name in enumerate(names):
        orchestrator.cluster_manager.create_cluster(name)
        chain = NetworkFunctionChain.from_names(
            f"chain-{index}",
            ("firewall", "dpi", "nat") if index == 0 else ("firewall", "nat"),
            functions,
        )
        chains[name] = orchestrator.provision_chain(
            ChainRequest(tenant=f"tenant-{index}", chain=chain, service=name)
        )
    return inventory, orchestrator, chains


class TestProvisionedState:
    def test_three_live_chains(self, pipeline):
        _, orchestrator, _ = pipeline
        assert len(orchestrator.chains()) == 3

    def test_slices_isolated(self, pipeline):
        _, orchestrator, _ = pipeline
        orchestrator.slice_allocator.verify_isolation()

    def test_als_disjoint(self, pipeline):
        _, orchestrator, chains = pipeline
        sets = [live.cluster.al_switches for live in chains.values()]
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                assert not (sets[i] & sets[j])

    def test_paths_within_own_slice(self, pipeline):
        _, orchestrator, chains = pipeline
        for live in chains.values():
            for node in live.path:
                if node.startswith("ops"):
                    assert node in live.optical_slice.switches

    def test_vnfs_running(self, pipeline):
        _, orchestrator, chains = pipeline
        from repro.nfv.lifecycle import VnfState

        for live in chains.values():
            for vnf in live.vnf_ids:
                assert (
                    orchestrator.nfv_manager.state_of(vnf)
                    is VnfState.RUNNING
                )

    def test_light_chain_fully_optical(self, pipeline):
        _, _, chains = pipeline
        light = chains["map-reduce"]
        assert light.conversions == 0
        assert light.placement.optical_count == 2

    def test_heavy_chain_keeps_dpi_electronic(self, pipeline):
        _, orchestrator, chains = pipeline
        heavy = chains["web"]
        assert heavy.conversions == 1
        dpi_vnf = heavy.vnf_ids[1]
        instance = orchestrator.nfv_manager.instance_of(dpi_vnf)
        assert instance.function.name == "dpi"
        assert instance.host.startswith("server")


class TestTrafficOverProvisionedFabric:
    def test_clustered_simulation(self, pipeline):
        inventory, orchestrator, _ = pipeline
        generator = TrafficGenerator(
            inventory,
            TrafficConfig(intra_service_probability=0.85),
            seed=7,
        )
        simulator = FlowSimulator(
            inventory, orchestrator.cluster_manager
        )
        report = simulator.run(generator.flows(300))
        assert report.flows == 300
        assert report.al_confined_flows > report.flows / 2

    def test_update_cost_advantage(self, pipeline):
        inventory, orchestrator, _ = pipeline
        model = UpdateCostModel(inventory.network)
        cluster = orchestrator.cluster_manager.cluster_of_service("web")
        vm = sorted(cluster.vm_ids)[0]
        event = UpdateEvent(
            kind=UpdateKind.VM_ARRIVAL,
            vm=vm,
            server=inventory.host_of(vm),
        )
        comparison = model.compare(event, cluster.al_switches)
        assert comparison["alvc"] < comparison["flat"]


class TestTeardown:
    def test_full_teardown_restores_resources(self):
        dcn = build_alvc_fabric(
            n_racks=4, servers_per_rack=4, n_ops=4, seed=33
        )
        inventory = MachineInventory(dcn)
        services = ServiceCatalog.standard()
        engine = VmPlacementEngine(inventory, seed=33)
        for _ in range(4):
            engine.place(inventory.create_vm(services.get("web")))
        orchestrator = NetworkOrchestrator(inventory)
        orchestrator.cluster_manager.create_cluster("web")
        functions = FunctionCatalog.standard()
        pool_before = orchestrator.nfv_manager.pool.total_free()
        vm_count_before = len(inventory)

        live = orchestrator.provision_chain(
            ChainRequest(
                tenant="t",
                chain=NetworkFunctionChain.from_names(
                    "chain-x", ("firewall", "dpi"), functions
                ),
                service="web",
            ),
            algorithm=PlacementAlgorithm.GREEDY,
        )
        orchestrator.delete_chain(live.chain_id)
        orchestrator.cluster_manager.dissolve_cluster("web")

        assert orchestrator.nfv_manager.pool.total_free() == pool_before
        assert len(inventory) == vm_count_before
        assert orchestrator.sdn.total_rules() == 0
        assert orchestrator.cluster_manager.free_ops() == set(
            dcn.optical_switches()
        )

    def test_reprovision_cycle(self):
        dcn = build_alvc_fabric(
            n_racks=4, servers_per_rack=4, n_ops=4, seed=34
        )
        inventory = MachineInventory(dcn)
        services = ServiceCatalog.standard()
        engine = VmPlacementEngine(inventory, seed=34)
        for _ in range(4):
            engine.place(inventory.create_vm(services.get("web")))
        orchestrator = NetworkOrchestrator(inventory)
        orchestrator.cluster_manager.create_cluster("web")
        functions = FunctionCatalog.standard()
        for round_index in range(5):
            live = orchestrator.provision_chain(
                ChainRequest(
                    tenant="t",
                    chain=NetworkFunctionChain.from_names(
                        f"chain-{round_index}", ("firewall",), functions
                    ),
                    service="web",
                )
            )
            orchestrator.delete_chain(live.chain_id)
        assert orchestrator.chains() == []
