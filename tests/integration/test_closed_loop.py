"""Integration: the closed operations loop.

Traffic drives per-VNF load, the autoscaler reacts, the quota guard
enforces tenancy, and churn flows through migration repair — the
day-2 story assembled from the individual subsystems.
"""

import pytest

from repro.core.chaining import ChainRequest, NetworkFunctionChain
from repro.core.orchestrator import NetworkOrchestrator
from repro.core.tenancy import QuotaGuard, Tenant, TenantRegistry
from repro.nfv.autoscaler import AutoscalerPolicy, VnfAutoscaler
from repro.nfv.functions import FunctionCatalog
from repro.sim.chain_traffic import ChainTrafficSimulator


CATALOG = FunctionCatalog.standard()


@pytest.fixture
def stack(populated_inventory):
    orchestrator = NetworkOrchestrator(populated_inventory)
    for service in ("web", "map-reduce", "sns"):
        orchestrator.cluster_manager.create_cluster(service)
    registry = TenantRegistry()
    registry.register(Tenant("tenant-a", max_chains=2))
    guard = QuotaGuard(registry, orchestrator)
    return populated_inventory, orchestrator, guard, registry


class TestTrafficDrivenAutoscaling:
    def test_load_spike_scales_then_settles(self, stack):
        inventory, orchestrator, guard, _ = stack
        live = guard.provision_chain(
            ChainRequest(
                tenant="tenant-a",
                chain=NetworkFunctionChain.from_names(
                    "chain-loop", ("nat",), CATALOG
                ),
                service="web",
                flow_size_gb=1.0,
            )
        )
        vnf = live.vnf_ids[0]
        instance = orchestrator.nfv_manager.instance_of(vnf)
        host = orchestrator.nfv_manager.pool.get(instance.host)
        baseline_used = host.used.cpu_cores

        autoscaler = VnfAutoscaler(
            orchestrator.nfv_manager,
            AutoscalerPolicy(observations_required=2),
        )
        simulator = ChainTrafficSimulator(inventory, seed=0)

        # Synthetic load signal: traffic volume relative to a nominal
        # capacity of 100 cost-units per window.
        def window_load(n_flows):
            report = simulator.run(live, n_flows=n_flows)
            return min(report.total_processing_cost / 10.0, 2.0)

        # Spike: heavy windows until the autoscaler reacts.
        scaled_up = False
        for _ in range(6):
            action = autoscaler.observe(vnf, window_load(200))
            if action is not None and action.direction == "up":
                scaled_up = True
                break
        assert scaled_up
        assert host.used.cpu_cores > baseline_used

        # Quiet: light windows shrink it back to catalog size.
        for _ in range(6):
            autoscaler.observe(vnf, 0.05)
        assert autoscaler.size_factor_of(vnf) == 1.0

    def test_quota_survives_the_loop(self, stack):
        _, orchestrator, guard, registry = stack
        first = guard.provision_chain(
            ChainRequest(
                tenant="tenant-a",
                chain=NetworkFunctionChain.from_names(
                    "chain-a", ("firewall",), CATALOG
                ),
                service="web",
            )
        )
        guard.provision_chain(
            ChainRequest(
                tenant="tenant-a",
                chain=NetworkFunctionChain.from_names(
                    "chain-b", ("firewall",), CATALOG
                ),
                service="sns",
            )
        )
        from repro.core.tenancy import QuotaExceededError

        with pytest.raises(QuotaExceededError):
            guard.provision_chain(
                ChainRequest(
                    tenant="tenant-a",
                    chain=NetworkFunctionChain.from_names(
                        "chain-c", ("firewall",), CATALOG
                    ),
                    service="map-reduce",
                )
            )
        guard.delete_chain(first.chain_id)
        assert registry.usage_of("tenant-a").chains == 1
        guard.provision_chain(
            ChainRequest(
                tenant="tenant-a",
                chain=NetworkFunctionChain.from_names(
                    "chain-c", ("firewall",), CATALOG
                ),
                service="map-reduce",
            )
        )

    def test_migration_during_operations(self, stack):
        inventory, orchestrator, guard, _ = stack
        live = guard.provision_chain(
            ChainRequest(
                tenant="tenant-a",
                chain=NetworkFunctionChain.from_names(
                    "chain-m", ("firewall", "dpi"), CATALOG
                ),
                service="web",
            )
        )
        vm = sorted(live.cluster.vm_ids)[0]
        current = inventory.host_of(vm)
        current_rack = inventory.network.spec_of(current).rack
        demand = inventory.get(vm).demand
        target = next(
            server
            for server in inventory.network.servers()
            if inventory.network.spec_of(server).rack != current_rack
            and demand.fits_within(inventory.remaining_capacity(server))
        )
        result = orchestrator.handle_vm_migration(vm, target)
        assert result["chains_rerouted"] == 1
        # The chain is still simulable after the reroute.
        report = ChainTrafficSimulator(inventory, seed=1).run(
            orchestrator.chain(live.chain_id), n_flows=20
        )
        assert report.flows == 20
