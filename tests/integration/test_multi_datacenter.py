"""Integration: the full AL-VC pipeline over a federated fabric."""

import pytest

from repro import (
    ChainRequest,
    FunctionCatalog,
    MachineInventory,
    NetworkFunctionChain,
    NetworkOrchestrator,
    ServiceCatalog,
    build_alvc_fabric,
    validate_topology,
)
from repro.topology.federation import InterDcLink, federate, site_of


@pytest.fixture(scope="module")
def geo():
    east = build_alvc_fabric(n_racks=6, servers_per_rack=4, n_ops=6, seed=4)
    west = build_alvc_fabric(n_racks=4, servers_per_rack=4, n_ops=4, seed=5)
    federation = federate(
        {"east": east, "west": west},
        [
            InterDcLink("east", "ops-0", "west", "ops-0"),
            InterDcLink("east", "ops-3", "west", "ops-2"),
        ],
    )
    inventory = MachineInventory(federation)
    web = ServiceCatalog.standard().get("web")
    for index in range(4):
        inventory.place(inventory.create_vm(web), f"east/server-{index}")
    for index in range(4):
        inventory.place(inventory.create_vm(web), f"west/server-{index}")
    orchestrator = NetworkOrchestrator(inventory)
    cluster = orchestrator.cluster_manager.create_cluster("web")
    chain = NetworkFunctionChain.from_names(
        "chain-geo", ("firewall", "nat"), FunctionCatalog.standard()
    )
    live = orchestrator.provision_chain(
        ChainRequest(tenant="t", chain=chain, service="web")
    )
    return federation, inventory, orchestrator, cluster, live


class TestFederatedPipeline:
    def test_fabric_validates(self, geo):
        federation, *_ = geo
        assert validate_topology(federation).ok

    def test_cluster_spans_both_sites(self, geo):
        _, _, _, cluster, _ = geo
        tor_sites = {site_of(tor) for tor in cluster.tor_switches}
        assert tor_sites == {"east", "west"}

    def test_al_bridges_the_sites(self, geo):
        _, _, _, cluster, _ = geo
        al_sites = {site_of(ops) for ops in cluster.al_switches}
        assert al_sites == {"east", "west"}

    def test_chain_path_crosses_boundary(self, geo):
        *_, live = geo
        path_sites = {site_of(node) for node in live.path}
        assert path_sites == {"east", "west"}

    def test_path_confined_to_al(self, geo):
        *_, live = geo
        for node in live.path:
            if "/ops-" in node:
                assert node in live.cluster.al_switches

    def test_isolation_holds(self, geo):
        _, _, orchestrator, _, _ = geo
        orchestrator.slice_allocator.verify_isolation()

    def test_cross_site_traffic_simulation(self, geo):
        from repro.sim.simulator import FlowSimulator
        from repro.sim.traffic import TrafficConfig, TrafficGenerator

        _, inventory, orchestrator, _, _ = geo
        generator = TrafficGenerator(
            inventory,
            TrafficConfig(intra_service_probability=1.0),
            seed=0,
        )
        report = FlowSimulator(
            inventory, orchestrator.cluster_manager
        ).run(generator.flows(60))
        assert report.flows == 60
        # Intra-service traffic stays inside the geo-distributed AL.
        assert report.al_confined_flows == 60

    def test_teardown_releases_cross_site_resources(self, geo):
        _, _, orchestrator, _, live = geo
        pool_before = orchestrator.nfv_manager.pool.total_free()
        orchestrator.delete_chain(live.chain_id)
        assert (
            orchestrator.nfv_manager.pool.total_free().cpu_cores
            >= pool_before.cpu_cores
        )
        # Re-provision works after teardown.
        chain = NetworkFunctionChain.from_names(
            "chain-geo2", ("firewall",), FunctionCatalog.standard()
        )
        orchestrator.provision_chain(
            ChainRequest(tenant="t", chain=chain, service="web")
        )
