"""Integration tests pinning the paper's worked examples (Figs. 4 and 8).

These are the reproduction's ground truth: if either test fails, the
library no longer reproduces the paper.
"""

from repro.analysis.experiments import (
    experiment_fig4_worked_example,
    experiment_fig8_worked_example,
)


class TestFig4:
    """Section III.C: the AL construction walk-through."""

    def test_complete_walkthrough(self):
        result = experiment_fig4_worked_example()
        # "selects first ToR 1 as it has four incoming connections and
        # two outgoing" — weight 6, highest of all.
        assert result["tor_weights"] == {
            "tor-0": 6,
            "tor-1": 5,
            "tor-2": 4,
            "tor-3": 3,
        }
        # "it tries to select ToR 2 and notices that machines against
        # this switch are already connected by ToR 1" — considered but
        # not selected.
        assert result["tor_considered"] == ["tor-0", "tor-1", "tor-2"]
        assert result["tor_selected"] == ["tor-0", "tor-2"]
        # ToR N is never reached: the cover completed at ToR 3.
        assert "tor-3" not in result["tor_considered"]
        # "this set of OPSs will be declared as the final AL".
        assert result["al"] == ["ops-0", "ops-2"]
        assert result["al_size"] == 2


class TestFig8:
    """Section IV.D: VNF placement saving O/E/O conversions."""

    def test_complete_walkthrough(self):
        result = experiment_fig8_worked_example()
        # "Initially, two VNFs are hosted by the electronic domain;
        # therefore, the flow needs to traverse twice between the optical
        # and electronic domain and consuming two O/E/O conversions."
        assert result["before_conversions"] == 2
        assert result["before_optical"] == 1
        # "by moving one more VNF in the optical domain, we can save
        # another O/E/O conversion."
        assert result["after_conversions"] == 1
        assert result["saved"] == 1
        # "we deployed only two VNFs in the optical domain" — the third
        # (DPI) cannot be met by the optoelectronic router.
        assert result["after_optical"] == 2
