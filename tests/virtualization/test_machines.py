"""Tests for the VM inventory: lifecycle, capacity, queries."""

import pytest

from repro.exceptions import (
    DuplicateEntityError,
    PlacementError,
    UnknownEntityError,
)
from repro.topology.elements import ResourceVector
from repro.virtualization.machines import MachineInventory, VirtualMachine


@pytest.fixture
def web(service_catalog):
    return service_catalog.get("web")


class TestCreation:
    def test_create_vm_ids_monotonic(self, inventory, web):
        first = inventory.create_vm(web)
        second = inventory.create_vm(web)
        assert first.vm_id == "vm-0"
        assert second.vm_id == "vm-1"

    def test_create_vm_uses_service_demand(self, inventory, web):
        vm = inventory.create_vm(web)
        assert vm.demand == web.vm_demand

    def test_create_vm_custom_demand(self, inventory, web):
        demand = ResourceVector(cpu_cores=1)
        assert inventory.create_vm(web, demand).demand == demand

    def test_register_external_vm(self, inventory):
        vm = VirtualMachine(
            vm_id="vm-custom", service="web", demand=ResourceVector(1, 1, 1)
        )
        inventory.register_vm(vm)
        assert inventory.get("vm-custom") is vm

    def test_register_duplicate_rejected(self, inventory, web):
        vm = inventory.create_vm(web)
        with pytest.raises(DuplicateEntityError):
            inventory.register_vm(vm)

    def test_len_counts_vms(self, inventory, web):
        inventory.create_vm(web)
        inventory.create_vm(web)
        assert len(inventory) == 2

    def test_contains(self, inventory, web):
        vm = inventory.create_vm(web)
        assert vm.vm_id in inventory
        assert "vm-99" not in inventory


class TestPlacement:
    def test_place_and_host_of(self, inventory, web):
        vm = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(vm, server)
        assert inventory.host_of(vm.vm_id) == server

    def test_place_accepts_vm_or_id(self, inventory, web):
        vm = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(vm.vm_id, server)
        assert inventory.is_placed(vm.vm_id)

    def test_place_twice_rejected(self, inventory, web):
        vm = inventory.create_vm(web)
        servers = inventory.network.servers()
        inventory.place(vm, servers[0])
        with pytest.raises(PlacementError):
            inventory.place(vm, servers[1])

    def test_place_on_unknown_server_rejected(self, inventory, web):
        vm = inventory.create_vm(web)
        with pytest.raises(UnknownEntityError):
            inventory.place(vm, "server-999")

    def test_capacity_enforced(self, inventory, web):
        server = inventory.network.servers()[0]
        capacity = inventory.network.spec_of(server).capacity
        big = inventory.create_vm(
            web, ResourceVector(cpu_cores=capacity.cpu_cores + 1)
        )
        with pytest.raises(PlacementError):
            inventory.place(big, server)

    def test_capacity_accumulates(self, inventory, web):
        server = inventory.network.servers()[0]
        capacity = inventory.network.spec_of(server).capacity
        half = ResourceVector(cpu_cores=capacity.cpu_cores / 2 + 1)
        inventory.place(inventory.create_vm(web, half), server)
        with pytest.raises(PlacementError):
            inventory.place(inventory.create_vm(web, half), server)

    def test_host_of_unplaced_raises(self, inventory, web):
        vm = inventory.create_vm(web)
        with pytest.raises(PlacementError):
            inventory.host_of(vm.vm_id)

    def test_host_of_unknown_raises(self, inventory):
        with pytest.raises(UnknownEntityError):
            inventory.host_of("vm-999")


class TestMigration:
    def test_migrate_moves_capacity(self, inventory, web):
        vm = inventory.create_vm(web)
        servers = inventory.network.servers()
        inventory.place(vm, servers[0])
        used_before = inventory.used_capacity(servers[0])
        old = inventory.migrate(vm, servers[1])
        assert old == servers[0]
        assert inventory.host_of(vm.vm_id) == servers[1]
        assert inventory.used_capacity(servers[0]) == used_before - vm.demand
        assert inventory.used_capacity(servers[1]) == vm.demand

    def test_migrate_to_same_server_rejected(self, inventory, web):
        vm = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(vm, server)
        with pytest.raises(PlacementError):
            inventory.migrate(vm, server)

    def test_migrate_unplaced_rejected(self, inventory, web):
        vm = inventory.create_vm(web)
        with pytest.raises(PlacementError):
            inventory.migrate(vm, inventory.network.servers()[0])

    def test_migrate_capacity_checked_first(self, inventory, web):
        servers = inventory.network.servers()
        capacity = inventory.network.spec_of(servers[1]).capacity
        blocker = inventory.create_vm(web, capacity)
        inventory.place(blocker, servers[1])
        vm = inventory.create_vm(web)
        inventory.place(vm, servers[0])
        with pytest.raises(PlacementError):
            inventory.migrate(vm, servers[1])
        # Original placement untouched after the failed migration.
        assert inventory.host_of(vm.vm_id) == servers[0]


class TestRemoval:
    def test_remove_releases_capacity(self, inventory, web):
        vm = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(vm, server)
        inventory.remove(vm)
        assert inventory.used_capacity(server).is_zero()
        assert vm.vm_id not in inventory

    def test_remove_unplaced_vm(self, inventory, web):
        vm = inventory.create_vm(web)
        inventory.remove(vm)
        assert vm.vm_id not in inventory

    def test_remove_unknown_raises(self, inventory):
        with pytest.raises(UnknownEntityError):
            inventory.remove("vm-999")


class TestQueries:
    def test_vms_on(self, inventory, web):
        vm = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(vm, server)
        assert [v.vm_id for v in inventory.vms_on(server)] == [vm.vm_id]

    def test_vms_on_unknown_server(self, inventory):
        with pytest.raises(UnknownEntityError):
            inventory.vms_on("server-999")

    def test_vms_of_service(self, inventory, service_catalog):
        inventory.create_vm(service_catalog.get("web"))
        inventory.create_vm(service_catalog.get("sns"))
        inventory.create_vm(service_catalog.get("web"))
        assert len(inventory.vms_of_service("web")) == 2
        assert len(inventory.vms_of_service("sns")) == 1
        assert inventory.vms_of_service("nope") == []

    def test_placed_vms_only_placed(self, inventory, web):
        placed = inventory.create_vm(web)
        inventory.create_vm(web)  # never placed
        inventory.place(placed, inventory.network.servers()[0])
        assert [v.vm_id for v in inventory.placed_vms()] == [placed.vm_id]

    def test_services_present(self, inventory, service_catalog):
        inventory.create_vm(service_catalog.get("sns"))
        inventory.create_vm(service_catalog.get("web"))
        assert inventory.services_present() == ["sns", "web"]

    def test_tors_of_vm_matches_host_server(self, inventory, web):
        vm = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(vm, server)
        assert inventory.tors_of_vm(vm.vm_id) == (
            inventory.network.tors_of_server(server)
        )

    def test_remaining_capacity(self, inventory, web):
        server = inventory.network.servers()[0]
        capacity = inventory.network.spec_of(server).capacity
        vm = inventory.create_vm(web)
        inventory.place(vm, server)
        assert inventory.remaining_capacity(server) == capacity - vm.demand

    def test_utilization_by_server(self, inventory, web):
        server = inventory.network.servers()[0]
        vm = inventory.create_vm(web)
        inventory.place(vm, server)
        utilization = inventory.utilization_by_server()
        capacity = inventory.network.spec_of(server).capacity
        assert utilization[server] == pytest.approx(
            vm.demand.cpu_cores / capacity.cpu_cores
        )
        assert all(
            value == 0.0
            for name, value in utilization.items()
            if name != server
        )
