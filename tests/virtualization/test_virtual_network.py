"""Tests for virtual networks and link embedding."""

import pytest

from repro.exceptions import UnknownEntityError
from repro.virtualization.machines import MachineInventory
from repro.virtualization.virtual_network import VirtualLink, VirtualNetwork
from repro.virtualization.vm_placement import PlacementStrategy, VmPlacementEngine


@pytest.fixture
def placed(inventory, service_catalog):
    """Three placed web VMs spread round-robin across servers."""
    engine = VmPlacementEngine(
        inventory, PlacementStrategy.ROUND_ROBIN
    )
    vms = [
        inventory.create_vm(service_catalog.get("web")) for _ in range(3)
    ]
    engine.place_all(vms)
    return inventory, vms


class TestVirtualLink:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            VirtualLink("vm-0", "vm-0")

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            VirtualLink("vm-0", "vm-1", bandwidth_gbps=0)

    def test_endpoints_unordered(self):
        link = VirtualLink("vm-0", "vm-1")
        assert link.endpoints == frozenset({"vm-0", "vm-1"})


class TestTopology:
    def test_add_link_adds_nodes(self):
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink("vm-0", "vm-1"))
        assert vn.vms() == ["vm-0", "vm-1"]

    def test_links_sorted(self):
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink("vm-2", "vm-3"))
        vn.add_link(VirtualLink("vm-0", "vm-1"))
        links = vn.links()
        assert (links[0].a, links[0].b) == ("vm-0", "vm-1")

    def test_degree(self):
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink("vm-0", "vm-1"))
        vn.add_link(VirtualLink("vm-0", "vm-2"))
        assert vn.degree_of("vm-0") == 2
        assert vn.degree_of("vm-1") == 1

    def test_degree_unknown_raises(self):
        with pytest.raises(UnknownEntityError):
            VirtualNetwork("vn").degree_of("vm-0")

    def test_total_bandwidth(self):
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink("vm-0", "vm-1", bandwidth_gbps=2.0))
        vn.add_link(VirtualLink("vm-1", "vm-2", bandwidth_gbps=3.0))
        assert vn.total_bandwidth_demand() == 5.0


class TestEmbedding:
    def test_embed_produces_paths(self, placed):
        inventory, vms = placed
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink(vms[0].vm_id, vms[1].vm_id))
        embedding = vn.embed(inventory)
        path = embedding[frozenset({vms[0].vm_id, vms[1].vm_id})]
        assert path[0] == inventory.host_of(vms[0].vm_id)
        assert path[-1] == inventory.host_of(vms[1].vm_id)
        # Consecutive hops are physical links.
        graph = inventory.network.graph
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_colocated_link_embeds_to_single_node(
        self, inventory, service_catalog
    ):
        web = service_catalog.get("web")
        a = inventory.create_vm(web)
        b = inventory.create_vm(web)
        server = inventory.network.servers()[0]
        inventory.place(a, server)
        inventory.place(b, server)
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink(a.vm_id, b.vm_id))
        embedding = vn.embed(inventory)
        assert embedding[frozenset({a.vm_id, b.vm_id})] == [server]

    def test_path_of_after_embed(self, placed):
        inventory, vms = placed
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink(vms[0].vm_id, vms[2].vm_id))
        vn.embed(inventory)
        assert vn.path_of(vms[0].vm_id, vms[2].vm_id)
        # Symmetric lookup works too.
        assert vn.path_of(vms[2].vm_id, vms[0].vm_id)

    def test_path_of_without_embed_raises(self, placed):
        _, vms = placed
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink(vms[0].vm_id, vms[1].vm_id))
        with pytest.raises(UnknownEntityError):
            vn.path_of(vms[0].vm_id, vms[1].vm_id)

    def test_physical_footprint(self, placed):
        inventory, vms = placed
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink(vms[0].vm_id, vms[1].vm_id))
        vn.embed(inventory)
        footprint = vn.physical_footprint()
        assert inventory.host_of(vms[0].vm_id) in footprint
        assert inventory.host_of(vms[1].vm_id) in footprint


class TestEmbeddingEngines:
    """Embedding routes through the engine layer, not raw networkx."""

    def test_engine_choice_does_not_change_embedding(self, placed):
        inventory, vms = placed
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink(vms[0].vm_id, vms[1].vm_id))
        vn.add_link(VirtualLink(vms[1].vm_id, vms[2].vm_id))
        vn.add_link(VirtualLink(vms[0].vm_id, vms[2].vm_id))
        via_nx = vn.embed(inventory, engine="nx")
        via_csr = vn.embed(inventory, engine="csr")
        assert via_csr == via_nx

    def test_disconnected_fabric_raises_routing_error(self, service_catalog):
        from repro.exceptions import RoutingError
        from repro.topology.datacenter import DataCenterNetwork
        from repro.topology.elements import ServerSpec, TorSpec

        # Two islands: (server-a, tor-a) and (server-b, tor-b).
        dcn = DataCenterNetwork("split")
        for suffix in ("a", "b"):
            dcn.add_server(ServerSpec(server_id=f"server-{suffix}"))
            dcn.add_tor(TorSpec(tor_id=f"tor-{suffix}"))
            dcn.connect(f"server-{suffix}", f"tor-{suffix}")
        inventory = MachineInventory(dcn)
        web = service_catalog.get("web")
        vm_a = inventory.create_vm(web)
        vm_b = inventory.create_vm(web)
        inventory.place(vm_a, "server-a")
        inventory.place(vm_b, "server-b")
        vn = VirtualNetwork("vn")
        vn.add_link(VirtualLink(vm_a.vm_id, vm_b.vm_id))
        with pytest.raises(RoutingError, match="cannot embed|no physical path"):
            vn.embed(inventory)
