"""Tests for service types and the catalog."""

import pytest

from repro.exceptions import DuplicateEntityError, UnknownEntityError
from repro.topology.elements import ResourceVector
from repro.virtualization.services import (
    STANDARD_SERVICES,
    ServiceCatalog,
    ServiceType,
)


class TestServiceType:
    def test_paper_services_present(self):
        # Fig. 1 names web, map-reduce and SNS clusters explicitly.
        names = {service.name for service in STANDARD_SERVICES}
        assert {"web", "map-reduce", "sns"} <= names

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ServiceType("")

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            ServiceType("x", traffic_intensity=-1)

    def test_default_demand_positive(self):
        service = ServiceType("x")
        assert service.vm_demand.cpu_cores > 0

    def test_custom_demand(self):
        demand = ResourceVector(cpu_cores=1, memory_gb=1, storage_gb=1)
        assert ServiceType("x", vm_demand=demand).vm_demand == demand

    def test_frozen(self):
        service = ServiceType("x")
        with pytest.raises(AttributeError):
            service.name = "y"


class TestServiceCatalog:
    def test_standard_has_all(self):
        catalog = ServiceCatalog.standard()
        assert len(catalog) == len(STANDARD_SERVICES)

    def test_get(self):
        catalog = ServiceCatalog.standard()
        assert catalog.get("web").name == "web"

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownEntityError):
            ServiceCatalog().get("nope")

    def test_register_duplicate_rejected(self):
        catalog = ServiceCatalog.standard()
        with pytest.raises(DuplicateEntityError):
            catalog.register(ServiceType("web"))

    def test_register_returns_service(self):
        catalog = ServiceCatalog()
        service = ServiceType("custom")
        assert catalog.register(service) is service

    def test_contains(self):
        catalog = ServiceCatalog.standard()
        assert "web" in catalog
        assert "nope" not in catalog

    def test_names_sorted(self):
        catalog = ServiceCatalog.standard()
        assert catalog.names() == sorted(catalog.names())

    def test_all_matches_names(self):
        catalog = ServiceCatalog.standard()
        assert [service.name for service in catalog.all()] == catalog.names()

    def test_empty_catalog(self):
        catalog = ServiceCatalog()
        assert len(catalog) == 0
        assert catalog.names() == []
