"""Tests for VM placement strategies."""

import pytest

from repro.exceptions import PlacementError
from repro.topology.elements import ResourceVector
from repro.virtualization.machines import MachineInventory
from repro.virtualization.vm_placement import (
    PlacementStrategy,
    VmPlacementEngine,
)


@pytest.fixture
def web(service_catalog):
    return service_catalog.get("web")


class TestFirstFit:
    def test_fills_first_server(self, inventory, web):
        engine = VmPlacementEngine(inventory, PlacementStrategy.FIRST_FIT)
        first = inventory.network.servers()[0]
        for _ in range(3):
            assert engine.place(inventory.create_vm(web)) == first

    def test_overflows_to_next(self, inventory, web):
        engine = VmPlacementEngine(inventory, PlacementStrategy.FIRST_FIT)
        servers = inventory.network.servers()
        capacity = inventory.network.spec_of(servers[0]).capacity
        engine.place(inventory.create_vm(web, capacity))
        assert engine.place(inventory.create_vm(web)) == servers[1]


class TestRoundRobin:
    def test_rotates_servers(self, inventory, web):
        engine = VmPlacementEngine(inventory, PlacementStrategy.ROUND_ROBIN)
        servers = inventory.network.servers()
        chosen = [engine.place(inventory.create_vm(web)) for _ in range(4)]
        assert chosen == servers[:4]

    def test_wraps_around(self, inventory, web):
        engine = VmPlacementEngine(inventory, PlacementStrategy.ROUND_ROBIN)
        total = len(inventory.network.servers())
        chosen = [
            engine.place(inventory.create_vm(web)) for _ in range(total + 1)
        ]
        assert chosen[0] == chosen[total]


class TestRandom:
    def test_deterministic_per_seed(self, small_fabric, web):
        runs = []
        for _ in range(2):
            inv = MachineInventory(small_fabric)
            engine = VmPlacementEngine(
                inv, PlacementStrategy.RANDOM, seed=42
            )
            runs.append(
                [engine.place(inv.create_vm(web)) for _ in range(6)]
            )
        assert runs[0] == runs[1]

    def test_different_seeds_usually_differ(self, small_fabric, web):
        outcomes = set()
        for seed in range(5):
            inv = MachineInventory(small_fabric)
            engine = VmPlacementEngine(
                inv, PlacementStrategy.RANDOM, seed=seed
            )
            outcomes.add(
                tuple(engine.place(inv.create_vm(web)) for _ in range(6))
            )
        assert len(outcomes) > 1


class TestServiceAffinity:
    def test_same_service_packs_together(self, inventory, web):
        engine = VmPlacementEngine(
            inventory, PlacementStrategy.SERVICE_AFFINITY
        )
        chosen = {engine.place(inventory.create_vm(web)) for _ in range(4)}
        assert len(chosen) == 1

    def test_new_services_go_to_distinct_racks(
        self, inventory, service_catalog
    ):
        engine = VmPlacementEngine(
            inventory, PlacementStrategy.SERVICE_AFFINITY
        )
        racks = {}
        for name in ("web", "sns", "database"):
            server = engine.place(
                inventory.create_vm(service_catalog.get(name))
            )
            racks[name] = inventory.network.spec_of(server).rack
        assert len(set(racks.values())) == 3

    def test_service_stays_on_its_rack(self, inventory, service_catalog):
        engine = VmPlacementEngine(
            inventory, PlacementStrategy.SERVICE_AFFINITY
        )
        web = service_catalog.get("web")
        sns = service_catalog.get("sns")
        web_first = engine.place(inventory.create_vm(web))
        engine.place(inventory.create_vm(sns))
        web_second = engine.place(inventory.create_vm(web))
        rack_of = lambda s: inventory.network.spec_of(s).rack
        assert rack_of(web_first) == rack_of(web_second)


class TestPlaceAll:
    def test_returns_mapping(self, inventory, web):
        engine = VmPlacementEngine(inventory)
        vms = [inventory.create_vm(web) for _ in range(3)]
        result = engine.place_all(vms)
        assert set(result) == {vm.vm_id for vm in vms}
        for vm in vms:
            assert inventory.host_of(vm.vm_id) == result[vm.vm_id]


class TestExhaustion:
    def test_no_room_raises(self, inventory, web):
        engine = VmPlacementEngine(inventory, PlacementStrategy.FIRST_FIT)
        for server in inventory.network.servers():
            capacity = inventory.network.spec_of(server).capacity
            inventory.place(inventory.create_vm(web, capacity), server)
        with pytest.raises(PlacementError):
            engine.place(
                inventory.create_vm(web, ResourceVector(cpu_cores=1))
            )
