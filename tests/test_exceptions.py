"""Tests for the exception hierarchy."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exc.TopologyError,
            exc.UnknownEntityError,
            exc.DuplicateEntityError,
            exc.InsufficientResourcesError,
            exc.CoverInfeasibleError,
            exc.PlacementError,
            exc.ChainValidationError,
            exc.SlicingError,
            exc.LifecycleError,
            exc.SimulationError,
            exc.RoutingError,
        ],
    )
    def test_all_derive_from_alvc_error(self, subclass):
        assert issubclass(subclass, exc.ALVCError)

    def test_cover_infeasible_is_resource_exhaustion(self):
        assert issubclass(
            exc.CoverInfeasibleError, exc.InsufficientResourcesError
        )


class TestMessages:
    def test_unknown_entity_message(self):
        error = exc.UnknownEntityError("server", "server-9")
        assert "server" in str(error)
        assert "server-9" in str(error)
        assert error.kind == "server"
        assert error.entity_id == "server-9"

    def test_duplicate_entity_message(self):
        error = exc.DuplicateEntityError("vm", "vm-1")
        assert "duplicate" in str(error)
        assert error.entity_id == "vm-1"

    def test_cover_infeasible_lists_sample(self):
        error = exc.CoverInfeasibleError(frozenset({"vm-1", "vm-2"}))
        assert "2 element(s)" in str(error)
        assert error.uncovered == frozenset({"vm-1", "vm-2"})

    def test_cover_infeasible_sample_truncated(self):
        many = frozenset(f"vm-{i}" for i in range(20))
        error = exc.CoverInfeasibleError(many)
        # Sample caps at 5 ids to keep the message readable.
        listed = str(error).split("sample: ")[1]
        assert listed.count("vm-") == 5
