#!/usr/bin/env python3
"""Resilience study — AL repair under churn and switch failures.

Extends the paper's low-update-cost story: instead of rebuilding a
cluster's abstraction layer after every change, repair it in place.
The script replays a VM churn trace under both policies, then injects
optical-switch failures and shows coverage being restored from the
unassigned pool.

Run: ``python examples/resilience_study.py``
"""

from repro import build_alvc_fabric
from repro.analysis.experiments import experiment_e13_reconfiguration
from repro.analysis.reporting import render_table
from repro.core.abstraction_layer import AlConstructor
from repro.core.reconfiguration import AlReconfigurator
from repro.exceptions import CoverInfeasibleError


def churn_comparison() -> None:
    rows = experiment_e13_reconfiguration(churn_events=60, seed=1)
    print(
        render_table(
            rows,
            title=(
                "VM churn: switches touched under incremental repair "
                "vs full rebuild"
            ),
        )
    )


def failure_walkthrough() -> None:
    print("\n-- optical switch failure walkthrough --")
    dcn = build_alvc_fabric(
        n_racks=8, servers_per_rack=4, n_ops=8, dual_homing_fraction=0.3,
        seed=2,
    )
    servers = dcn.servers()[:16]
    attachments = {s: dcn.tors_of_server(s) for s in servers}
    layer = AlConstructor(dcn).construct("cluster-resilient", attachments)
    print(f"initial AL: {sorted(layer.ops_ids)} (size {layer.size})")

    reconfigurator = AlReconfigurator(dcn, layer, attachments)
    spares = set(dcn.optical_switches()) - layer.ops_ids
    dead: set = set()
    for round_index in range(4):
        victim = sorted(reconfigurator.layer.ops_ids)[0]
        dead.add(victim)
        try:
            result = reconfigurator.handle_ops_failure(
                victim, spares - dead
            )
        except CoverInfeasibleError as error:
            # Every uplink of some rack has died: the machines are
            # physically cut off from the optical core — correctly
            # detected rather than silently mis-repaired.
            print(
                f"failure {round_index + 1}: {victim} died -> "
                f"UNRECOVERABLE ({error})"
            )
            break
        spares -= result.layer.ops_ids
        mode = "rebuilt" if result.rebuilt else "repaired"
        print(
            f"failure {round_index + 1}: {victim} died -> AL {mode} to "
            f"{sorted(result.layer.ops_ids)} "
            f"({result.cost} switches touched)"
        )
        reconfigurator.verify()
    print("coverage verified after every recoverable failure")


def main() -> None:
    churn_comparison()
    failure_walkthrough()


if __name__ == "__main__":
    main()
