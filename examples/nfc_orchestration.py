#!/usr/bin/env python3
"""Multi-tenant NFC orchestration — the paper's Fig. 5-7 scenario.

Three tenants (web, map-reduce, SNS) each get their own virtual cluster,
optical slice and network function chain through the
:class:`repro.AlvcStack` facade; the script then exercises the
orchestrator's full management surface (upgrade, modify, teardown) and
prints the resulting state, slice isolation, and O/E/O accounting.

Run: ``python examples/nfc_orchestration.py``
"""

from repro import AlvcStack, ConversionModel, NetworkFunctionChain
from repro.analysis.reporting import render_table

TENANT_CHAINS = (
    ("web", "blue", ("security-gateway", "firewall", "dpi")),
    ("map-reduce", "black", ("firewall", "load-balancer")),
    ("sns", "green", ("nat", "firewall", "proxy", "load-balancer")),
)


def main() -> None:
    stack = AlvcStack.build(
        n_racks=9, servers_per_rack=6, n_ops=9, seed=3
    )
    for service_name, _, _ in TENANT_CHAINS:
        stack.populate(service_name, vms=8)

    orchestrator = stack.orchestrator
    model = ConversionModel()

    rows = []
    for service_name, label, names in TENANT_CHAINS:
        live = stack.provision(
            names,
            service=service_name,
            tenant=f"tenant-{label}",
            chain_id=f"chain-{label}",
            flow_size_gb=2.0,
        )
        rows.append(
            {
                "chain": label,
                "functions": "->".join(names),
                "slice": live.optical_slice.slice_id,
                "wavelength": live.optical_slice.wavelength,
                "al": ",".join(sorted(live.cluster.al_switches)),
                "optical_vnfs": live.placement.optical_count,
                "conversions": live.conversions,
                "cost_per_flow": live.placement.conversion_cost(
                    model, 2e9
                ),
            }
        )
    print(render_table(rows, title="Provisioned chains (Fig. 5 scenario)"))
    orchestrator.slice_allocator.verify_isolation()
    print("\nslice isolation verified: no OPS shared between chains")

    # Management operations (Fig. 6: provisioning, modification,
    # upgradation, deletion).
    print("\n-- management session --")
    orchestrator.upgrade_chain("chain-blue")
    print("upgraded chain-blue (update event on every VNF)")
    orchestrator.modify_chain(
        "chain-black",
        NetworkFunctionChain.from_names(
            "chain-black-v2",
            ("firewall", "load-balancer", "cache"),
            stack.functions,
        ),
    )
    print("modified chain-black -> chain-black-v2 (added a cache)")
    stack.teardown("chain-green")
    print("tore down chain-green (slice and VNFs released)")

    print("\nlive chains:", [c.chain_id for c in stack.chains()])
    print("orchestration log:", orchestrator.action_log())
    print(
        "lifecycle event census:",
        orchestrator.nfv_manager.lifecycle.event_counts(),
    )
    print("SDN rule churn:", orchestrator.sdn.churn_counters())


if __name__ == "__main__":
    main()
