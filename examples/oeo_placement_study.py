#!/usr/bin/env python3
"""O/E/O conversion study — the paper's Fig. 8 argument, quantified.

Reproduces the worked example (move one more VNF into the optical domain,
save one conversion), then sweeps chain length and optoelectronic-router
capacity to show where each placement algorithm's savings come from, and
prices the savings with the conversion cost/energy model.

Run: ``python examples/oeo_placement_study.py``
"""

from repro import (
    ConversionModel,
    FunctionCatalog,
    NetworkFunctionChain,
    PlacementAlgorithm,
    PlacementSolver,
    ResourceVector,
)
from repro.analysis.experiments import (
    experiment_fig8_sweep,
    experiment_fig8_worked_example,
)
from repro.analysis.reporting import render_table


def worked_example() -> None:
    result = experiment_fig8_worked_example()
    print("Fig. 8 worked example")
    print(f"  chain: {' -> '.join(result['chain'])}")
    print(
        f"  before: {result['before_optical']} VNF optical, "
        f"{result['before_conversions']} O/E/O conversions per flow"
    )
    print(
        f"  after:  {result['after_optical']} VNFs optical, "
        f"{result['after_conversions']} conversion "
        f"(saved {result['saved']})"
    )


def capacity_sweep() -> None:
    rows = experiment_fig8_sweep(
        chain_lengths=(3, 5, 7),
        capacity_scales=(0.0, 0.5, 1.0, 2.0),
        seeds=(0, 1, 2, 3),
    )
    print()
    print(
        render_table(
            rows,
            title="Conversions vs chain length, capacity and algorithm",
        )
    )


def single_chain_pricing() -> None:
    """Price one concrete chain across flow sizes (cost ∝ flow length)."""
    functions = FunctionCatalog.standard()
    chain = NetworkFunctionChain.from_names(
        "chain-priced",
        ("firewall", "nat", "dpi", "load-balancer"),
        functions,
    )
    pool = {
        "ops-0": ResourceVector(cpu_cores=4, memory_gb=8, storage_gb=64)
    }
    model = ConversionModel()
    rows = []
    for algorithm in (
        PlacementAlgorithm.ALL_ELECTRONIC,
        PlacementAlgorithm.GREEDY,
    ):
        placement = PlacementSolver(dict(pool)).solve(chain, algorithm)
        for flow_gb in (0.1, 1.0, 10.0):
            flow_bytes = flow_gb * 1e9
            rows.append(
                {
                    "algorithm": algorithm.value,
                    "flow_gb": flow_gb,
                    "conversions": placement.conversions,
                    "cost": placement.conversion_cost(model, flow_bytes),
                    "energy_j": placement.conversion_energy_joules(
                        model, flow_bytes
                    ),
                }
            )
    print()
    print(
        render_table(
            rows,
            title=(
                "Per-flow conversion cost — larger flows pay more "
                "(Section IV.D)"
            ),
        )
    )


def main() -> None:
    worked_example()
    capacity_sweep()
    single_chain_pricing()


if __name__ == "__main__":
    main()
