#!/usr/bin/env python3
"""Quickstart: build a fabric, cluster a service, orchestrate one chain.

Walks the complete AL-VC pipeline in ~40 lines:

1. generate a physical fabric (racks of servers + an OPS core);
2. create and place VMs of one service;
3. build the service's virtual cluster (abstraction-layer construction);
4. provision a firewall→NAT chain over it and inspect the result.

Run: ``python examples/quickstart.py``
"""

from repro import (
    ChainRequest,
    FunctionCatalog,
    MachineInventory,
    NetworkFunctionChain,
    NetworkOrchestrator,
    ServiceCatalog,
    VmPlacementEngine,
    build_alvc_fabric,
    validate_topology,
)


def main() -> None:
    # 1. Physical fabric: 8 racks x 8 servers behind an 8-switch OPS core.
    dcn = build_alvc_fabric(n_racks=8, servers_per_rack=8, n_ops=8, seed=1)
    validate_topology(dcn).raise_if_invalid()
    print(f"fabric: {dcn.summary()}")

    # 2. Ten web VMs, placed with service affinity.
    inventory = MachineInventory(dcn)
    services = ServiceCatalog.standard()
    engine = VmPlacementEngine(inventory, seed=1)
    for _ in range(10):
        engine.place(inventory.create_vm(services.get("web")))

    # 3. The web cluster and its abstraction layer.
    orchestrator = NetworkOrchestrator(inventory)
    cluster = orchestrator.cluster_manager.create_cluster("web")
    print(
        f"cluster {cluster.cluster_id}: {len(cluster.vm_ids)} VMs, "
        f"ToRs {sorted(cluster.tor_switches)}, "
        f"AL {sorted(cluster.al_switches)}"
    )

    # 4. A firewall -> NAT chain for this cluster's application.
    functions = FunctionCatalog.standard()
    chain = NetworkFunctionChain.from_names(
        "chain-quickstart", ("firewall", "nat"), functions
    )
    live = orchestrator.provision_chain(
        ChainRequest(tenant="tenant-0", chain=chain, service="web")
    )
    print(f"chain path: {' -> '.join(live.path)}")
    for vnf in live.vnf_ids:
        instance = orchestrator.nfv_manager.instance_of(vnf)
        print(
            f"  {instance.function.name:<10} on {instance.host} "
            f"({instance.domain.value} domain)"
        )
    print(
        f"O/E/O conversions per flow: {live.conversions} "
        f"(saved {live.placement.conversions_saved()} vs all-electronic)"
    )


if __name__ == "__main__":
    main()
