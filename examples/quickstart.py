#!/usr/bin/env python3
"""Quickstart: build a fabric, cluster a service, orchestrate one chain.

The :class:`repro.AlvcStack` facade wires the whole AL-VC pipeline —
fabric generation, VM inventory, service catalog, placement engine,
cluster manager, orchestrator — behind one object, so the complete
walkthrough is now:

1. ``AlvcStack.build(...)`` — the physical fabric plus every manager;
2. ``stack.populate(...)`` — create and place VMs of one service;
3. ``stack.provision(...)`` — cluster the service (AL construction),
   allocate its optical slice, place and deploy the VNFs, route the
   chain.

Run: ``python examples/quickstart.py``
"""

from repro import AlvcStack, validate_topology


def main() -> None:
    # 1. The whole stack over an 8x8 fabric with an 8-switch OPS core.
    #    telemetry="json" turns on the metrics/tracing sink so we can
    #    inspect per-stage spans afterwards.
    stack = AlvcStack.build(
        n_racks=8, servers_per_rack=8, n_ops=8, seed=1, telemetry="json"
    )
    validate_topology(stack.fabric).raise_if_invalid()
    print(f"fabric: {stack.fabric.summary()}")

    # 2. Ten web VMs, placed with service affinity.
    stack.populate("web", vms=10)

    # 3+4. Provision a firewall -> NAT chain; the facade builds the web
    #      cluster (abstraction-layer construction) on first use.
    live = stack.provision(
        ("firewall", "nat"),
        service="web",
        tenant="tenant-0",
        chain_id="chain-quickstart",
    )
    cluster = live.cluster
    print(
        f"cluster {cluster.cluster_id}: {len(cluster.vm_ids)} VMs, "
        f"ToRs {sorted(cluster.tor_switches)}, "
        f"AL {sorted(cluster.al_switches)}"
    )
    print(f"chain path: {' -> '.join(live.path)}")
    for vnf in live.vnf_ids:
        instance = stack.orchestrator.nfv_manager.instance_of(vnf)
        print(
            f"  {instance.function.name:<10} on {instance.host} "
            f"({instance.domain.value} domain)"
        )
    print(
        f"O/E/O conversions per flow: {live.conversions} "
        f"(saved {live.placement.conversions_saved()} vs all-electronic)"
    )

    # Telemetry: every pipeline stage of the provision was traced.
    stats = stack.telemetry.tracer.stats()
    stages = sorted(name for name in stats if name.startswith("provision."))
    print("traced pipeline stages:", ", ".join(stages))


if __name__ == "__main__":
    main()
