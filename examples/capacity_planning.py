#!/usr/bin/env python3
"""Capacity planning — admission dry-runs, autoscaling, blast radius.

An operator's day-2 workflow over a provisioned AL-VC data center:

1. *plan* chain requests before committing (dry-run admission control);
2. watch VNF load and let the autoscaler grow/shrink instances;
3. audit the failure domains the disjoint ALs create;
4. export every table to CSV for offline analysis.

Run: ``python examples/capacity_planning.py``
"""

import tempfile
from pathlib import Path

from repro import (
    ChainRequest,
    FunctionCatalog,
    MachineInventory,
    NetworkFunctionChain,
    NetworkOrchestrator,
    ServiceCatalog,
    VmPlacementEngine,
    build_alvc_fabric,
)
from repro.analysis.export import save_rows
from repro.analysis.failure_domains import failure_domain_report
from repro.analysis.reporting import render_table
from repro.nfv.autoscaler import AutoscalerPolicy, VnfAutoscaler


def main() -> None:
    dcn = build_alvc_fabric(n_racks=8, servers_per_rack=6, n_ops=8, seed=9)
    inventory = MachineInventory(dcn)
    services = ServiceCatalog.standard()
    engine = VmPlacementEngine(inventory, seed=9)
    for name in ("web", "sns"):
        for _ in range(6):
            engine.place(inventory.create_vm(services.get(name)))

    orchestrator = NetworkOrchestrator(inventory)
    orchestrator.cluster_manager.create_cluster("web")
    orchestrator.cluster_manager.create_cluster("sns")
    functions = FunctionCatalog.standard()

    # -- 1. dry-run admission ------------------------------------------
    print("-- admission dry-runs --")
    candidates = (
        ("chain-ok", ("firewall", "nat"), "web"),
        ("chain-heavy", ("dpi", "ids", "cache"), "web"),
        ("chain-orphan", ("firewall",), "backup"),  # no such cluster
    )
    plan_rows = []
    for chain_id, names, service in candidates:
        chain = NetworkFunctionChain.from_names(chain_id, names, functions)
        plan = orchestrator.plan_chain(
            ChainRequest(tenant="t", chain=chain, service=service)
        )
        plan_rows.append(
            {
                "chain": chain_id,
                "service": service,
                "feasible": plan.feasible,
                "predicted_conversions": plan.conversions,
                "problems": "; ".join(plan.problems) or "-",
            }
        )
    print(render_table(plan_rows, title="Admission plans"))

    # Provision the feasible one, exactly as planned.
    live = orchestrator.provision_chain(
        ChainRequest(
            tenant="t",
            chain=NetworkFunctionChain.from_names(
                "chain-ok", ("firewall", "nat"), functions
            ),
            service="web",
        )
    )
    print(f"\nprovisioned chain-ok: conversions={live.conversions}")

    # -- 2. autoscaling under a load spike -----------------------------
    print("\n-- autoscaling --")
    autoscaler = VnfAutoscaler(
        orchestrator.nfv_manager,
        AutoscalerPolicy(observations_required=2),
    )
    firewall_vnf = live.vnf_ids[0]
    load_timeline = [0.95, 0.97, 0.99, 0.92, 0.2, 0.15, 0.1, 0.12]
    for load in load_timeline:
        action = autoscaler.observe(firewall_vnf, load)
        if action:
            print(
                f"load {load:.2f} -> scale {action.direction} "
                f"(x{action.factor:g})"
            )
    print(
        f"final size factor: "
        f"{autoscaler.size_factor_of(firewall_vnf):g}x catalog demand"
    )

    # -- 3. failure domains --------------------------------------------
    print("\n-- failure domains --")
    rows = failure_domain_report(orchestrator.cluster_manager)
    print(render_table(rows, title="Blast radius per core switch"))
    worst = max(row["alvc_affected"] for row in rows)
    print(
        f"worst-case AL-VC blast radius: {worst} cluster(s) "
        f"(flat fabric: {rows[0]['flat_affected']})"
    )

    # -- 4. export -------------------------------------------------------
    export_dir = Path(tempfile.mkdtemp(prefix="alvc-planning-"))
    save_rows(plan_rows, export_dir / "admission_plans.csv")
    save_rows(rows, export_dir / "failure_domains.csv")
    print(f"\nexported tables to {export_dir}/")


if __name__ == "__main__":
    main()
