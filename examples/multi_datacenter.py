#!/usr/bin/env python3
"""Distributed AL-VC — one virtual cluster spanning two data centers.

The paper's architecture is explicitly distributed: "The physical network
can consist of one or multiple DCNs" (Section IV.B).  This script
federates two sites over inter-DC optical links, spreads a service's VMs
across both, and shows the abstraction layer, slice, and chain working
across the federation.

Run: ``python examples/multi_datacenter.py``
"""

from repro import (
    ChainRequest,
    FunctionCatalog,
    MachineInventory,
    NetworkFunctionChain,
    NetworkOrchestrator,
    ServiceCatalog,
    build_alvc_fabric,
    validate_topology,
)
from repro.topology.federation import InterDcLink, federate, site_of


def main() -> None:
    # Two sites with different shapes, joined by two optical links.
    east = build_alvc_fabric(n_racks=6, servers_per_rack=4, n_ops=6, seed=4)
    west = build_alvc_fabric(n_racks=4, servers_per_rack=4, n_ops=4, seed=5)
    federation = federate(
        {"east": east, "west": west},
        [
            InterDcLink("east", "ops-0", "west", "ops-0"),
            InterDcLink("east", "ops-3", "west", "ops-2"),
        ],
    )
    validate_topology(federation).raise_if_invalid()
    print(f"federated fabric: {federation.summary()}")

    # A geo-distributed web service: half its VMs per site.
    inventory = MachineInventory(federation)
    web = ServiceCatalog.standard().get("web")
    for index in range(4):
        vm = inventory.create_vm(web)
        inventory.place(vm, f"east/server-{index}")
    for index in range(4):
        vm = inventory.create_vm(web)
        inventory.place(vm, f"west/server-{index}")

    orchestrator = NetworkOrchestrator(inventory)
    cluster = orchestrator.cluster_manager.create_cluster("web")
    sites_in_al = sorted({site_of(ops) for ops in cluster.al_switches})
    print(
        f"cluster spans sites {sites_in_al}; "
        f"AL = {sorted(cluster.al_switches)}"
    )

    chain = NetworkFunctionChain.from_names(
        "chain-geo", ("firewall", "nat"), FunctionCatalog.standard()
    )
    live = orchestrator.provision_chain(
        ChainRequest(tenant="geo-tenant", chain=chain, service="web")
    )
    print(f"chain path: {' -> '.join(live.path)}")
    crossing = [node for node in live.path if node.startswith("east")] and [
        node for node in live.path if node.startswith("west")
    ]
    print(f"path crosses the inter-DC boundary: {bool(crossing)}")
    print(
        f"conversions per flow: {live.conversions} "
        f"({live.placement.optical_count} VNFs in the optical domain)"
    )
    orchestrator.slice_allocator.verify_isolation()
    print("slice isolation verified across the federation")


if __name__ == "__main__":
    main()
