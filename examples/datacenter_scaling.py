#!/usr/bin/env python3
"""Scaling and churn study — the claims AL-VC inherits from [14] and [15].

Sweeps the fabric from 64 to 2048 servers measuring abstraction-layer
construction (time, size, strategy comparison), then simulates VM churn
to measure network-update costs against a flat SDN fabric.

Run: ``python examples/datacenter_scaling.py``
"""

from repro.analysis.experiments import (
    experiment_e10_update_cost,
    experiment_e11_scalability,
    experiment_fig4_strategy_sweep,
)
from repro.analysis.reporting import render_table


def main() -> None:
    print(
        render_table(
            experiment_e11_scalability(),
            title="AL construction vs fabric size (64 -> 2048 servers)",
        )
    )
    print()
    print(
        render_table(
            experiment_fig4_strategy_sweep(
                scales=((4, 4), (8, 8), (16, 12)),
                seeds=(0, 1, 2, 3, 4),
            ),
            title=(
                "AL size per construction strategy "
                "(vertex-cover greedy vs random [15] vs exact)"
            ),
        )
    )
    print()
    print(
        render_table(
            experiment_e10_update_cost(n_events=100),
            title=(
                "Switches touched per churn event — AL-VC vs flat "
                "(low network-update cost, [14])"
            ),
        )
    )


if __name__ == "__main__":
    main()
